//! Offline stand-in for `rand` 0.9, covering the subset this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::random_range`, and slice
//! `choose` via `seq::IndexedRandom`.
//!
//! The generator is xorshift64* seeded through splitmix64 — deterministic
//! for a given seed, which the simulator's reproducibility relies on.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which `Rng::random_range` can sample.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// Is the range empty (sampling would panic)?
    fn is_empty_range(&self) -> bool;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let width = (e as u128) - (s as u128) + 1;
                s.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

/// High-level sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so that small seeds (0, 1, 2...) diverge.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 } // never zero (xorshift fixpoint)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100)
            .all(|_| a.random_range(0u64..1_000_000) == c.random_range(0u64..1_000_000));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(2);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.as_slice().choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }
}
