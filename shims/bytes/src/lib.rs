//! Offline stand-in for the `bytes` crate, API-compatible with the subset
//! this workspace uses.
//!
//! [`Bytes`] is an immutable, cheaply cloneable view into a ref-counted
//! buffer: `clone()` bumps a refcount and `slice()` narrows the view
//! without copying, which is exactly the property the zero-copy read path
//! relies on. [`BytesMut`] is a growable buffer that freezes into `Bytes`
//! without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes.
///
/// Cloning is O(1) (refcount bump); [`Bytes::slice`] narrows the view in
/// O(1) while sharing the same backing allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), off: 0, len: 0 }
    }

    /// Wrap a static slice (copied once into a shared allocation).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s), off: 0, len: s.len() }
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of `self` over `range` (indices relative to
    /// this view). Panics when the range is out of bounds, matching the
    /// upstream crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds (len {})", self.len);
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// View as a plain byte slice.
    #[inline]
    #[allow(clippy::should_implement_trait)] // inherent method keeps call-site inference simple
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Copy the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({}B)", self.len)
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Resize, filling new space with `fill`.
    pub fn resize(&mut self, new_len: usize, fill: u8) {
        self.buf.resize(new_len, fill);
    }

    /// Convert into an immutable [`Bytes`] (moves the allocation; no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Split the buffer at `at`, returning the front `at` bytes and
    /// leaving the rest in `self`. Panics when `at > len`, matching the
    /// upstream crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to at {at} out of bounds (len {})", self.buf.len());
        let rest = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, rest) }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<I: IntoIterator<Item = &'a u8>>(&mut self, iter: I) {
        self.buf.extend(iter.into_iter().copied());
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s.as_ref(), &(10u8..20).collect::<Vec<u8>>()[..]);
        // Nested slices stay relative to the view, not the allocation.
        let s2 = s.slice(2..4);
        assert_eq!(s2.as_ref(), &[12, 13]);
        // Clones share the same backing buffer.
        let c = b.clone();
        assert_eq!(Arc::strong_count(&b.data), 4);
        drop(c);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        let f = m.freeze();
        assert_eq!(f, Bytes::from_static(b"abcd"));
        assert_eq!(&f[1..3], b"bc");
    }

    #[test]
    fn split_to_front_and_rest() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let front = m.split_to(4);
        assert_eq!(front.freeze(), Bytes::from_static(b"abcd"));
        assert_eq!(m.freeze(), Bytes::from_static(b"ef"));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from_static(b"xy");
        let _ = b.slice(0..3);
    }
}
