//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! with parking_lot's poison-free API (`lock()`/`read()`/`write()` return
//! guards directly; a poisoned lock is recovered instead of propagated).

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock holding `t`.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
