//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`strategy::Strategy`] trait (ranges, tuples, `prop_map`,
//! `prop_recursive`), `prop::collection::vec`, `prop::option::of`,
//! `Just`, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a fixed-seed deterministic RNG, so failures
//! reproduce exactly. Unlike the real crate there is no shrinking: a
//! failing case reports the case number and the assertion message.

pub mod test_runner {
    //! Test-loop configuration, RNG and failure type.

    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving case generation (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn seeded(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            TestRng { state: (z ^ (z >> 31)) | 1 }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform draw below `n` (n > 0).
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Something that can generate random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `f` receives the strategy for the
        /// previous depth level and returns the next level (typically a
        /// `prop_oneof!` mixing leaves and branches). `depth` bounds the
        /// nesting; the size hints are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = f(cur).boxed();
            }
            cur
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from already-boxed alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let width = (e as u128) - (s as u128) + 1;
                    s.wrapping_add((rng.next_u64() as u128 % width) as $t)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, _rng: &mut TestRng) -> bool {
            *self
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of `elem`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // ~1 in 5 None, matching proptest's Some-biased default.
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` sometimes, `Some(inner)` usually.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs, including the `prop` alias.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside `proptest!`, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", a, b),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::seeded(0xb10b_5eed);
            for case in 0..cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case #{case} failed: {e}");
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections(
            n in 3u64..9,
            xs in prop::collection::vec((0usize..4, 1u64..3), 1..6),
            opt in prop::option::of(1u32..5),
            pick in prop_oneof![Just(1u8), Just(2u8), (5u8..7)],
        ) {
            prop_assert!((3..9).contains(&n), "n = {} out of range", n);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            for (a, b) in &xs {
                prop_assert!(*a < 4 && (1..3).contains(b));
            }
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
        }

        #[test]
        fn map_and_recursive(v in (1u64..4).prop_map(|x| x * 10)) {
            prop_assert_eq!(v % 10, 0);
            prop_assert!(v >= 10 && v < 40);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursion_is_depth_bounded(
            t in (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
                prop_oneof![
                    inner.clone(),
                    (inner.clone(), inner)
                        .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                ]
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} exceeds bound", depth(&t));
        }
    }
}
