//! Offline stand-in for `criterion`, covering the harness subset this
//! workspace's `benches/` use: benchmark groups, `bench_function` /
//! `bench_with_input`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Like the real crate, running under `cargo test` (no `--bench` flag)
//! executes each benchmark body exactly once as a smoke test; under
//! `cargo bench` it warms up and then samples wall-clock time, reporting
//! mean ns/iter plus derived throughput.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived-rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes (binary units).
    Bytes(u64),
    /// Iterations process this many bytes (decimal units).
    BytesDecimal(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    mode: Mode,
    /// Mean ns per iteration measured by the last `iter` call.
    mean_ns: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `cargo test`: run once, don't measure.
    Smoke,
    /// `cargo bench`: warm up, then sample.
    Measure { sample_size: u32 },
}

impl Bencher {
    /// Run the benchmark payload, timing it in measure mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure { sample_size } => {
                // Warm-up: run until ~100ms or 3 iterations.
                let warm_start = Instant::now();
                let mut warm = 0u32;
                while warm < 3 || warm_start.elapsed() < Duration::from_millis(100) {
                    black_box(f());
                    warm += 1;
                    if warm >= sample_size.max(3) {
                        break;
                    }
                }
                // Sample: bounded by sample_size iterations and ~2s wall
                // clock, whichever comes first.
                let budget = Duration::from_secs(2);
                let start = Instant::now();
                let mut iters = 0u64;
                while iters < sample_size as u64 && start.elapsed() < budget {
                    black_box(f());
                    iters += 1;
                }
                let iters = iters.max(1);
                self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration workload so a
    /// rate is reported alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of measurement samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, &mut f);
        self
    }

    /// Run one benchmark taking a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mode = if self.criterion.measure {
            Mode::Measure { sample_size: self.sample_size }
        } else {
            Mode::Smoke
        };
        let mut b = Bencher { mode, mean_ns: 0.0 };
        f(&mut b);
        if mode != Mode::Smoke {
            let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, name, b.mean_ns);
            if let Some(t) = self.throughput {
                let per_sec = |n: u64| n as f64 / (b.mean_ns / 1e9);
                match t {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  ({:.1} MiB/s)", per_sec(n) / (1 << 20) as f64));
                    }
                    Throughput::BytesDecimal(n) => {
                        line.push_str(&format!("  ({:.1} MB/s)", per_sec(n) / 1e6));
                    }
                }
            }
            println!("{line}");
        }
    }

    /// End the group (reporting is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

/// Benchmark driver. `--bench` in the process arguments (what
/// `cargo bench` passes to a `harness = false` target) selects measure
/// mode; otherwise benchmarks run once as smoke tests.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 20,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_payload_once() {
        let mut c = Criterion { measure: false };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_samples_and_reports() {
        let mut c = Criterion { measure: true };
        let mut runs = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                runs += x;
            })
        });
        g.finish();
        assert!(runs > 0);
    }
}
