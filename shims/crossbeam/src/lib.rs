//! Offline stand-in for `crossbeam`, providing the `channel` subset this
//! workspace uses on top of `std::sync::mpsc`.

/// Multi-producer channels with the crossbeam-channel API shape.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a channel (bounded or unbounded).
    pub enum Sender<T> {
        /// Sender of a bounded (blocking at capacity) channel.
        Bounded(mpsc::SyncSender<T>),
        /// Sender of an unbounded channel.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `t`, blocking if the channel is bounded and full.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(t).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(t).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate over messages until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Drain currently queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Create a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_timeout_and_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
