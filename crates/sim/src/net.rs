//! Network model: per-node NICs with finite bandwidth and a global LAN
//! latency.
//!
//! The model is store-and-forward with FIFO byte pipes, the standard
//! lightweight contention model for cluster simulations:
//!
//! * a message of size `S` first occupies the sender's **egress** pipe for
//!   `S / bw(sender)`,
//! * then crosses the wire (fixed `latency`),
//! * then occupies the receiver's **ingress** pipe for `S / bw(receiver)`,
//!   and is delivered when that completes.
//!
//! Because each pipe is FIFO, `k` concurrent senders targeting one node
//! share its ingress capacity, which is exactly the mechanism behind the
//! paper's throughput plateaus and DoS collapse: flooding a data provider's
//! ingress starves the correct clients queued behind the flood.
//!
//! A node whose NIC is marked down neither sends nor receives; in-flight
//! messages to it are dropped at delivery time.

use crate::time::{transfer_time, SimDuration, SimTime};

/// Identifies a simulated node (one actor == one node == one NIC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Sentinel sender used for messages injected from outside the
    /// simulation (bootstrap traffic); bypasses egress modeling.
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// Index into dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static configuration of a node's NIC.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// NIC capacity in bytes/second; `0` means infinite (unmodeled).
    pub bandwidth: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        // 1 Gb/s, the Grid'5000 cluster NIC the paper's deployments used.
        NodeConfig { bandwidth: 125_000_000 }
    }
}

impl NodeConfig {
    /// A NIC with infinite bandwidth (control-plane-only nodes).
    pub fn unlimited() -> Self {
        NodeConfig { bandwidth: 0 }
    }

    /// A NIC with the given capacity in bytes per second.
    pub fn with_bandwidth(bytes_per_sec: u64) -> Self {
        NodeConfig { bandwidth: bytes_per_sec }
    }
}

/// Global network parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// One-way wire latency between any two nodes.
    pub latency: SimDuration,
    /// Fixed per-message overhead added to every transfer (headers,
    /// framing, RPC envelope).
    pub header_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: SimDuration::from_micros(100),
            header_bytes: 256,
        }
    }
}

/// Dynamic state of one NIC.
#[derive(Clone, Copy, Debug)]
pub struct NicState {
    /// Earliest time the egress pipe is free.
    pub egress_free_at: SimTime,
    /// Earliest time the ingress pipe is free.
    pub ingress_free_at: SimTime,
    /// NIC capacity (bytes/s, 0 = infinite).
    pub bandwidth: u64,
    /// Whether the node is up.
    pub up: bool,
    /// Total bytes pushed through egress.
    pub bytes_sent: u64,
    /// Total bytes pushed through ingress.
    pub bytes_recv: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received (delivered).
    pub msgs_recv: u64,
}

impl NicState {
    fn new(cfg: NodeConfig) -> Self {
        NicState {
            egress_free_at: SimTime::ZERO,
            ingress_free_at: SimTime::ZERO,
            bandwidth: cfg.bandwidth,
            up: true,
            bytes_sent: 0,
            bytes_recv: 0,
            msgs_sent: 0,
            msgs_recv: 0,
        }
    }

    /// Fraction of the window `[from, to]` this NIC's ingress was busy,
    /// measured optimistically from the queue head (used by load probes).
    pub fn ingress_backlog(&self, now: SimTime) -> SimDuration {
        self.ingress_free_at.since(now)
    }
}

/// Breakdown of one scheduled transfer's delivery delay, in nanoseconds.
/// Produced by [`Network::schedule_transfer_timed`] for tracing; the sum
/// of the three parts equals delivery time minus send time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferTiming {
    /// Time spent waiting for the egress and ingress pipes to free up.
    pub queue_ns: u64,
    /// Time spent serializing bytes through both NICs.
    pub xfer_ns: u64,
    /// Fixed wire latency.
    pub wire_ns: u64,
}

/// The cluster network: a dense table of NICs plus global parameters.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    nics: Vec<NicState>,
}

impl Network {
    /// Create an empty network with the given global parameters.
    pub fn new(cfg: NetConfig) -> Self {
        Network { cfg, nics: Vec::new() }
    }

    /// Register a new node; returns its id.
    pub fn add_node(&mut self, cfg: NodeConfig) -> NodeId {
        let id = NodeId(self.nics.len() as u32);
        self.nics.push(NicState::new(cfg));
        id
    }

    /// Number of registered nodes (including down ones).
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// Immutable view of a NIC's state.
    pub fn nic(&self, id: NodeId) -> &NicState {
        &self.nics[id.index()]
    }

    /// Is the node currently up?
    pub fn is_up(&self, id: NodeId) -> bool {
        id == NodeId::EXTERNAL || self.nics.get(id.index()).is_some_and(|n| n.up)
    }

    /// Mark a node down. In-flight messages to it are dropped on arrival.
    pub fn set_down(&mut self, id: NodeId) {
        if let Some(n) = self.nics.get_mut(id.index()) {
            n.up = false;
        }
    }

    /// Bring a node back up (pipes restart empty).
    pub fn set_up(&mut self, id: NodeId, now: SimTime) {
        if let Some(n) = self.nics.get_mut(id.index()) {
            n.up = true;
            n.egress_free_at = now;
            n.ingress_free_at = now;
        }
    }

    /// Compute the delivery time of a `payload_bytes`-sized message sent at
    /// `now` from `from` to `to`, mutating both pipes' occupancy. Returns
    /// `None` if either endpoint is down (the message is lost).
    ///
    /// `from == to` (loopback) and `from == EXTERNAL` skip the network
    /// entirely and deliver after a negligible fixed delay.
    pub fn schedule_transfer(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
    ) -> Option<SimTime> {
        self.schedule_transfer_timed(now, from, to, payload_bytes).map(|(at, _)| at)
    }

    /// [`Network::schedule_transfer`] plus the delay breakdown consumed
    /// by tracing. The delivery-time arithmetic is *identical* — the
    /// breakdown reports intermediate values the model computes anyway,
    /// so traced and untraced runs schedule byte-identical events.
    pub fn schedule_transfer_timed(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
    ) -> Option<(SimTime, TransferTiming)> {
        if !self.is_up(to) || !self.is_up(from) {
            return None;
        }
        if from == to || from == NodeId::EXTERNAL {
            return Some((now + SimDuration::from_nanos(1), TransferTiming::default()));
        }
        let size = payload_bytes + self.cfg.header_bytes;

        let src = &mut self.nics[from.index()];
        let egress_start = now.max(src.egress_free_at);
        let egress_done = egress_start + transfer_time(size, src.bandwidth);
        src.egress_free_at = egress_done;
        src.bytes_sent += size;
        src.msgs_sent += 1;

        let dst = &mut self.nics[to.index()];
        let arrive = egress_done + self.cfg.latency;
        let recv_start = arrive.max(dst.ingress_free_at);
        let recv_done = recv_start + transfer_time(size, dst.bandwidth);
        dst.ingress_free_at = recv_done;
        dst.bytes_recv += size;
        dst.msgs_recv += 1;

        let timing = TransferTiming {
            queue_ns: egress_start.since(now).as_nanos() + recv_start.since(arrive).as_nanos(),
            xfer_ns: egress_done.since(egress_start).as_nanos()
                + recv_done.since(recv_start).as_nanos(),
            wire_ns: self.cfg.latency.as_nanos(),
        };
        Some((recv_done, timing))
    }

    /// Expedited variant of [`Network::schedule_transfer`]: skips *both*
    /// byte pipes (models transport-level control packets — connection
    /// refusals, resets — which are tiny, generated by the kernel, and
    /// delivered regardless of application send/receive backlogs). Pays
    /// wire latency plus the packet's own serialization time, but does
    /// not occupy or wait for either queue.
    pub fn schedule_transfer_expedited(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
    ) -> Option<SimTime> {
        if !self.is_up(to) || !self.is_up(from) {
            return None;
        }
        if from == to || from == NodeId::EXTERNAL {
            return Some(now + SimDuration::from_nanos(1));
        }
        let size = payload_bytes + self.cfg.header_bytes;
        let dst = &mut self.nics[to.index()];
        dst.bytes_recv += size;
        dst.msgs_recv += 1;
        Some(now + self.cfg.latency + transfer_time(size, dst.bandwidth))
    }

    /// Global network parameters.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetConfig { latency: SimDuration::from_micros(100), header_bytes: 0 })
    }

    #[test]
    fn uncontended_transfer_is_latency_plus_two_pipes() {
        let mut n = net();
        let a = n.add_node(NodeConfig::with_bandwidth(1_000_000)); // 1 MB/s
        let b = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        let t = n.schedule_transfer(SimTime::ZERO, a, b, 1_000_000).unwrap();
        // 1 s egress + 100 µs wire + 1 s ingress.
        assert_eq!(t.as_nanos(), 2_000_100_000);
    }

    #[test]
    fn ingress_contention_serializes_receivers() {
        let mut n = net();
        let a = n.add_node(NodeConfig::unlimited());
        let b = n.add_node(NodeConfig::unlimited());
        let dst = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        let t1 = n.schedule_transfer(SimTime::ZERO, a, dst, 1_000_000).unwrap();
        let t2 = n.schedule_transfer(SimTime::ZERO, b, dst, 1_000_000).unwrap();
        // Second transfer queues behind the first on dst's ingress.
        assert!(t2 > t1);
        assert_eq!((t2 - t1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn egress_contention_serializes_senders() {
        let mut n = net();
        let src = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        let d1 = n.add_node(NodeConfig::unlimited());
        let d2 = n.add_node(NodeConfig::unlimited());
        let t1 = n.schedule_transfer(SimTime::ZERO, src, d1, 500_000).unwrap();
        let t2 = n.schedule_transfer(SimTime::ZERO, src, d2, 500_000).unwrap();
        assert_eq!((t2 - t1).as_nanos(), 500_000_000);
    }

    #[test]
    fn down_nodes_drop_messages() {
        let mut n = net();
        let a = n.add_node(NodeConfig::default());
        let b = n.add_node(NodeConfig::default());
        n.set_down(b);
        assert!(n.schedule_transfer(SimTime::ZERO, a, b, 10).is_none());
        assert!(!n.is_up(b));
        n.set_up(b, SimTime::ZERO + SimDuration::from_secs(1));
        assert!(n.schedule_transfer(SimTime::ZERO + SimDuration::from_secs(1), a, b, 10).is_some());
    }

    #[test]
    fn loopback_and_external_bypass_network() {
        let mut n = net();
        let a = n.add_node(NodeConfig::with_bandwidth(1));
        let t = n.schedule_transfer(SimTime::ZERO, a, a, u64::MAX / 4).unwrap();
        assert!(t.as_nanos() <= 1);
        let t = n.schedule_transfer(SimTime::ZERO, NodeId::EXTERNAL, a, 1 << 40).unwrap();
        assert!(t.as_nanos() <= 1);
    }

    #[test]
    fn header_overhead_is_charged() {
        let mut n = Network::new(NetConfig { latency: SimDuration::ZERO, header_bytes: 1_000_000 });
        let a = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        let b = n.add_node(NodeConfig::unlimited());
        let t = n.schedule_transfer(SimTime::ZERO, a, b, 0).unwrap();
        assert_eq!(t.as_nanos(), 1_000_000_000, "headers alone take 1s at 1MB/s");
    }

    #[test]
    fn expedited_transfers_bypass_both_queues() {
        let mut n = net();
        let a = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        let b = n.add_node(NodeConfig::with_bandwidth(1_000_000));
        // Jam both pipes with a big ordinary transfer.
        n.schedule_transfer(SimTime::ZERO, a, b, 10_000_000).unwrap();
        // An expedited control packet is delivered at ~latency anyway.
        let t = n.schedule_transfer_expedited(SimTime::ZERO, a, b, 0).unwrap();
        assert!(t.as_nanos() < 1_000_000, "expedited delivery at {t}");
        // And it did not push back the data queues.
        let t2 = n.schedule_transfer(SimTime::ZERO, a, b, 0).unwrap();
        assert!(t2.as_secs_f64() > 19.0, "queues unaffected: {t2}");
    }

    #[test]
    fn nic_counters_track_traffic() {
        let mut n = net();
        let a = n.add_node(NodeConfig::default());
        let b = n.add_node(NodeConfig::default());
        n.schedule_transfer(SimTime::ZERO, a, b, 123).unwrap();
        assert_eq!(n.nic(a).msgs_sent, 1);
        assert_eq!(n.nic(a).bytes_sent, 123);
        assert_eq!(n.nic(b).msgs_recv, 1);
        assert_eq!(n.nic(b).bytes_recv, 123);
    }
}
