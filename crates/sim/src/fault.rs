//! Deterministic fault injection: seeded crash/restart schedules.
//!
//! A [`FaultPlan`] is pure data — a time-ordered list of [`FaultEvent`]s
//! saying *when* each node crashes and comes back. Plans are either built
//! explicitly or generated from a seed with [`FaultPlan::crash_restart`],
//! so two runs with the same seed inject byte-identical fault schedules.
//! [`run_with_faults`] interleaves a plan with the event loop, calling a
//! caller-supplied `revive` closure to build the fresh actor for each
//! restart (a restarted node keeps its [`NodeId`] but starts from a clean
//! slate — see [`World::restart`]).
//!
//! Message-level faults (probabilistic datagram loss) are a separate,
//! composable knob: [`World::set_message_loss`].
//!
//! # Example: a seeded crash-injection run
//!
//! ```
//! use sads_sim::fault::{run_with_faults, FaultPlan};
//! use sads_sim::{Actor, Ctx, Message, NodeConfig, NodeId, SimDuration, SimTime, World};
//!
//! /// Counts one tick per second while alive.
//! struct Ticker;
//! impl Actor for Ticker {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.set_timer(SimDuration::from_secs(1), 0);
//!     }
//!     fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
//!         ctx.incr("ticks", 1);
//!         ctx.set_timer(SimDuration::from_secs(1), 0);
//!     }
//! }
//!
//! let mut world = World::with_seed(42);
//! let node = world.add_node(Box::new(Ticker), NodeConfig::default());
//!
//! // One crash at t = 3 s, back up at t = 6 s (here spelled explicitly;
//! // `FaultPlan::crash_restart` draws whole schedules from a seed).
//! let mut plan = FaultPlan::builder()
//!     .crash_at(node, SimTime::from_secs(3))
//!     .restart_at(node, SimTime::from_secs(6))
//!     .build();
//!
//! run_with_faults(&mut world, &mut plan, SimTime::from_secs(10), 10_000, |_| {
//!     Box::new(Ticker)
//! });
//!
//! // Alive for t ∈ (0, 3] and (6, 10]: ticks at 1,2,3 and 7,8,9,10.
//! assert_eq!(world.metrics().counter("ticks"), 7);
//! assert_eq!(world.metrics().counter("fault.crashes"), 1);
//! assert_eq!(world.metrics().counter("fault.restarts"), 1);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::net::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::world::{Actor, RunOutcome, World};

/// What happens to a node at a [`FaultEvent`]'s time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node crashes: NIC down, actor state lost, timers dead.
    Crash,
    /// The node restarts with a fresh actor at the same [`NodeId`].
    Restart,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Crash or restart.
    pub kind: FaultKind,
}

/// A time-ordered, replayable schedule of crashes and restarts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    next: usize,
}

/// Incremental [`FaultPlan`] construction.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    /// Schedule a crash of `node` at `at`.
    pub fn crash_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push(FaultEvent { at, node, kind: FaultKind::Crash });
        self
    }

    /// Schedule a restart of `node` at `at`.
    pub fn restart_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push(FaultEvent { at, node, kind: FaultKind::Restart });
        self
    }

    /// Finish: events are sorted by time (stably, so same-time events
    /// keep insertion order).
    pub fn build(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        FaultPlan { events: self.events, next: 0 }
    }
}

impl FaultPlan {
    /// Start building a plan by hand.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// Generate a seeded crash/restart schedule over `nodes`.
    ///
    /// Crashes arrive with a mean inter-crash gap of `mean_between`
    /// (uniform on `[0.5, 1.5] ×` the mean, so schedules are bursty but
    /// bounded), each victim is drawn uniformly from the nodes currently
    /// up, and every crash is paired with a restart `downtime` later.
    /// Only crash/restart pairs that complete before `horizon` are kept,
    /// so a plan never leaves a node down at the end of the window. The
    /// same `(seed, nodes, horizon, mean_between, downtime)` always
    /// yields the same plan.
    pub fn crash_restart(
        seed: u64,
        nodes: &[NodeId],
        horizon: SimTime,
        mean_between: SimDuration,
        downtime: SimDuration,
    ) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = FaultPlan::builder();
        if nodes.is_empty() || mean_between == SimDuration::ZERO {
            return b.build();
        }
        // Next time each node is eligible to crash again (must be back up).
        let mut up_at = vec![SimTime::ZERO; nodes.len()];
        let mut t = SimTime::ZERO;
        loop {
            let gap_ns = rng.random_range(
                (mean_between.as_nanos() / 2)..=(mean_between.as_nanos() * 3 / 2),
            );
            t += SimDuration::from_nanos(gap_ns);
            let back_up = t + downtime;
            if back_up > horizon {
                return b.build();
            }
            let eligible: Vec<usize> =
                (0..nodes.len()).filter(|&i| up_at[i] <= t).collect();
            let Some(&victim) = eligible.get(rng.random_range(0..eligible.len().max(1))) else {
                continue; // everyone is down; try the next arrival
            };
            up_at[victim] = back_up;
            b = b.crash_at(nodes[victim], t).restart_at(nodes[victim], back_up);
        }
    }

    /// All scheduled events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Time of the next unapplied event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Pop the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<FaultEvent> {
        let ev = self.events.get(self.next)?;
        if ev.at <= now {
            self.next += 1;
            Some(*ev)
        } else {
            None
        }
    }

    /// Number of scheduled crashes.
    pub fn crashes(&self) -> usize {
        self.events.iter().filter(|e| e.kind == FaultKind::Crash).count()
    }
}

/// Run `world` until `deadline`, applying `plan`'s crashes and restarts
/// at their scheduled times. `revive` builds the fresh actor installed
/// at each restart (same [`NodeId`], clean state). `max_events` is a
/// per-segment safety cap, as in [`World::run_until`]; hitting it aborts
/// the run with [`RunOutcome::EventLimit`]. Injections are counted under
/// the `fault.crashes` / `fault.restarts` metrics.
pub fn run_with_faults(
    world: &mut World,
    plan: &mut FaultPlan,
    deadline: SimTime,
    max_events: u64,
    mut revive: impl FnMut(NodeId) -> Box<dyn Actor>,
) -> RunOutcome {
    loop {
        let Some(stop) = plan.next_at().filter(|&t| t <= deadline) else {
            return world.run_until(deadline, max_events);
        };
        if world.run_until(stop, max_events) == RunOutcome::EventLimit {
            return RunOutcome::EventLimit;
        }
        // A quiescent world leaves the clock at the last processed event;
        // pull it forward so the due faults actually apply.
        world.advance_to(stop);
        while let Some(ev) = plan.pop_due(world.now()) {
            match ev.kind {
                FaultKind::Crash => {
                    world.crash(ev.node);
                    world.metrics_mut().incr("fault.crashes", 1);
                }
                FaultKind::Restart => {
                    world.restart(ev.node, revive(ev.node));
                    world.metrics_mut().incr("fault.restarts", 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn generated_schedule_is_deterministic_and_paired() {
        let ns = nodes(5);
        let mk = || {
            FaultPlan::crash_restart(
                99,
                &ns,
                SimTime::from_secs(120),
                SimDuration::from_secs(10),
                SimDuration::from_secs(5),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!((x.at, x.node, x.kind), (y.at, y.node, y.kind));
        }
        assert!(a.crashes() > 0, "a 120 s window at MTBF 10 s must crash someone");
        // Every crash pairs with a restart of the same node, downtime later.
        let crashes: Vec<_> =
            a.events().iter().filter(|e| e.kind == FaultKind::Crash).collect();
        let restarts: Vec<_> =
            a.events().iter().filter(|e| e.kind == FaultKind::Restart).collect();
        assert_eq!(crashes.len(), restarts.len());
        for c in &crashes {
            assert!(restarts
                .iter()
                .any(|r| r.node == c.node && r.at == c.at + SimDuration::from_secs(5)));
        }
        // No node crashes again while scheduled down.
        for c in &crashes {
            let overlapping = crashes.iter().filter(|d| {
                d.node == c.node && d.at > c.at && d.at < c.at + SimDuration::from_secs(5)
            });
            assert_eq!(overlapping.count(), 0);
        }
    }

    #[test]
    fn empty_inputs_produce_empty_plans() {
        let p = FaultPlan::crash_restart(
            1,
            &[],
            SimTime::from_secs(60),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        assert!(p.events().is_empty());
        let p = FaultPlan::crash_restart(
            1,
            &nodes(3),
            SimTime::from_secs(60),
            SimDuration::ZERO,
            SimDuration::from_secs(1),
        );
        assert!(p.events().is_empty());
    }

    #[test]
    fn pop_due_walks_in_order() {
        let n = NodeId(0);
        let mut p = FaultPlan::builder()
            .restart_at(n, SimTime::from_secs(4))
            .crash_at(n, SimTime::from_secs(2))
            .build();
        assert_eq!(p.next_at(), Some(SimTime::from_secs(2)));
        assert!(p.pop_due(SimTime::from_secs(1)).is_none());
        let ev = p.pop_due(SimTime::from_secs(2)).unwrap();
        assert_eq!(ev.kind, FaultKind::Crash);
        let ev = p.pop_due(SimTime::from_secs(10)).unwrap();
        assert_eq!(ev.kind, FaultKind::Restart);
        assert!(p.pop_due(SimTime::MAX).is_none());
    }
}
