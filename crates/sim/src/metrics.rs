//! Lightweight metric recording for simulations.
//!
//! Experiments need time series ("average client throughput over time"),
//! counters ("chunks written") and distributions ("detection delay").
//! [`MetricSink`] collects all three keyed by a static-ish metric name and
//! turns them into CSV rows for the experiment harness.
//!
//! Internally names are interned to dense `u32` ids on first use, so the
//! hot path (`incr`/`record`, called per simulated event) is one hash
//! lookup plus a `Vec` index — no allocation, no tree rebalancing. Ids can
//! be captured once via [`MetricSink::intern`] and fed to
//! [`MetricSink::incr_id`] / [`MetricSink::record_id`] to skip even the
//! hash lookup. Report-time accessors sort by name, so output stays
//! deterministic regardless of interning order.

use std::collections::HashMap;

use crate::time::SimTime;

/// One `(time, value)` observation of a time-series metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When the observation was made.
    pub at: SimTime,
    /// Observed value.
    pub value: f64,
}

/// A dense handle for an interned metric name (see [`MetricSink::intern`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

/// Collects counters, gauges (time series) and raw distributions.
///
/// Names are free-form and interned on first use; counters and series of
/// the same name share one id.
#[derive(Debug, Default)]
pub struct MetricSink {
    index: HashMap<String, u32>,
    names: Vec<String>,
    /// Id-indexed counter values; `counter_set` marks ids whose counter
    /// was actually incremented (so `counter_names` does not report ids
    /// only ever used as series, matching the pre-interning behaviour).
    counters: Vec<u64>,
    counter_set: Vec<bool>,
    series: Vec<Vec<Sample>>,
}

impl MetricSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning a dense id valid for this sink's lifetime.
    pub fn intern(&mut self, name: &str) -> MetricId {
        if let Some(&id) = self.index.get(name) {
            return MetricId(id);
        }
        let id = self.names.len() as u32;
        self.index.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        self.counters.push(0);
        self.counter_set.push(false);
        self.series.push(Vec::new());
        MetricId(id)
    }

    /// Add `delta` to the named counter.
    pub fn incr(&mut self, name: &str, delta: u64) {
        let id = self.intern(name);
        self.incr_id(id, delta);
    }

    /// Add `delta` to an interned counter (allocation- and hash-free).
    pub fn incr_id(&mut self, id: MetricId, delta: u64) {
        self.counters[id.0 as usize] += delta;
        self.counter_set[id.0 as usize] = true;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.index.get(name).map(|&id| self.counters[id as usize]).unwrap_or(0)
    }

    /// Append an observation to the named time series.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        let id = self.intern(name);
        self.record_id(id, at, value);
    }

    /// Append an observation to an interned series (allocation- and
    /// hash-free).
    pub fn record_id(&mut self, id: MetricId, at: SimTime, value: f64) {
        self.series[id.0 as usize].push(Sample { at, value });
    }

    /// The full series recorded under `name` (empty slice if absent).
    pub fn series(&self, name: &str) -> &[Sample] {
        self.index
            .get(name)
            .map(|&id| self.series[id as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Names of all recorded series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        let mut v: Vec<&str> = self
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.series[*i].is_empty())
            .map(|(_, n)| n.as_str())
            .collect();
        v.sort_unstable();
        v.into_iter()
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        let mut v: Vec<&str> = self
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| self.counter_set[*i])
            .map(|(_, n)| n.as_str())
            .collect();
        v.sort_unstable();
        v.into_iter()
    }

    /// Mean of a series' values, or `None` if empty.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|x| x.value).sum::<f64>() / s.len() as f64)
    }

    /// Minimum and maximum of a series' values, or `None` if empty.
    pub fn min_max(&self, name: &str) -> Option<(f64, f64)> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in s {
            lo = lo.min(x.value);
            hi = hi.max(x.value);
        }
        Some((lo, hi))
    }

    /// `p`-th percentile (0..=100) of a series' values, by nearest-rank.
    pub fn percentile(&self, name: &str, p: f64) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = s.iter().map(|x| x.value).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        Some(v[rank.min(v.len() - 1)])
    }

    /// Bucket a series into fixed-width time bins and average values inside
    /// each bin. Useful for turning bursty per-event samples into a smooth
    /// timeline. Returns `(bin_start_secs, mean_value)` pairs; empty bins
    /// are skipped.
    pub fn binned_mean(&self, name: &str, bin_secs: f64) -> Vec<(f64, f64)> {
        let s = self.series(name);
        let mut bins: std::collections::BTreeMap<u64, (f64, u64)> =
            std::collections::BTreeMap::new();
        for x in s {
            let b = (x.at.as_secs_f64() / bin_secs) as u64;
            let e = bins.entry(b).or_insert((0.0, 0));
            e.0 += x.value;
            e.1 += 1;
        }
        bins.into_iter()
            .map(|(b, (sum, n))| (b as f64 * bin_secs, sum / n as f64))
            .collect()
    }

    /// Merge another sink into this one (counters add, series concatenate).
    /// Ids are remapped by name, so sinks with different interning orders
    /// merge correctly.
    pub fn merge(&mut self, other: MetricSink) {
        for (i, name) in other.names.iter().enumerate() {
            let id = self.intern(name);
            if other.counter_set[i] {
                self.incr_id(id, other.counters[i]);
            }
        }
        for (i, name) in other.names.into_iter().enumerate() {
            if other.series[i].is_empty() {
                continue;
            }
            let id = self.intern(&name);
            let dst = &mut self.series[id.0 as usize];
            dst.extend_from_slice(&other.series[i]);
            dst.sort_by_key(|s| s.at);
        }
    }

    /// Render a series as CSV with a header; times in seconds.
    pub fn series_csv(&self, name: &str) -> String {
        let mut out = String::from("time_s,value\n");
        for s in self.series(name) {
            out.push_str(&format!("{:.6},{}\n", s.at.as_secs_f64(), s.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricSink::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn series_statistics() {
        let mut m = MetricSink::new();
        for (i, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            m.record("tp", t(i as u64), *v);
        }
        assert_eq!(m.mean("tp"), Some(25.0));
        assert_eq!(m.min_max("tp"), Some((10.0, 40.0)));
        assert_eq!(m.percentile("tp", 0.0), Some(10.0));
        assert_eq!(m.percentile("tp", 100.0), Some(40.0));
        assert_eq!(m.mean("absent"), None);
    }

    #[test]
    fn binned_mean_averages_within_bins() {
        let mut m = MetricSink::new();
        m.record("tp", t(0), 10.0);
        m.record("tp", t(1), 20.0);
        m.record("tp", t(5), 50.0);
        let bins = m.binned_mean("tp", 2.0);
        assert_eq!(bins, vec![(0.0, 15.0), (4.0, 50.0)]);
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = MetricSink::new();
        a.incr("c", 1);
        a.record("s", t(2), 2.0);
        let mut b = MetricSink::new();
        b.incr("c", 2);
        b.record("s", t(1), 1.0);
        a.merge(b);
        assert_eq!(a.counter("c"), 3);
        let vals: Vec<f64> = a.series("s").iter().map(|x| x.value).collect();
        assert_eq!(vals, vec![1.0, 2.0], "series must be time-sorted after merge");
    }

    #[test]
    fn csv_rendering() {
        let mut m = MetricSink::new();
        m.record("s", t(1), 3.5);
        let csv = m.series_csv("s");
        assert!(csv.starts_with("time_s,value\n"));
        assert!(csv.contains("1.000000,3.5"));
    }

    #[test]
    fn interned_ids_hit_the_same_slots_as_names() {
        let mut m = MetricSink::new();
        let c = m.intern("hits");
        let s = m.intern("lat");
        m.incr_id(c, 4);
        m.incr("hits", 1);
        m.record_id(s, t(1), 2.0);
        m.record("lat", t(2), 4.0);
        assert_eq!(m.counter("hits"), 5);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.intern("hits"), c, "re-interning returns the same id");
        // A series-only name does not appear among counters…
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["hits"]);
        // …and names sort in report output regardless of intern order.
        assert_eq!(m.series_names().collect::<Vec<_>>(), vec!["lat"]);
        let mut m2 = MetricSink::new();
        m2.record("zz", t(0), 0.0);
        m2.record("aa", t(0), 0.0);
        assert_eq!(m2.series_names().collect::<Vec<_>>(), vec!["aa", "zz"]);
    }

    #[test]
    fn merge_remaps_ids_by_name() {
        // Different interning orders must still merge by name.
        let mut a = MetricSink::new();
        a.incr("x", 1);
        a.incr("y", 10);
        let mut b = MetricSink::new();
        b.incr("y", 20);
        b.incr("x", 2);
        a.merge(b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 30);
    }
}
