//! Lightweight metric recording for simulations.
//!
//! Experiments need time series ("average client throughput over time"),
//! counters ("chunks written") and distributions ("detection delay").
//! [`MetricSink`] collects all three keyed by a static-ish metric name and
//! turns them into CSV rows for the experiment harness.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// One `(time, value)` observation of a time-series metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When the observation was made.
    pub at: SimTime,
    /// Observed value.
    pub value: f64,
}

/// Collects counters, gauges (time series) and raw distributions.
///
/// Names are free-form; a `BTreeMap` keeps report output deterministic.
#[derive(Debug, Default)]
pub struct MetricSink {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<Sample>>,
}

impl MetricSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Append an observation to the named time series.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        self.series.entry(name.to_owned()).or_default().push(Sample { at, value });
    }

    /// The full series recorded under `name` (empty slice if absent).
    pub fn series(&self, name: &str) -> &[Sample] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of all recorded series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Mean of a series' values, or `None` if empty.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|x| x.value).sum::<f64>() / s.len() as f64)
    }

    /// Minimum and maximum of a series' values, or `None` if empty.
    pub fn min_max(&self, name: &str) -> Option<(f64, f64)> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in s {
            lo = lo.min(x.value);
            hi = hi.max(x.value);
        }
        Some((lo, hi))
    }

    /// `p`-th percentile (0..=100) of a series' values, by nearest-rank.
    pub fn percentile(&self, name: &str, p: f64) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = s.iter().map(|x| x.value).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
        Some(v[rank.min(v.len() - 1)])
    }

    /// Bucket a series into fixed-width time bins and average values inside
    /// each bin. Useful for turning bursty per-event samples into a smooth
    /// timeline. Returns `(bin_start_secs, mean_value)` pairs; empty bins
    /// are skipped.
    pub fn binned_mean(&self, name: &str, bin_secs: f64) -> Vec<(f64, f64)> {
        let s = self.series(name);
        let mut bins: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
        for x in s {
            let b = (x.at.as_secs_f64() / bin_secs) as u64;
            let e = bins.entry(b).or_insert((0.0, 0));
            e.0 += x.value;
            e.1 += 1;
        }
        bins.into_iter()
            .map(|(b, (sum, n))| (b as f64 * bin_secs, sum / n as f64))
            .collect()
    }

    /// Merge another sink into this one (counters add, series concatenate).
    pub fn merge(&mut self, other: MetricSink) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, mut v) in other.series {
            let dst = self.series.entry(k).or_default();
            dst.append(&mut v);
            dst.sort_by_key(|s| s.at);
        }
    }

    /// Render a series as CSV with a header; times in seconds.
    pub fn series_csv(&self, name: &str) -> String {
        let mut out = String::from("time_s,value\n");
        for s in self.series(name) {
            out.push_str(&format!("{:.6},{}\n", s.at.as_secs_f64(), s.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricSink::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn series_statistics() {
        let mut m = MetricSink::new();
        for (i, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            m.record("tp", t(i as u64), *v);
        }
        assert_eq!(m.mean("tp"), Some(25.0));
        assert_eq!(m.min_max("tp"), Some((10.0, 40.0)));
        assert_eq!(m.percentile("tp", 0.0), Some(10.0));
        assert_eq!(m.percentile("tp", 100.0), Some(40.0));
        assert_eq!(m.mean("absent"), None);
    }

    #[test]
    fn binned_mean_averages_within_bins() {
        let mut m = MetricSink::new();
        m.record("tp", t(0), 10.0);
        m.record("tp", t(1), 20.0);
        m.record("tp", t(5), 50.0);
        let bins = m.binned_mean("tp", 2.0);
        assert_eq!(bins, vec![(0.0, 15.0), (4.0, 50.0)]);
    }

    #[test]
    fn merge_combines_both_kinds() {
        let mut a = MetricSink::new();
        a.incr("c", 1);
        a.record("s", t(2), 2.0);
        let mut b = MetricSink::new();
        b.incr("c", 2);
        b.record("s", t(1), 1.0);
        a.merge(b);
        assert_eq!(a.counter("c"), 3);
        let vals: Vec<f64> = a.series("s").iter().map(|x| x.value).collect();
        assert_eq!(vals, vec![1.0, 2.0], "series must be time-sorted after merge");
    }

    #[test]
    fn csv_rendering() {
        let mut m = MetricSink::new();
        m.record("s", t(1), 3.5);
        let csv = m.series_csv("s");
        assert!(csv.starts_with("time_s,value\n"));
        assert!(csv.contains("1.000000,3.5"));
    }
}
