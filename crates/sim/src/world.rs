//! The simulation driver: a deterministic discrete-event loop hosting
//! message-passing actors on a modeled cluster network.
//!
//! One [`Actor`] runs per [`NodeId`]. Actors communicate exclusively by
//! sending [`Message`]s through [`Ctx::send`]; delivery times come from the
//! [`Network`] bandwidth model. Everything — RNG, event ordering, timer
//! firing — is deterministic given the seed, so experiments are exactly
//! reproducible.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use sads_telemetry::Registry;
use sads_trace::{FlightEvent, FlightRecorder, SpanKind, SpanRecord, SpanSink, TraceCtx};

use crate::equeue::CalendarQueue;
use crate::message::Message;
use crate::metrics::MetricSink;
use crate::net::{NetConfig, Network, NodeConfig, NodeId};
use crate::time::{SimDuration, SimTime};

/// A simulated process. Implementations are state machines driven by
/// message deliveries and timer firings.
pub trait Actor: Send {
    /// Called once when the node is added to the world.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A message from `from` has been fully received.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Message>);

    /// A timer armed with [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Optional post-run inspection hook: return `Some(self)` to let
    /// harnesses downcast and examine actor state after the simulation
    /// (used by the visualization tooling and tests).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

enum EventKind {
    Start { node: NodeId },
    Deliver { from: NodeId, to: NodeId, msg: Box<dyn Message>, trace: Option<TraceCtx> },
    Timer { node: NodeId, token: u64 },
}

impl EventKind {
    /// The node whose liveness gates this event's delivery.
    fn target(&self) -> NodeId {
        match self {
            EventKind::Start { node } | EventKind::Timer { node, .. } => *node,
            EventKind::Deliver { to, .. } => *to,
        }
    }

    /// Small discriminant folded into the event digest.
    fn tag(&self) -> u64 {
        match self {
            EventKind::Start { .. } => 1,
            EventKind::Deliver { .. } => 2,
            EventKind::Timer { .. } => 3,
        }
    }
}

struct Event {
    at: SimTime,
    seq: u64,
    /// Incarnation of the target node when the event was scheduled. A
    /// crash bumps the node's epoch, so events addressed to a previous
    /// incarnation (stale timers, in-flight messages) are discarded at
    /// dispatch instead of leaking into the restarted actor.
    epoch: u32,
    kind: EventKind,
}

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// The requested deadline was reached with events still pending.
    DeadlineReached,
    /// The safety event limit was hit (probable livelock in actor logic).
    EventLimit,
}

/// The simulation world: clock, event queue, actors, network, RNG, metrics.
pub struct World {
    now: SimTime,
    seq: u64,
    /// Pending events in a calendar queue: `O(1)` near-future pushes and
    /// cache-friendly pops at 10^5+ pending events, with the exact
    /// `(at, seq)` total order a binary heap would produce (so event
    /// digests are unchanged). See [`crate::equeue`].
    queue: CalendarQueue<Event>,
    actors: Vec<Option<Box<dyn Actor>>>,
    /// Per-node incarnation counter, bumped by [`World::crash`]; see
    /// [`Event::epoch`].
    epochs: Vec<u32>,
    net: Network,
    rng: SmallRng,
    metrics: MetricSink,
    events_processed: u64,
    /// Probability that a [`Ctx::send`]/[`Ctx::send_after`] message is
    /// silently lost, with a dedicated RNG so enabling loss never
    /// perturbs the actors' own random draws. `None` = lossless (the
    /// default); no RNG is consulted at all in that case, keeping
    /// fault-free traces byte-identical to builds without this knob.
    loss: Option<(f64, SmallRng)>,
    /// Span collector, when tracing is enabled. Tracing is purely
    /// observational: it never schedules events, draws RNG, or alters
    /// transfer arithmetic, so the event schedule is identical with the
    /// sink present or absent (verified by [`World::event_digest`]).
    span_sink: Option<Arc<SpanSink>>,
    /// Live metrics registry, when telemetry is enabled. Like tracing it
    /// is purely observational — registry cells are plain atomics that
    /// never schedule events or draw RNG — so the event schedule is
    /// identical with the registry present or absent.
    telemetry: Option<Arc<Registry>>,
    /// Flight recorder, when attached: every dispatched event is mirrored
    /// into the recorder's `"sim"` ring (a cached `Arc` so the per-event
    /// cost is one short mutex hold). Purely observational like the span
    /// sink — the event schedule is byte-identical with it on or off.
    flight: Option<(Arc<FlightRecorder>, Arc<sads_trace::Ring>)>,
    /// Running FNV-style fold over every dispatched event's
    /// `(time, seq, target, kind)`. Always on (a few integer ops per
    /// event); lets tests assert two runs executed byte-identical event
    /// schedules without retaining the schedules.
    digest: u64,
}

impl World {
    /// Create a world with the given RNG seed and network parameters.
    pub fn new(seed: u64, net_cfg: NetConfig) -> Self {
        World {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            actors: Vec::new(),
            epochs: Vec::new(),
            net: Network::new(net_cfg),
            rng: SmallRng::seed_from_u64(seed),
            metrics: MetricSink::new(),
            events_processed: 0,
            loss: None,
            span_sink: None,
            telemetry: None,
            flight: None,
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Create a world with default LAN parameters (1 Gb/s NICs, 100 µs).
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, NetConfig::default())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Order-sensitive digest of every event dispatched so far. Two runs
    /// that executed byte-identical event schedules have equal digests;
    /// any divergence in timing, ordering, or targeting changes it.
    pub fn event_digest(&self) -> u64 {
        self.digest
    }

    /// Install a span sink: every traced message transfer records a
    /// `Net` span, and actors can observe the sink through
    /// [`Ctx::span_sink`]. Tracing never perturbs the event schedule —
    /// see [`World::event_digest`].
    pub fn set_span_sink(&mut self, sink: Arc<SpanSink>) {
        self.span_sink = Some(sink);
    }

    /// The installed span sink, if tracing is enabled.
    pub fn span_sink(&self) -> Option<&Arc<SpanSink>> {
        self.span_sink.as_ref()
    }

    /// Install a live telemetry registry: actors observe it through
    /// [`Ctx::telemetry`] and instrument themselves with counters, gauges
    /// and histograms. Telemetry never perturbs the event schedule — see
    /// [`World::event_digest`].
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = Some(registry);
    }

    /// The installed telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Attach a flight recorder: every dispatched event is mirrored into
    /// its `"sim"` ring as a [`FlightEvent`] (`a` = event seq, `b` = event
    /// kind tag). Recording never perturbs the event schedule — see
    /// [`World::event_digest`].
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        let ring = recorder.ring("sim");
        self.flight = Some((recorder, ring));
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref().map(|(r, _)| r)
    }

    /// Add a node running `actor` with NIC config `cfg`. Its
    /// [`Actor::on_start`] runs at the current simulation time.
    pub fn add_node(&mut self, actor: Box<dyn Actor>, cfg: NodeConfig) -> NodeId {
        let id = self.net.add_node(cfg);
        debug_assert_eq!(id.index(), self.actors.len());
        self.actors.push(Some(actor));
        self.epochs.push(0);
        self.push(self.now, EventKind::Start { node: id });
        id
    }

    /// Inject a message from outside the simulation (bootstrap traffic).
    /// Delivered almost immediately, bypassing the network model.
    pub fn send_external(&mut self, to: NodeId, msg: Box<dyn Message>) {
        if let Some(at) = self.net.schedule_transfer(self.now, NodeId::EXTERNAL, to, 0) {
            self.push(at, EventKind::Deliver { from: NodeId::EXTERNAL, to, msg, trace: None });
        }
    }

    /// Crash a node: its NIC goes down, undelivered messages to it are
    /// dropped, its timers stop firing, and its actor is discarded.
    ///
    /// The node's incarnation epoch is bumped, so any event already in
    /// the queue for the old incarnation (an armed timer, a message in
    /// flight) is dead on arrival even if the node is later
    /// [restarted](World::restart) — a restarted node begins from a
    /// clean slate, exactly like a freshly added one.
    pub fn crash(&mut self, node: NodeId) {
        self.net.set_down(node);
        if let Some(slot) = self.actors.get_mut(node.index()) {
            *slot = None;
        }
        if let Some(e) = self.epochs.get_mut(node.index()) {
            *e += 1;
        }
    }

    /// Restart a previously [crashed](World::crash) node at the same
    /// [`NodeId`] with a fresh actor. The NIC comes back up with empty
    /// pipes, the actor's [`Actor::on_start`] runs at the current time,
    /// and nothing from the previous incarnation (state, timers,
    /// in-flight messages) survives. No-op if the node id was never
    /// added; replaces the live actor if the node was not actually down.
    pub fn restart(&mut self, node: NodeId, actor: Box<dyn Actor>) {
        let Some(slot) = self.actors.get_mut(node.index()) else {
            return;
        };
        *slot = Some(actor);
        self.net.set_up(node, self.now);
        self.push(self.now, EventKind::Start { node });
    }

    /// Make every [`Ctx::send`]/[`Ctx::send_after`] message be lost with
    /// probability `prob` (clamped to `[0, 1]`), using a dedicated RNG
    /// seeded with `seed` so the loss pattern is deterministic and
    /// independent of the actors' own random draws. Expedited sends
    /// (transport-level control traffic) are never dropped. A `prob` of
    /// zero turns loss off entirely; lost messages count under the
    /// `net.msg_lost` metric.
    pub fn set_message_loss(&mut self, prob: f64, seed: u64) {
        self.loss = if prob > 0.0 {
            Some((prob.min(1.0), SmallRng::seed_from_u64(seed)))
        } else {
            None
        };
    }

    /// Should the message currently being sent be dropped? Draws from
    /// the loss RNG only when loss injection is active.
    fn lose_message(&mut self) -> bool {
        let Some((prob, rng)) = &mut self.loss else {
            return false;
        };
        if rand::Rng::random_bool(rng, *prob) {
            self.metrics.incr("net.msg_lost", 1);
            true
        } else {
            false
        }
    }

    /// Is the node alive?
    pub fn is_up(&self, node: NodeId) -> bool {
        self.net.is_up(node) && self.actors.get(node.index()).is_some_and(Option::is_some)
    }

    /// Network state (NIC counters etc.).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Downcast a live actor for post-run inspection (requires the actor
    /// to opt in via [`Actor::as_any`]).
    pub fn actor_as<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.actors
            .get(node.index())?
            .as_deref()?
            .as_any()?
            .downcast_ref::<T>()
    }

    /// Recorded metrics.
    pub fn metrics(&self) -> &MetricSink {
        &self.metrics
    }

    /// Mutable access to metrics (for experiment harnesses that record
    /// world-level observations).
    pub fn metrics_mut(&mut self) -> &mut MetricSink {
        &mut self.metrics
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let epoch = self.epoch_of(kind.target());
        self.queue.push(at.as_nanos(), seq, Event { at, seq, epoch, kind });
    }

    /// Current incarnation of `node` (0 for ids outside the actor table,
    /// e.g. [`NodeId::EXTERNAL`]).
    fn epoch_of(&self, node: NodeId) -> u32 {
        self.epochs.get(node.index()).copied().unwrap_or(0)
    }

    /// Run until the queue drains or `deadline` passes, with a safety cap
    /// of `max_events`.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            let Some((head_at, _)) = self.queue.peek_key() else {
                return RunOutcome::Quiescent;
            };
            if SimTime(head_at) > deadline {
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            }
            if budget == 0 {
                return RunOutcome::EventLimit;
            }
            budget -= 1;
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.at >= self.now, "time must not go backwards");
            self.now = ev.at;
            self.events_processed += 1;
            for v in [ev.at.as_nanos(), ev.seq, ev.kind.target().0 as u64, ev.kind.tag()] {
                self.digest = (self.digest ^ v).wrapping_mul(0x1000_0000_01b3);
            }
            if let Some((_, ring)) = &self.flight {
                ring.record(FlightEvent {
                    at_ns: ev.at.as_nanos(),
                    dur_ns: 0,
                    label: match ev.kind.tag() {
                        1 => "start",
                        2 => "deliver",
                        _ => "timer",
                    },
                    node: ev.kind.target().0 as u64,
                    a: ev.seq,
                    b: ev.kind.tag(),
                });
            }
            if ev.epoch != self.epoch_of(ev.kind.target()) {
                // Addressed to a crashed incarnation: dead on arrival.
                self.metrics.incr("sim.stale_events", 1);
                continue;
            }
            self.dispatch(ev.kind);
        }
    }

    /// Run for a span of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration, max_events: u64) -> RunOutcome {
        self.run_until(self.now + span, max_events)
    }

    /// Run until the queue drains (bounded by `max_events`).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> RunOutcome {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Advance the clock to `t` if it is in the future (no-op otherwise,
    /// and `SimTime::MAX` is not a reachable instant). Used by harnesses
    /// that act on the world at scheduled points — fault injection,
    /// periodic snapshots — even when the event queue is momentarily
    /// empty, in which case [`World::run_until`] returns with the clock
    /// still at the last processed event.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now && t < SimTime::MAX {
            self.now = t;
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node } => self.with_actor(node, None, |a, ctx| a.on_start(ctx)),
            EventKind::Timer { node, token } => {
                self.with_actor(node, None, |a, ctx| a.on_timer(ctx, token))
            }
            EventKind::Deliver { from, to, msg, trace } => {
                self.with_actor(to, trace, |a, ctx| a.on_message(ctx, from, msg))
            }
        }
    }

    fn with_actor(
        &mut self,
        node: NodeId,
        trace: Option<TraceCtx>,
        f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>),
    ) {
        if !self.net.is_up(node) {
            return;
        }
        let Some(slot) = self.actors.get_mut(node.index()) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        let mut ctx = Ctx { world: self, id: node, trace };
        f(actor.as_mut(), &mut ctx);
        // A handler may crash its own node; only restore if still up.
        if self.net.is_up(node) {
            self.actors[node.index()] = Some(actor);
        }
    }
}

/// Handler-side view of the world: everything an actor may do while
/// processing an event.
pub struct Ctx<'a> {
    world: &'a mut World,
    id: NodeId,
    /// Causal context the current event was delivered with; outgoing
    /// sends inherit it, so replies propagate the trace with zero
    /// per-actor code.
    trace: Option<TraceCtx>,
}

impl Ctx<'_> {
    /// This actor's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The causal context the event being handled arrived with (set by
    /// the sender, or overridden via [`Ctx::set_trace_ctx`]).
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// Override the ambient causal context for the rest of this handler
    /// invocation (used by protocol roots — e.g. a client starting an
    /// operation — and by state machines resuming a session from a
    /// timer, where no delivery carried the context).
    pub fn set_trace_ctx(&mut self, trace: Option<TraceCtx>) {
        self.trace = trace;
    }

    /// The world's span sink, if tracing is enabled.
    pub fn span_sink(&self) -> Option<Arc<SpanSink>> {
        self.world.span_sink.clone()
    }

    /// The world's live telemetry registry, if enabled.
    pub fn telemetry(&self) -> Option<Arc<Registry>> {
        self.world.telemetry.clone()
    }

    /// Record a `Net` span for a transfer of `msg` departing `start` and
    /// delivered at `at`, as a child of the ambient trace context.
    fn trace_transfer(
        &mut self,
        msg: &dyn Message,
        start: SimTime,
        at: SimTime,
        timing: crate::net::TransferTiming,
    ) {
        let (Some(sink), Some(tc)) = (&self.world.span_sink, self.trace) else {
            return;
        };
        sink.record(SpanRecord {
            trace: tc.trace_id,
            span: sink.next_id(),
            parent: tc.span_id,
            service: "net",
            op: msg.op_name(),
            node: self.id.0 as u64,
            start_ns: start.as_nanos(),
            end_ns: at.as_nanos(),
            kind: SpanKind::Net,
            class: msg.span_class(),
            queue_ns: timing.queue_ns,
            xfer_ns: timing.xfer_ns,
            wire_ns: timing.wire_ns,
        });
    }

    /// Send `msg` to `to` through the modeled network. Silently dropped if
    /// either endpoint is down (like a real datagram), or — under
    /// [`World::set_message_loss`] — with the configured probability.
    pub fn send(&mut self, to: NodeId, msg: Box<dyn Message>) {
        if self.world.lose_message() {
            return;
        }
        let size = msg.wire_size();
        let now = self.world.now;
        if let Some((at, timing)) = self.world.net.schedule_transfer_timed(now, self.id, to, size)
        {
            self.trace_transfer(msg.as_ref(), now, at, timing);
            let trace = self.trace;
            self.world.push(at, EventKind::Deliver { from: self.id, to, msg, trace });
        }
    }

    /// Send bypassing this node's egress queue (transport-level control
    /// traffic: refusals, resets). Use sparingly — only for messages a
    /// real kernel would emit without waiting behind application data.
    pub fn send_expedited(&mut self, to: NodeId, msg: Box<dyn Message>) {
        let size = msg.wire_size();
        let now = self.world.now;
        if let Some(at) = self.world.net.schedule_transfer_expedited(now, self.id, to, size) {
            let timing = crate::net::TransferTiming {
                wire_ns: at.since(now).as_nanos(),
                ..Default::default()
            };
            self.trace_transfer(msg.as_ref(), now, at, timing);
            let trace = self.trace;
            self.world.push(at, EventKind::Deliver { from: self.id, to, msg, trace });
        }
    }

    /// Send after first spending `delay` of local processing time (models
    /// CPU cost before the reply hits the NIC).
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: Box<dyn Message>) {
        if self.world.lose_message() {
            return;
        }
        // Model: occupy nothing locally, just delay the network entry.
        let size = msg.wire_size();
        let start = self.world.now + delay;
        if let Some((at, timing)) =
            self.world.net.schedule_transfer_timed(start, self.id, to, size)
        {
            self.trace_transfer(msg.as_ref(), start, at, timing);
            let trace = self.trace;
            self.world.push(at, EventKind::Deliver { from: self.id, to, msg, trace });
        }
    }

    /// Arm a one-shot timer firing after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.world.now + delay;
        let node = self.id;
        self.world.push(at, EventKind::Timer { node, token });
    }

    /// Deterministic RNG shared by the whole world.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.world.rng
    }

    /// Record a time-series observation.
    pub fn record(&mut self, name: &str, value: f64) {
        let now = self.world.now;
        self.world.metrics.record(name, now, value);
    }

    /// Increment a counter metric.
    pub fn incr(&mut self, name: &str, delta: u64) {
        self.world.metrics.incr(name, delta);
    }

    /// Intern a metric name once; the id feeds [`Ctx::record_id`] /
    /// [`Ctx::incr_id`], skipping the per-call name lookup on hot paths.
    pub fn metric_id(&mut self, name: &str) -> crate::MetricId {
        self.world.metrics.intern(name)
    }

    /// Record a time-series observation under an interned id.
    pub fn record_id(&mut self, id: crate::MetricId, value: f64) {
        let now = self.world.now;
        self.world.metrics.record_id(id, now, value);
    }

    /// Increment a counter under an interned id.
    pub fn incr_id(&mut self, id: crate::MetricId, delta: u64) {
        self.world.metrics.incr_id(id, delta);
    }

    /// Spawn a new node at runtime (used by the elasticity controller to
    /// expand the provider pool). Its `on_start` runs after this event.
    pub fn spawn(&mut self, actor: Box<dyn Actor>, cfg: NodeConfig) -> NodeId {
        self.world.add_node(actor, cfg)
    }

    /// Crash a node (possibly this one).
    pub fn crash(&mut self, node: NodeId) {
        self.world.crash(node);
    }

    /// Is a node currently up?
    pub fn is_up(&self, node: NodeId) -> bool {
        self.world.net.is_up(node)
    }

    /// Outstanding ingress backlog of a node, as seen by an oracle. Used
    /// by load-probe actors that model SNMP-style NIC inspection.
    pub fn ingress_backlog(&self, node: NodeId) -> SimDuration {
        self.world.net.nic(node).ingress_backlog(self.world.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_message;

    #[derive(Debug)]
    struct Tick;
    impl_message!(Tick);

    #[derive(Debug)]
    struct Blob(u64);
    impl_message!(Blob, |m: &Blob| m.0);

    /// Echoes every message back to the sender, counting them.
    struct Echo {
        seen: u64,
    }
    impl Actor for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, _msg: Box<dyn Message>) {
            self.seen += 1;
            ctx.incr("echo.seen", 1);
            if from != NodeId::EXTERNAL {
                ctx.send(from, Box::new(Tick));
            }
        }
    }

    /// Sends one message to a peer on start, records when the echo returns.
    struct Pinger {
        peer: NodeId,
        bytes: u64,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, Box::new(Blob(self.bytes)));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, _msg: Box<dyn Message>) {
            ctx.record("rtt_done", ctx.now().as_secs_f64());
        }
    }

    #[test]
    fn ping_pong_round_trip_time_matches_model() {
        let mut w = World::new(1, NetConfig { latency: SimDuration::from_millis(1), header_bytes: 0 });
        let echo = w.add_node(Box::new(Echo { seen: 0 }), NodeConfig::with_bandwidth(1_000_000));
        let _p = w.add_node(
            Box::new(Pinger { peer: echo, bytes: 1_000_000 }),
            NodeConfig::with_bandwidth(1_000_000),
        );
        assert_eq!(w.run_to_quiescence(1000), RunOutcome::Quiescent);
        // Outbound: 1s egress + 1ms + 1s ingress; echo reply is size 0:
        // + 1ms. Total ≈ 2.002 s.
        let done = w.metrics().series("rtt_done")[0].value;
        assert!((done - 2.002).abs() < 1e-6, "got {done}");
        assert_eq!(w.metrics().counter("echo.seen"), 1);
    }

    #[test]
    fn timers_fire_in_order_and_once() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(2), 2);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(3), 3);
            }
            fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
                ctx.record("fired", token as f64);
            }
        }
        let mut w = World::with_seed(7);
        w.add_node(Box::new(T { fired: vec![] }), NodeConfig::default());
        w.run_to_quiescence(100);
        let fired: Vec<f64> = w.metrics().series("fired").iter().map(|s| s.value).collect();
        assert_eq!(fired, vec![1.0, 2.0, 3.0]);
        assert_eq!(w.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let mut w = World::with_seed(3);
        let echo = w.add_node(Box::new(Echo { seen: 0 }), NodeConfig::default());
        w.run_to_quiescence(10);
        w.crash(echo);
        assert!(!w.is_up(echo));
        w.send_external(echo, Box::new(Tick));
        w.run_to_quiescence(10);
        assert_eq!(w.metrics().counter("echo.seen"), 0);
    }

    #[test]
    fn deadline_stops_before_future_events() {
        let mut w = World::with_seed(3);
        struct Sleeper;
        impl Actor for Sleeper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(100), 0);
            }
            fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.incr("fired", 1);
            }
        }
        w.add_node(Box::new(Sleeper), NodeConfig::default());
        let out = w.run_for(SimDuration::from_secs(10), 1000);
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(w.metrics().counter("fired"), 0);
        assert_eq!(w.now().as_secs_f64(), 10.0);
        let out = w.run_to_quiescence(1000);
        assert_eq!(out, RunOutcome::Quiescent);
        assert_eq!(w.metrics().counter("fired"), 1);
    }

    #[test]
    fn event_limit_detects_livelock() {
        struct Loop {
            me: Option<NodeId>,
        }
        impl Actor for Loop {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.me = Some(ctx.id());
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
            fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
        }
        let mut w = World::with_seed(0);
        w.add_node(Box::new(Loop { me: None }), NodeConfig::default());
        assert_eq!(w.run_to_quiescence(100), RunOutcome::EventLimit);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64, sink: Option<Arc<SpanSink>>) -> (u64, f64, u64) {
            let mut w = World::with_seed(seed);
            if let Some(sink) = sink {
                w.set_span_sink(sink);
            }
            let echo = w.add_node(Box::new(Echo { seen: 0 }), NodeConfig::default());
            for _ in 0..10 {
                let _ = w.add_node(
                    Box::new(Pinger { peer: echo, bytes: 8 << 20 }),
                    NodeConfig::default(),
                );
            }
            w.run_to_quiescence(10_000);
            (w.events_processed(), w.now().as_secs_f64(), w.event_digest())
        }
        assert_eq!(run(42, None), run(42, None));
        // Installing a span sink must not perturb the event schedule:
        // tracing observes, never schedules.
        assert_eq!(run(42, None), run(42, Some(Arc::new(SpanSink::new()))));
    }

    #[test]
    fn traced_sends_record_net_spans_and_propagate_context() {
        /// Starts a trace, sends to the peer; the peer's reply (sent with
        /// no tracing code of its own) must carry the same trace.
        struct Tracer {
            peer: NodeId,
        }
        impl Actor for Tracer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let sink = ctx.span_sink().expect("sink installed");
                let trace_id = sink.next_id();
                let root = sink.next_id();
                ctx.set_trace_ctx(Some(TraceCtx { trace_id, span_id: root, parent: 0 }));
                ctx.send(self.peer, Box::new(Blob(1 << 20)));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {
                assert!(ctx.trace_ctx().is_some(), "reply must carry the trace");
                ctx.incr("tracer.reply_traced", 1);
            }
        }
        let mut w = World::with_seed(4);
        let sink = Arc::new(SpanSink::new());
        w.set_span_sink(Arc::clone(&sink));
        let echo = w.add_node(Box::new(Echo { seen: 0 }), NodeConfig::default());
        w.add_node(Box::new(Tracer { peer: echo }), NodeConfig::default());
        w.run_to_quiescence(1_000);
        assert_eq!(w.metrics().counter("tracer.reply_traced"), 1);
        let spans = sink.spans();
        // Outbound data message + echoed reply, both in the same trace.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace, spans[1].trace);
        assert!(spans.iter().all(|s| s.kind == SpanKind::Net));
        let data = &spans[0];
        assert!(data.xfer_ns > 0, "1 MiB at 1 Gb/s serializes for >0 ns");
        assert_eq!(
            data.duration_ns(),
            data.queue_ns + data.xfer_ns + data.wire_ns,
            "breakdown must sum to the delivery delay"
        );
    }

    #[test]
    fn restart_discards_stale_timers_and_messages() {
        /// Arms a 5 s timer on start; counts starts and timer firings.
        struct Beeper;
        impl Actor for Beeper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.incr("beeper.starts", 1);
                ctx.set_timer(SimDuration::from_secs(5), 0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {
                ctx.incr("beeper.msgs", 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.incr("beeper.beeps", 1);
            }
        }
        let mut w = World::with_seed(11);
        let b = w.add_node(Box::new(Beeper), NodeConfig::default());
        w.run_for(SimDuration::from_secs(1), 100); // started, timer armed at t=5
        w.send_external(b, Box::new(Tick)); // in flight when the crash hits
        w.crash(b);
        assert!(!w.is_up(b));
        w.run_for(SimDuration::from_secs(1), 100);
        w.restart(b, Box::new(Beeper));
        assert_eq!(w.run_to_quiescence(100), RunOutcome::Quiescent);
        assert!(w.is_up(b));
        // Two incarnations started; only the second one's timer fired; the
        // message addressed to the first incarnation died with it.
        assert_eq!(w.metrics().counter("beeper.starts"), 2);
        assert_eq!(w.metrics().counter("beeper.beeps"), 1);
        assert_eq!(w.metrics().counter("beeper.msgs"), 0);
        assert!(w.metrics().counter("sim.stale_events") >= 1);
    }

    #[test]
    fn message_loss_drops_sends_but_not_expedited() {
        struct Chatty {
            peer: NodeId,
        }
        impl Actor for Chatty {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..20 {
                    ctx.send(self.peer, Box::new(Tick));
                }
                ctx.send_expedited(self.peer, Box::new(Tick));
            }
            fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
        }
        struct Sink;
        impl Actor for Sink {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {
                ctx.incr("sink.got", 1);
            }
        }
        let mut w = World::with_seed(9);
        w.set_message_loss(1.0, 77);
        let sink = w.add_node(Box::new(Sink), NodeConfig::default());
        w.add_node(Box::new(Chatty { peer: sink }), NodeConfig::default());
        w.run_to_quiescence(1000);
        // All 20 regular sends lost; the expedited control packet arrives.
        assert_eq!(w.metrics().counter("sink.got"), 1);
        assert_eq!(w.metrics().counter("net.msg_lost"), 20);
    }

    #[test]
    fn spawn_at_runtime_starts_new_actor() {
        struct Spawner;
        impl Actor for Spawner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                struct Child;
                impl Actor for Child {
                    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                        ctx.incr("child.started", 1);
                    }
                    fn on_message(&mut self, _c: &mut Ctx<'_>, _f: NodeId, _m: Box<dyn Message>) {}
                }
                ctx.spawn(Box::new(Child), NodeConfig::default());
            }
        }
        let mut w = World::with_seed(5);
        w.add_node(Box::new(Spawner), NodeConfig::default());
        w.run_to_quiescence(100);
        assert_eq!(w.metrics().counter("child.started"), 1);
    }
}
