//! # sads-sim — deterministic cluster simulation substrate
//!
//! The paper's experiments ran on Grid'5000, a physical testbed with
//! hundreds of nodes. This crate is the substitute substrate: a
//! single-threaded, deterministic discrete-event simulator with
//!
//! * a virtual nanosecond clock ([`SimTime`], [`SimDuration`]),
//! * message-passing [`Actor`]s (one per simulated node),
//! * a store-and-forward NIC bandwidth model ([`Network`]) that produces
//!   realistic contention (throughput plateaus, DoS ingress saturation),
//! * timers, runtime node spawning (elasticity) and crash injection,
//! * a [`MetricSink`] for counters and time series.
//!
//! Determinism: given the same seed and the same actor set, every run
//! produces the identical event trace, which makes the paper-shaped
//! experiments exactly reproducible.
//!
//! ```
//! use sads_sim::*;
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl_message!(Hello);
//!
//! struct Greeter;
//! impl Actor for Greeter {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, _msg: Box<dyn Message>) {
//!         ctx.incr("greetings", 1);
//!     }
//! }
//!
//! let mut world = World::with_seed(42);
//! let g = world.add_node(Box::new(Greeter), NodeConfig::default());
//! world.send_external(g, Box::new(Hello));
//! world.run_to_quiescence(1_000);
//! assert_eq!(world.metrics().counter("greetings"), 1);
//! ```

#![warn(missing_docs)]

pub mod equeue;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod net;
pub mod time;
pub mod world;

pub use equeue::CalendarQueue;
pub use fault::{run_with_faults, FaultEvent, FaultKind, FaultPlan};
pub use message::{Message, MessageExt};
pub use metrics::{MetricId, MetricSink, Sample};
pub use net::{NetConfig, Network, NicState, NodeConfig, NodeId, TransferTiming};
pub use time::{transfer_time, SimDuration, SimTime};
pub use world::{Actor, Ctx, RunOutcome, World};

// Re-exported so runtimes built on the simulator can speak tracing
// vocabulary without a separate dependency declaration.
pub use sads_trace::{
    FlightDump, FlightEvent, FlightRecorder, Ring as FlightRing, SpanClass, SpanKind, SpanRecord,
    SpanSink, TraceCtx,
};

/// Re-exported so runtimes and services name telemetry types through the
/// sim crate they already depend on, mirroring the tracing re-exports.
pub use sads_telemetry::{
    derive_health, Counter, Gauge, HealthPolicy, HealthState, Histogram, NodeHealth, ProcSample,
    ProcSampler, Registry, Sample as TelemetrySample, SampleValue, Snapshot, HEARTBEAT_GAUGE,
};
