//! Simulated time: a monotonically increasing virtual clock with nanosecond
//! resolution.
//!
//! All latencies, bandwidth computations and timer deadlines in the
//! simulator are expressed as [`SimTime`] (an instant) and [`SimDuration`]
//! (a span). Both are thin wrappers over `u64` nanoseconds so they are
//! `Copy`, totally ordered and cheap to pass around hot event-queue code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant `n` seconds after the simulation epoch (handy for
    /// spelling fault schedules and experiment horizons).
    #[inline]
    pub const fn from_secs(n: u64) -> SimTime {
        SimTime(n * 1_000_000_000)
    }

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    #[inline]
    pub const fn from_micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[inline]
    pub const fn from_millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` seconds.
    #[inline]
    pub const fn from_secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration of `s` seconds given as a float; negative values clamp
    /// to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1e9) as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Time needed to move `bytes` across a link of `bytes_per_sec` capacity.
///
/// Returns zero for an infinite-bandwidth link (`bytes_per_sec == 0` is
/// treated as infinite, which keeps "unmodeled" links free).
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimDuration {
    if bytes_per_sec == 0 {
        return SimDuration::ZERO;
    }
    // nanos = bytes * 1e9 / rate, computed in u128 to avoid overflow for
    // multi-gigabyte transfers.
    let nanos = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
    SimDuration(nanos.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_nanos(), 2_000_000_000);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 2.0);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(2));
        // saturating: earlier.since(later) == 0
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_basics() {
        // 1 GiB over 1 GiB/s takes 1 s.
        let gib = 1u64 << 30;
        let d = transfer_time(gib, gib);
        assert_eq!(d, SimDuration::from_secs(1));
        // Infinite bandwidth is free.
        assert_eq!(transfer_time(gib, 0), SimDuration::ZERO);
        // 8 MiB over 125 MB/s ≈ 67.1 ms.
        let d = transfer_time(8 << 20, 125_000_000);
        let secs = d.as_secs_f64();
        assert!((secs - 0.0671).abs() < 0.001, "got {secs}");
    }

    #[test]
    fn transfer_time_no_overflow_for_huge_payloads() {
        // 1 TiB over a slow 1 MB/s link: ~1.1e6 seconds, must not overflow.
        let d = transfer_time(1 << 40, 1_000_000);
        assert!(d.as_secs_f64() > 1.0e6);
    }

    #[test]
    fn ordering_and_scaling() {
        assert!(SimDuration::from_secs(1) < SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_secs(2) - SimDuration::from_secs(1),
            SimDuration::from_secs(2)
        );
    }
}
