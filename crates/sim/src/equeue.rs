//! A calendar-queue event queue: a timer-wheel front end over the DES
//! engine's pending-event set.
//!
//! The engine used to keep every pending event in one `BinaryHeap`; at
//! 10^5–10^6 simulated clients the heap holds hundreds of thousands of
//! entries and every push/pop pays `O(log n)` comparisons over a working
//! set far larger than cache. A calendar queue (Brown 1988, the structure
//! CloudSim-class simulators use for future-event lists) exploits what DES
//! schedules actually look like — most events land within a short horizon
//! of *now*, plus a thin tail of far-future timers:
//!
//! * a **wheel** of [`DEFAULT_SLOTS`] buckets, each covering
//!   `2^granularity_shift` ns, holds events within the rotation horizon as
//!   unsorted `Vec`s — push is `O(1)`,
//! * an **active** min-heap holds only the events of buckets the cursor
//!   has passed — pops sort just the current bucket's handful of events,
//! * an **overflow** min-heap holds the far tail (idle-period heartbeats,
//!   multi-second timeouts) and migrates into the wheel as the cursor
//!   approaches; when the wheel drains, the cursor fast-forwards straight
//!   to the next overflow event instead of stepping empty buckets.
//!
//! Ordering is **exactly** the total order `(at, seq)` the `BinaryHeap`
//! produced — two events with equal timestamps pop in push order — so the
//! engine's event digests (and every determinism test built on them) are
//! unchanged. The equivalence is enforced by a randomized
//! reference test below.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default bucket width: `2^16` ns ≈ 65.5 µs, a fraction of the modeled
/// network's per-hop latency so wheel buckets stay small.
pub const DEFAULT_GRANULARITY_SHIFT: u32 = 16;
/// Default wheel size: 8192 buckets ≈ 537 ms of rotation horizon, which
/// covers virtually every scheduled delivery; only long timers overflow.
pub const DEFAULT_SLOTS: usize = 8192;

struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A strict-priority event queue keyed by `(at, seq)` with `O(1)`
/// near-future pushes. See the module docs for the structure.
pub struct CalendarQueue<T> {
    shift: u32,
    slots: usize,
    /// Highest absolute bucket index whose events have been merged into
    /// `active`. Ring and overflow entries always live in buckets
    /// strictly beyond the cursor, so `active`'s head is the global
    /// minimum whenever `active` is non-empty.
    cursor: u64,
    ring: Vec<Vec<Entry<T>>>,
    ring_len: usize,
    active: BinaryHeap<Reverse<Entry<T>>>,
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// A queue with the default geometry (65.5 µs buckets, ~537 ms wheel).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_GRANULARITY_SHIFT, DEFAULT_SLOTS)
    }

    /// A queue with `2^granularity_shift`-ns buckets and `slots` of them.
    pub fn with_geometry(granularity_shift: u32, slots: usize) -> Self {
        assert!(slots >= 2, "wheel needs at least two buckets");
        assert!(granularity_shift < 63, "bucket width must fit in u64");
        CalendarQueue {
            shift: granularity_shift,
            slots,
            cursor: 0,
            ring: (0..slots).map(|_| Vec::new()).collect(),
            ring_len: 0,
            active: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, at: u64) -> u64 {
        at >> self.shift
    }

    /// Insert an event. `(at, seq)` must be unique per queue (the DES
    /// engine's monotone sequence numbers guarantee it); `seq` breaks
    /// timestamp ties in push order.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        let entry = Entry { at, seq, item };
        let b = self.bucket(at);
        if b <= self.cursor {
            self.active.push(Reverse(entry));
        } else if b - self.cursor < self.slots as u64 {
            let slot = (b % self.slots as u64) as usize;
            self.ring[slot].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
        self.len += 1;
    }

    /// Key of the earliest event, advancing the wheel cursor if needed.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        self.ensure_head();
        self.active.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<T> {
        self.ensure_head();
        self.active.pop().map(|Reverse(e)| {
            self.len -= 1;
            e.item
        })
    }

    /// Make `active` hold the global minimum (non-empty unless the queue
    /// is empty): merge wheel buckets up to the next occupied one, or
    /// fast-forward to the overflow tail when the wheel is idle.
    fn ensure_head(&mut self) {
        while self.active.is_empty() {
            if self.ring_len == 0 {
                let Some(Reverse(top)) = self.overflow.peek() else {
                    return; // truly empty
                };
                self.cursor = self.bucket(top.at);
                self.migrate_overflow();
                continue;
            }
            // The wheel is occupied somewhere within `slots` buckets of
            // the cursor; step to the next occupied bucket and merge it.
            loop {
                self.cursor += 1;
                let slot = (self.cursor % self.slots as u64) as usize;
                if !self.ring[slot].is_empty() {
                    self.ring_len -= self.ring[slot].len();
                    for e in self.ring[slot].drain(..) {
                        self.active.push(Reverse(e));
                    }
                    break;
                }
            }
            // The horizon moved; far events may now be within it.
            self.migrate_overflow();
        }
    }

    /// Pull overflow events that entered the rotation horizon into the
    /// wheel (or straight into `active` if their bucket has passed).
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(top)) = self.overflow.peek() {
            let b = self.bucket(top.at);
            if b <= self.cursor {
                let Some(Reverse(e)) = self.overflow.pop() else { unreachable!() };
                self.active.push(Reverse(e));
            } else if b - self.cursor < self.slots as u64 {
                let Some(Reverse(e)) = self.overflow.pop() else { unreachable!() };
                let slot = (b % self.slots as u64) as usize;
                self.ring[slot].push(e);
                self.ring_len += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_strict_at_seq_order() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        // Same timestamp: seq breaks the tie in push order.
        q.push(100, 0, "a");
        q.push(100, 1, "b");
        q.push(50, 2, "c");
        q.push(1_000_000, 3, "far");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_key(), Some((50, 2)));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("far"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fast_forwards_over_idle_stretches() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        q.push(1 << 40, 0, 0u64); // far beyond the wheel horizon
        assert_eq!(q.pop(), Some(0));
        // Cursor jumped; near-cursor pushes still order correctly.
        q.push((1 << 40) + 5, 1, 1u64);
        q.push((1 << 40) + 1, 2, 2u64);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
    }

    /// The DES workload shape: monotonically advancing "now", bursts of
    /// near-future deliveries, a tail of far-future timers. The calendar
    /// queue must pop the exact sequence a reference BinaryHeap pops.
    #[test]
    fn matches_binary_heap_reference_on_random_des_workload() {
        for seed in 0..4u64 {
            let mut rng = SmallRng::seed_from_u64(0xE0_0E + seed);
            let mut q = CalendarQueue::with_geometry(6, 32);
            let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..20_000 {
                if !reference.is_empty() && rng.random_bool(0.55) {
                    let Reverse((at, s)) = reference.pop().unwrap();
                    assert_eq!(q.peek_key(), Some((at, s)), "head key diverged");
                    let got = q.pop().unwrap();
                    assert_eq!(got, (at, s), "pop order diverged from reference");
                    now = at;
                } else {
                    // Mixed horizon: mostly near-future, some ties, a few
                    // far-future (beyond the 32-slot wheel).
                    let delta = match rng.random_range(0..10u32) {
                        0 => 0,                                  // tie with "now"
                        1..=6 => rng.random_range(0..2_000),     // in-wheel
                        7 | 8 => rng.random_range(0..50_000),    // edge of wheel
                        _ => rng.random_range(100_000..5_000_000), // overflow
                    };
                    let at = now + delta;
                    reference.push(Reverse((at, seq)));
                    q.push(at, seq, (at, seq));
                    seq += 1;
                }
            }
            // Drain both completely.
            while let Some(Reverse((at, s))) = reference.pop() {
                assert_eq!(q.pop(), Some((at, s)));
            }
            assert!(q.is_empty());
        }
    }
}
