//! Dynamically typed simulation messages.
//!
//! Different subsystems (BlobSeer actors, monitoring services, the security
//! engine, …) define their own message enums. The simulator moves them as
//! `Box<dyn Message>` so a single [`crate::World`] can host heterogeneous
//! actors; receivers downcast with [`MessageExt::downcast`].
//!
//! The only thing the network model needs from a message is its wire size
//! ([`Message::wire_size`]), which drives bandwidth contention.

use std::any::Any;
use std::fmt;

/// A payload that can travel through the simulated network.
pub trait Message: Any + Send + fmt::Debug {
    /// Number of bytes this message occupies on the wire (excluding the
    /// per-message header overhead added by the network model). Bulk data
    /// messages should report their payload size; small control messages
    /// can return 0 and rely on the header overhead alone.
    fn wire_size(&self) -> u64 {
        0
    }

    /// Short operation label used as the span name when this message's
    /// transfer is traced. Protocol enums should return the variant name.
    fn op_name(&self) -> &'static str {
        "msg"
    }

    /// Traffic class used by the critical-path analyzer to attribute
    /// this message's serialization time to a pipeline stage.
    fn span_class(&self) -> sads_trace::SpanClass {
        sads_trace::SpanClass::Control
    }

    /// Upcast helper so `Box<dyn Message>` can be downcast to a concrete
    /// type. Implemented by the blanket impl of [`MessageExt`].
    fn as_any(self: Box<Self>) -> Box<dyn Any>;

    /// Borrowing variant of [`Message::as_any`].
    fn as_any_ref(&self) -> &dyn Any;
}

/// Downcasting conveniences for boxed messages.
pub trait MessageExt {
    /// Attempt to downcast the boxed message to a concrete type, returning
    /// the box back on failure so it can be routed elsewhere.
    fn downcast<T: Message>(self) -> Result<Box<T>, Box<dyn Message>>;
    /// Check the concrete type without consuming the box.
    fn is<T: Message>(&self) -> bool;
    /// Borrow the concrete type without consuming the box.
    fn downcast_ref<T: Message>(&self) -> Option<&T>;
}

impl MessageExt for Box<dyn Message> {
    fn downcast<T: Message>(self) -> Result<Box<T>, Box<dyn Message>> {
        if self.as_any_ref().is::<T>() {
            Ok(self.as_any().downcast::<T>().expect("checked type"))
        } else {
            Err(self)
        }
    }

    fn is<T: Message>(&self) -> bool {
        self.as_any_ref().is::<T>()
    }

    fn downcast_ref<T: Message>(&self) -> Option<&T> {
        self.as_any_ref().downcast_ref::<T>()
    }
}

/// Implement [`Message`] for a concrete type, with an optional wire-size
/// expression evaluated against `self`.
///
/// ```ignore
/// impl_message!(MyControlMsg);                 // zero wire size
/// impl_message!(MyDataMsg, |m| m.data.len() as u64);
/// ```
#[macro_export]
macro_rules! impl_message {
    ($ty:ty) => {
        impl $crate::Message for $ty {
            fn as_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn as_any_ref(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
    ($ty:ty, $size:expr) => {
        impl $crate::Message for $ty {
            fn wire_size(&self) -> u64 {
                #[allow(clippy::redundant_closure_call)]
                ($size)(self)
            }
            fn as_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn as_any_ref(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);
    impl_message!(Ping);

    #[derive(Debug)]
    struct Bulk {
        data: Vec<u8>,
    }
    impl_message!(Bulk, |m: &Bulk| m.data.len() as u64);

    #[test]
    fn downcast_success_and_failure() {
        let b: Box<dyn Message> = Box::new(Ping(7));
        assert!(b.is::<Ping>());
        assert!(!b.is::<Bulk>());
        assert_eq!(b.downcast_ref::<Ping>(), Some(&Ping(7)));
        let b = match b.downcast::<Bulk>() {
            Ok(_) => panic!("wrong type must not downcast"),
            Err(original) => original,
        };
        let p = b.downcast::<Ping>().expect("right type downcasts");
        assert_eq!(*p, Ping(7));
    }

    #[test]
    fn wire_size_defaults_and_overrides() {
        let p: Box<dyn Message> = Box::new(Ping(1));
        assert_eq!(p.wire_size(), 0);
        let d: Box<dyn Message> = Box::new(Bulk { data: vec![0; 1024] });
        assert_eq!(d.wire_size(), 1024);
    }
}
