//! Property test for the streaming GET path: a reader opened through
//! [`ObjectGateway::get_object_reader`] pins the object version at open,
//! so the bytes it streams must match a pinned whole-buffer
//! [`ObjectGateway::read_pinned`] of the same range even while a
//! concurrent writer overwrites the object mid-stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use proptest::prelude::*;
use sads_blob::runtime::threaded::ClusterBuilder;
use sads_blob::ClientId;
use sads_gateway::{Acl, GatewayConfig, ObjectGateway};

const PAGE: u64 = 4096;
const ALICE: ClientId = ClientId(1);

/// One shared gateway for every generated case (cluster spin-up
/// dominates; threads are reclaimed at process exit).
fn gateway() -> &'static Arc<ObjectGateway> {
    static GW: OnceLock<Arc<ObjectGateway>> = OnceLock::new();
    GW.get_or_init(|| {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .start();
        let client = cluster.client(ClientId(7100));
        std::mem::forget(cluster);
        let gw = ObjectGateway::new(
            client,
            GatewayConfig { page_size: PAGE, replication: 1, ..Default::default() },
        );
        gw.create_bucket(ALICE, "prop", Acl::Private).unwrap();
        Arc::new(gw)
    })
}

fn body(len: usize, seed: u64) -> Bytes {
    let mut x = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect::<Vec<u8>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_get_is_snapshot_isolated_from_overwrites(
        pages in 2u64..7,
        seed in 1u64..u64::MAX,
        off_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let gw = gateway();
        let key = format!("obj-{case}");
        let total = pages * PAGE;
        let data = body(total as usize, seed);
        gw.put_object(ALICE, "prop", &key, data.clone()).unwrap();

        let offset = (off_frac * (total - 1) as f64) as u64;
        let len = total - offset;

        // Open pins the current version; the pinned whole-buffer read is
        // the oracle for what the stream must deliver.
        let info = gw.head_object(ALICE, "prop", &key).unwrap();
        let expect = gw.read_pinned(&info, offset, len).unwrap();
        let mut reader = gw.get_object_reader(ALICE, "prop", &key, offset, len).unwrap();
        prop_assert_eq!(reader.len(), len);

        // Overwrite the object continuously while the stream drains.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let gw = Arc::clone(gw);
            let stop = Arc::clone(&stop);
            let key = key.clone();
            std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let alt = body((PAGE + 17) as usize, seed ^ round.wrapping_add(0x9e37));
                    gw.put_object(ALICE, "prop", &key, alt).unwrap();
                    round += 1;
                }
                round
            })
        };

        let mut got = Vec::new();
        let drained = loop {
            match reader.next() {
                Ok(Some(chunk)) => got.extend_from_slice(&chunk),
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        stop.store(true, Ordering::Relaxed);
        let rounds = writer.join().unwrap();
        drained.unwrap();

        prop_assert_eq!(&expect[..], &data[offset as usize..], "pinned oracle");
        prop_assert!(
            got[..] == expect[..],
            "stream diverged from its pinned version after {rounds} overwrites"
        );
    }
}
