//! # sads-gateway — a Cumulus-style, S3-compatible object store on
//! BlobSeer
//!
//! The paper's §V integration: "we interfaced BlobSeer with Cumulus, the
//! storage management component in Nimbus, designed to be
//! interface-compatible with Amazon S3. Preliminary results show that the
//! BlobSeer storage back end is able to sustain a promising data transfer
//! rate, while bringing an efficient support for concurrent accesses."
//!
//! This crate exposes the S3 object model — buckets, keys, ACLs, puts,
//! gets, lists — over the threaded BlobSeer runtime. Every object is
//! backed by one BLOB: object data is padded to the BLOB page size on the
//! wire and the logical length is kept in the bucket index, exactly the
//! technique Cumulus used over page-structured back ends. Overwrites
//! publish new BLOB versions, which gives in-flight GETs snapshot
//! isolation for free.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use sads_blob::runtime::threaded::ClientHandle;
use sads_blob::stream::BlobReadHandle;
use sads_blob::{BlobError, BlobId, BlobSpec, ClientId, VersionId, WriteKind};
use sads_sim::{FlightRecorder, SpanClass, SpanKind, SpanRecord, SpanSink, TraceCtx};
use sads_telemetry::{
    derive_health, HealthPolicy, HealthState, Registry as TelemetryRegistry, SampleValue, Snapshot,
    HEARTBEAT_GAUGE,
};

/// Bucket-level access control, after S3's canned ACLs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acl {
    /// Only the owner may read or write.
    Private,
    /// Anyone may read; only the owner writes.
    PublicRead,
}

/// Gateway errors, mirroring the S3 error vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayError {
    /// The multipart upload id is unknown (or already completed/aborted).
    NoSuchUpload,
    /// A part violates the upload's size contract.
    InvalidPart,
    /// The bucket does not exist.
    NoSuchBucket,
    /// The key does not exist in the bucket.
    NoSuchKey,
    /// The bucket name is taken.
    BucketAlreadyExists,
    /// The bucket still holds objects.
    BucketNotEmpty,
    /// The principal may not perform the operation.
    AccessDenied,
    /// Invalid bucket or object name.
    InvalidName,
    /// The storage back end is temporarily unreachable (every replica of
    /// some chunk is down, allocation found no live provider, or the
    /// operation timed out). The S3 analogue is `503 SlowDown` with a
    /// `Retry-After` header: the condition is expected to clear once
    /// crashed providers restart or the replication manager repairs the
    /// placement, so clients should retry after the hinted delay rather
    /// than treat the object as lost.
    Unavailable {
        /// Suggested client back-off before retrying, in seconds.
        retry_after_secs: u32,
    },
    /// The storage back end failed (non-transient: protocol violations,
    /// misalignment, permission blocks, …).
    Storage(BlobError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::NoSuchUpload => write!(f, "NoSuchUpload"),
            GatewayError::InvalidPart => write!(f, "InvalidPart"),
            GatewayError::NoSuchBucket => write!(f, "NoSuchBucket"),
            GatewayError::NoSuchKey => write!(f, "NoSuchKey"),
            GatewayError::BucketAlreadyExists => write!(f, "BucketAlreadyExists"),
            GatewayError::BucketNotEmpty => write!(f, "BucketNotEmpty"),
            GatewayError::AccessDenied => write!(f, "AccessDenied"),
            GatewayError::InvalidName => write!(f, "InvalidName"),
            GatewayError::Unavailable { retry_after_secs } => {
                write!(f, "ServiceUnavailable (retry after {retry_after_secs}s)")
            }
            GatewayError::Storage(e) => write!(f, "StorageError: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<BlobError> for GatewayError {
    fn from(e: BlobError) -> Self {
        match e {
            // Transient total-unavailability shapes surface as 503-with-
            // Retry-After so S3 clients back off and retry instead of
            // failing the request permanently.
            BlobError::ChunkUnavailable(_)
            | BlobError::MetaUnavailable
            | BlobError::Timeout
            | BlobError::AllocationFailed { .. } => {
                GatewayError::Unavailable { retry_after_secs: 5 }
            }
            other => GatewayError::Storage(other),
        }
    }
}

/// Metadata of one stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Object key.
    pub key: String,
    /// Logical size in bytes.
    pub size: u64,
    /// Backing BLOB.
    pub blob: BlobId,
    /// BLOB version holding the current object data.
    pub version: VersionId,
    /// Weak content tag (word-at-a-time mix of the payload).
    pub etag: u64,
}

#[derive(Debug)]
struct Bucket {
    owner: ClientId,
    acl: Acl,
    objects: BTreeMap<String, ObjectInfo>,
}

/// Gateway configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Page size for object BLOBs (object data is padded to it on the
    /// wire).
    pub page_size: u64,
    /// Replication degree for object BLOBs.
    pub replication: u32,
    /// Idle lifetime of an in-flight multipart upload. Uploads whose
    /// last part (or creation) is older than this are swept on the next
    /// `create_multipart`, counted in `gateway.multipart_expired` —
    /// without a bound, abandoned uploads leak forever.
    pub multipart_ttl: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            page_size: 256 * 1024,
            replication: 1,
            multipart_ttl: Duration::from_secs(24 * 3600),
        }
    }
}

/// The S3-compatible front end. Cheap to share behind an `Arc`; all
/// methods take the acting principal explicitly, as the HTTP layer would
/// after authentication.
pub struct ObjectGateway {
    clients: Vec<ClientHandle>,
    next_client: std::sync::atomic::AtomicUsize,
    cfg: GatewayConfig,
    buckets: Mutex<BTreeMap<String, Bucket>>,
    uploads: Mutex<BTreeMap<u64, Multipart>>,
    next_upload: std::sync::atomic::AtomicU64,
    /// Span sink when request tracing is on (one `Op` span per S3
    /// request; the backing BLOB ops nest under it).
    span_sink: Option<Arc<SpanSink>>,
    /// Live metrics registry: per-op request/error counters and latency
    /// histograms, plus whatever the backing cluster writes when the
    /// registry is shared via [`set_telemetry`](ObjectGateway::set_telemetry).
    telemetry: Arc<TelemetryRegistry>,
    /// Flight recorder shared with the backing cluster, when attached —
    /// lets [`statusz`](ObjectGateway::statusz) report ring occupancy and
    /// recent dumps next to the health verdicts.
    flight_recorder: Option<Arc<FlightRecorder>>,
    /// Wall-clock origin for gateway span timestamps.
    started: Instant,
}

/// Response of a traced S3 request: the payload plus the trace id the
/// HTTP layer echoes back to the caller (the `x-sads-trace-id` response
/// header), letting a client correlate its request with the span tree
/// recorded server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct Traced<T> {
    /// The S3 response body.
    pub body: T,
    /// Trace id of the request's span tree (the response-header echo).
    pub trace_id: u64,
}

/// Bounded-memory streaming GET body, returned by
/// [`ObjectGateway::get_object_reader`].
///
/// Wraps a pinned [`sads_blob::BlobReadHandle`]: each [`next`](Self::next)
/// call pulls at most one window of pages off the wire, so the caller —
/// not the gateway — decides how much of the object is resident at once.
#[derive(Debug)]
pub struct ObjectReader {
    handle: BlobReadHandle,
}

impl ObjectReader {
    /// Total bytes this reader will deliver (the requested range clamped
    /// to the object size at open).
    pub fn len(&self) -> u64 {
        self.handle.len()
    }

    /// Whether the reader delivers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }

    /// Bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.handle.delivered()
    }

    /// Pull the next batch of bytes, or `None` at end of stream.
    // Not `Iterator`, for the same reason as `BlobReadHandle::next`:
    // an `Item = Result<_>` iterator invites dropping stream errors.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Bytes>, GatewayError> {
        Ok(self.handle.next()?)
    }

    /// Tear down the stream early; dropping the reader does the same
    /// best-effort.
    pub fn close(self) -> Result<(), GatewayError> {
        self.handle.close()?;
        Ok(())
    }
}

/// In-flight multipart upload state.
#[derive(Debug)]
struct Multipart {
    owner: ClientId,
    bucket: String,
    key: String,
    blob: BlobId,
    /// Fixed size of every part except the last (page multiple).
    part_size: u64,
    /// part number → (length, content tag, publishing version).
    parts: BTreeMap<u32, (u64, u64, VersionId)>,
    /// When the upload last made progress (created, or a part landed) —
    /// the TTL sweep's staleness clock.
    last_touched: Instant,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 255
        && s.chars().all(|c| c.is_ascii_alphanumeric() || "-._/".contains(c))
}

/// Incremental weak content tag, word-at-a-time.
///
/// The original byte-serial FNV-1a burned ~1.2 ms/MiB of the gateway's
/// single core per PUT; this mixes 8 bytes per multiply (same weak-tag
/// contract: equality ⇔ same bytes with high probability, not
/// cryptographic). Split-point independent: feeding the same bytes in any
/// slicing produces the same tag, which is what lets the streaming PUT
/// path hash slices as they are fed.
#[derive(Debug, Clone)]
struct EtagHasher {
    h: u64,
    /// Sub-word carry between updates (stream splits are arbitrary).
    carry: [u8; 8],
    carry_len: usize,
    len: u64,
}

impl EtagHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;

    fn new() -> Self {
        EtagHasher { h: 0xcbf2_9ce4_8422_2325, carry: [0; 8], carry_len: 0, len: 0 }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.h = (self.h ^ word).rotate_left(23).wrapping_mul(Self::K);
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.carry_len > 0 {
            let take = (8 - self.carry_len).min(data.len());
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&data[..take]);
            self.carry_len += take;
            data = &data[take..];
            if self.carry_len < 8 {
                return;
            }
            let word = u64::from_le_bytes(self.carry);
            self.mix(word);
            self.carry_len = 0;
        }
        let mut words = data.chunks_exact(8);
        for w in &mut words {
            let word = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            self.mix(word);
        }
        let rest = words.remainder();
        self.carry[..rest.len()].copy_from_slice(rest);
        self.carry_len = rest.len();
    }

    fn finish(mut self) -> u64 {
        if self.carry_len > 0 {
            let mut word = 0u64;
            for (i, b) in self.carry[..self.carry_len].iter().enumerate() {
                word |= (*b as u64) << (8 * i);
            }
            self.mix(word);
        }
        let len = self.len;
        self.mix(len);
        self.h
    }
}

#[cfg(test)]
fn etag(data: &[u8]) -> u64 {
    let mut h = EtagHasher::new();
    h.update(data);
    h.finish()
}

impl ObjectGateway {
    /// A gateway speaking to a BlobSeer cluster through `client`.
    pub fn new(client: ClientHandle, cfg: GatewayConfig) -> Self {
        Self::with_clients(vec![client], cfg)
    }

    /// A gateway multiplexing requests over a pool of BlobSeer clients
    /// (round-robin), so concurrent tenants do not serialize on a single
    /// client thread.
    pub fn with_clients(clients: Vec<ClientHandle>, cfg: GatewayConfig) -> Self {
        assert!(!clients.is_empty(), "at least one client");
        ObjectGateway {
            clients,
            next_client: std::sync::atomic::AtomicUsize::new(0),
            cfg,
            buckets: Mutex::new(BTreeMap::new()),
            uploads: Mutex::new(BTreeMap::new()),
            next_upload: std::sync::atomic::AtomicU64::new(1),
            span_sink: None,
            telemetry: Arc::new(TelemetryRegistry::new()),
            flight_recorder: None,
            started: Instant::now(),
        }
    }

    /// Enable request tracing: each `*_traced` S3 request records one
    /// `Op` span into `sink` and returns its trace id. Pass the same
    /// sink to [`ClusterBuilder::span_sink`] so the backing BLOB client
    /// ops, their RPCs and the server-side handles nest under it.
    ///
    /// [`ClusterBuilder::span_sink`]: sads_blob::runtime::threaded::ClusterBuilder::span_sink
    pub fn set_span_sink(&mut self, sink: Arc<SpanSink>) {
        self.span_sink = Some(sink);
    }

    /// Share a metrics registry with the gateway. Pass the cluster's
    /// registry ([`Cluster::telemetry`]) so one scrape covers both the
    /// S3 front end and the backing BLOB services.
    ///
    /// [`Cluster::telemetry`]: sads_blob::runtime::threaded::Cluster::telemetry
    pub fn set_telemetry(&mut self, registry: Arc<TelemetryRegistry>) {
        self.telemetry = registry;
    }

    /// The live metrics registry backing [`get_metrics`](ObjectGateway::get_metrics).
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// Share the cluster's flight recorder
    /// ([`Cluster::flight_recorder`]) so `statusz` reports ring occupancy
    /// and triggered dumps alongside the health verdicts.
    ///
    /// [`Cluster::flight_recorder`]: sads_blob::runtime::threaded::Cluster::flight_recorder
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.flight_recorder = Some(recorder);
    }

    /// Count and time one S3 operation: `gateway.requests{op=..}`,
    /// `gateway.errors{op=..}` and a `gateway.op_seconds{op=..}` latency
    /// observation.
    fn track<T>(
        &self,
        op: &'static str,
        f: impl FnOnce() -> Result<T, GatewayError>,
    ) -> Result<T, GatewayError> {
        let labels = [("op", op)];
        self.telemetry.inc("gateway.requests", &labels, 1);
        let start = self.started.elapsed();
        let out = f();
        let elapsed = (self.started.elapsed() - start).as_secs_f64();
        self.telemetry.observe("gateway.op_seconds", &labels, elapsed);
        if out.is_err() {
            self.telemetry.inc("gateway.errors", &labels, 1);
        }
        out
    }

    /// Render the registry in Prometheus text exposition format — the
    /// `/metrics` endpoint body. When a span sink is attached its drop
    /// counter and per-operation span statistics are refreshed into the
    /// registry first, so trace health is scraped alongside the metrics.
    pub fn get_metrics(&self) -> String {
        if let Some(sink) = &self.span_sink {
            sads_telemetry::export_span_stats(&self.telemetry, sink);
        }
        self.telemetry.render()
    }

    /// Structured point-in-time view of the registry, for programmatic
    /// consumers (the introspection timeseries ingester, tests).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Render the plain-text `/statusz` page: uptime, per-node health
    /// verdicts, active and fired alerts, flight-recorder occupancy and
    /// the busiest counters. One fact per line — the page an operator
    /// reads first when paged, before reaching for the full `/metrics`
    /// firehose.
    pub fn statusz(&self) -> String {
        let snap = self.metrics_snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("=== gateway statusz ===\n");
        out.push_str(&format!("uptime_s: {:.3}\n", self.started.elapsed().as_secs_f64()));

        // Health. Heartbeat gauges carry the cluster's own clock, so the
        // freshest beat is the best "now" available to a reader that must
        // not assume which runtime (sim or threaded) wrote them.
        let now_s = snap
            .family(HEARTBEAT_GAUGE)
            .filter_map(|s| match s.value {
                SampleValue::Gauge(g) => Some(g),
                _ => None,
            })
            .fold(f64::NEG_INFINITY, f64::max);
        if now_s.is_finite() {
            let health = derive_health(&snap, now_s, &HealthPolicy::default());
            let ok = health.iter().filter(|h| h.state == HealthState::Ok).count();
            let degraded = health.iter().filter(|h| h.state == HealthState::Degraded).count();
            let down = health.iter().filter(|h| h.state == HealthState::Down).count();
            out.push_str(&format!(
                "health: {} nodes ok={ok} degraded={degraded} down={down}\n",
                health.len()
            ));
            for h in health.iter().filter(|h| h.state != HealthState::Ok) {
                out.push_str(&format!(
                    "  node {}: {:?} (last heartbeat {:.3}s, now {:.3}s)\n",
                    h.node, h.state, h.last_heartbeat_s, now_s
                ));
            }
        } else {
            out.push_str("health: no heartbeats recorded\n");
        }

        // Alerts: which burn-rate rules are burning right now, and how
        // often each has fired since startup.
        let mut active: Vec<&str> = snap
            .family("alerts.active")
            .filter(|s| matches!(s.value, SampleValue::Gauge(g) if g > 0.0))
            .filter_map(|s| s.labels.iter().find(|(k, _)| k == "rule").map(|(_, v)| v.as_str()))
            .collect();
        active.sort_unstable();
        out.push_str(&format!(
            "alerts: active=[{}] fired_total={}\n",
            active.join(","),
            snap.counter_total("alerts.fired").unwrap_or(0)
        ));
        for s in snap.family("alerts.fired") {
            if let SampleValue::Counter(c) = s.value {
                let rule = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "rule")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?");
                out.push_str(&format!("  fired {rule}: {c}\n"));
            }
        }

        // Flight recorder: ring occupancy plus the reason and time of the
        // most recent auto-capture, if any fired.
        match &self.flight_recorder {
            Some(rec) => {
                out.push_str(&rec.summary());
                if let Some(dump) = rec.last_dump() {
                    out.push_str(&format!(
                        "  last dump #{}: {} at {}ns\n",
                        dump.seq, dump.reason, dump.at_ns
                    ));
                }
            }
            None => out.push_str("flight recorder: detached\n"),
        }

        // The busiest counters — a ten-line traffic sketch of the whole
        // deployment (requests, chunk ops, steals, faults, …).
        let mut counters: Vec<(String, u64)> = snap
            .samples
            .iter()
            .filter_map(|s| match s.value {
                SampleValue::Counter(c) => {
                    let labels = s
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",");
                    let key = if labels.is_empty() {
                        s.name.clone()
                    } else {
                        format!("{}{{{labels}}}", s.name)
                    };
                    Some((key, c))
                }
                _ => None,
            })
            .collect();
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.push_str("top counters:\n");
        for (key, v) in counters.iter().take(10) {
            out.push_str(&format!("  {key} {v}\n"));
        }
        out
    }

    fn client(&self) -> &ClientHandle {
        let i = self.next_client.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        &self.clients[i % self.clients.len()]
    }

    /// Open a per-request trace root, when tracing is on.
    fn begin_request(&self) -> Option<(Arc<SpanSink>, TraceCtx, u64)> {
        let sink = self.span_sink.clone()?;
        let trace_id = sink.next_id();
        let span_id = sink.next_id();
        let start_ns = self.started.elapsed().as_nanos() as u64;
        Some((sink, TraceCtx { trace_id, span_id, parent: 0 }, start_ns))
    }

    /// Close a per-request trace root opened by `begin_request`. Besides
    /// recording the root span, the request's latency is attached to the
    /// `gateway.op_seconds{op=..}` histogram as an exemplar: the same
    /// trace id the client received in `x-sads-trace-id` shows up on the
    /// bucket its latency landed in, so "what was one of the slow ones?"
    /// is answerable straight from a `/metrics` scrape.
    fn end_request(&self, req: &(Arc<SpanSink>, TraceCtx, u64), op: &'static str) {
        let (sink, tc, start_ns) = req;
        let end_ns = self.started.elapsed().as_nanos() as u64;
        sink.record(SpanRecord {
            trace: tc.trace_id,
            span: tc.span_id,
            parent: 0,
            service: "gateway",
            op,
            node: u64::MAX,
            start_ns: *start_ns,
            end_ns,
            kind: SpanKind::Op,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
        // `track` already counted this observation; only decorate it.
        let elapsed_s = end_ns.saturating_sub(*start_ns) as f64 / 1e9;
        self.telemetry.attach_exemplar(
            "gateway.op_seconds",
            &[("op", op)],
            elapsed_s,
            tc.trace_id,
        );
    }

    /// Create a bucket owned by `principal`.
    pub fn create_bucket(
        &self,
        principal: ClientId,
        name: &str,
        acl: Acl,
    ) -> Result<(), GatewayError> {
        self.track("create_bucket", || {
            if !valid_name(name) {
                return Err(GatewayError::InvalidName);
            }
            let mut b = self.buckets.lock();
            if b.contains_key(name) {
                return Err(GatewayError::BucketAlreadyExists);
            }
            b.insert(name.to_owned(), Bucket { owner: principal, acl, objects: BTreeMap::new() });
            Ok(())
        })
    }

    /// Delete an empty bucket.
    pub fn delete_bucket(&self, principal: ClientId, name: &str) -> Result<(), GatewayError> {
        let mut b = self.buckets.lock();
        let bucket = b.get(name).ok_or(GatewayError::NoSuchBucket)?;
        if bucket.owner != principal {
            return Err(GatewayError::AccessDenied);
        }
        if !bucket.objects.is_empty() {
            return Err(GatewayError::BucketNotEmpty);
        }
        b.remove(name);
        Ok(())
    }

    /// Buckets visible to the principal (owner or public).
    pub fn list_buckets(&self, principal: ClientId) -> Vec<String> {
        self.buckets
            .lock()
            .iter()
            .filter(|(_, b)| b.owner == principal || b.acl == Acl::PublicRead)
            .map(|(n, _)| n.clone())
            .collect()
    }

    fn check_write(&self, principal: ClientId, bucket: &Bucket) -> Result<(), GatewayError> {
        if bucket.owner != principal {
            return Err(GatewayError::AccessDenied);
        }
        Ok(())
    }

    fn check_read(&self, principal: ClientId, bucket: &Bucket) -> Result<(), GatewayError> {
        if bucket.owner != principal && bucket.acl != Acl::PublicRead {
            return Err(GatewayError::AccessDenied);
        }
        Ok(())
    }

    /// Store an object (overwrites an existing key).
    pub fn put_object(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<ObjectInfo, GatewayError> {
        self.track("put_object", || self.put_object_inner(principal, bucket, key, data, None))
    }

    /// [`put_object`](ObjectGateway::put_object) with request tracing:
    /// records one `gateway.put_object` span covering the whole request
    /// (the backing BLOB create/write nest under it) and returns the
    /// trace id alongside the object info.
    pub fn put_object_traced(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<Traced<ObjectInfo>, GatewayError> {
        let req = self.begin_request();
        let trace = req.as_ref().map(|(_, tc, _)| *tc);
        let result =
            self.track("put_object", || self.put_object_inner(principal, bucket, key, data, trace));
        if let Some(req) = &req {
            self.end_request(req, "put_object");
        }
        let trace_id = req.map(|(_, tc, _)| tc.trace_id).unwrap_or(0);
        result.map(|body| Traced { body, trace_id })
    }

    fn put_object_inner(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        data: Bytes,
        trace: Option<TraceCtx>,
    ) -> Result<ObjectInfo, GatewayError> {
        if !valid_name(key) {
            return Err(GatewayError::InvalidName);
        }
        // Resolve the backing blob under the lock, but do the transfers
        // outside it so concurrent clients stream in parallel.
        let existing = {
            let b = self.buckets.lock();
            let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
            self.check_write(principal, bucket_ref)?;
            bucket_ref.objects.get(key).map(|o| o.blob)
        };
        let blob = match existing {
            Some(blob) => blob,
            None => self.client().create_traced(
                BlobSpec {
                    page_size: self.cfg.page_size,
                    replication: self.cfg.replication,
                },
                trace,
            )?,
        };
        let size = data.len() as u64;
        // At least one page so empty objects still publish a version.
        let (version, tag) = self.stream_in(blob, WriteKind::At(0), data, 1, trace)?;
        let info = ObjectInfo { key: key.to_owned(), size, blob, version, etag: tag };
        let mut b = self.buckets.lock();
        let bucket_ref = b.get_mut(bucket).ok_or(GatewayError::NoSuchBucket)?;
        bucket_ref.objects.insert(key.to_owned(), info.clone());
        Ok(info)
    }

    /// Stream `data` into `blob` through a bounded-memory write handle:
    /// pages ship through the pipelined chunk path as they are fed (the
    /// client cell never buffers more than `chunk_window × page_size`
    /// bytes), the content tag is hashed over the same slices, and only
    /// the final partial page is padded — the old path copied the whole
    /// object once just to pad it. Returns the published version and the
    /// etag of the *unpadded* bytes.
    fn stream_in(
        &self,
        blob: BlobId,
        kind: WriteKind,
        data: Bytes,
        min_pages: u64,
        trace: Option<TraceCtx>,
    ) -> Result<(VersionId, u64), GatewayError> {
        let size = data.len() as u64;
        let page = self.cfg.page_size;
        let padded_len = size.div_ceil(page).max(min_pages) * page;
        let mut tag = EtagHasher::new();
        tag.update(&data);
        let mut h = self.client().open_write_stream(blob, kind, padded_len, trace)?;
        h.feed(data)?;
        let pad = padded_len - size;
        if pad > 0 {
            h.feed(Bytes::from(vec![0u8; pad as usize]))?;
        }
        let version = h.commit()?;
        self.telemetry.inc("gateway.put_stream_chunks", &[], padded_len / page);
        Ok((version, tag.finish()))
    }

    /// Fetch an object's full contents.
    pub fn get_object(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<Bytes, GatewayError> {
        self.get_object_range(principal, bucket, key, 0, u64::MAX)
    }

    /// [`get_object`](ObjectGateway::get_object) with request tracing:
    /// records one `gateway.get_object` span covering the whole request
    /// (the backing BLOB read nests under it) and returns the trace id
    /// alongside the body.
    pub fn get_object_traced(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<Traced<Bytes>, GatewayError> {
        let req = self.begin_request();
        let trace = req.as_ref().map(|(_, tc, _)| *tc);
        let result = self.track("get_object", || {
            self.head_inner(principal, bucket, key)
                .and_then(|info| self.read_pinned_inner(&info, 0, u64::MAX, trace))
        });
        if let Some(req) = &req {
            self.end_request(req, "get_object");
        }
        let trace_id = req.map(|(_, tc, _)| tc.trace_id).unwrap_or(0);
        result.map(|body| Traced { body, trace_id })
    }

    /// Fetch a byte range of an object (S3 `Range` semantics: clamped to
    /// the object end).
    pub fn get_object_range(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, GatewayError> {
        self.track("get_object", || {
            let info = self.head_inner(principal, bucket, key)?;
            self.read_pinned_inner(&info, offset, len, None)
        })
    }

    /// Open a bounded-memory streaming reader over a byte range of an
    /// object (S3 `Range` semantics: clamped to the object end).
    ///
    /// The reader pins the object's current version at open — concurrent
    /// overwrites never tear the stream — and pulls at most
    /// `chunk_window` pages off the wire per [`ObjectReader::next`]
    /// call, so a multi-GB GET holds `O(chunk_window × page_size)`
    /// bytes regardless of object size.
    pub fn get_object_reader(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        offset: u64,
        len: u64,
    ) -> Result<ObjectReader, GatewayError> {
        self.track("get_object", || {
            let info = self.head_inner(principal, bucket, key)?;
            let len = if offset >= info.size { 0 } else { len.min(info.size - offset) };
            let handle = self.client().open_read_stream(
                info.blob,
                Some(info.version),
                offset,
                len,
                None,
            )?;
            Ok(ObjectReader { handle })
        })
    }

    /// Read through an [`ObjectInfo`] pin: always observes exactly the
    /// version recorded in the info, even across concurrent overwrites
    /// (the S3 `versionId` GET).
    pub fn read_pinned(
        &self,
        info: &ObjectInfo,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, GatewayError> {
        self.track("read_pinned", || self.read_pinned_inner(info, offset, len, None))
    }

    fn read_pinned_inner(
        &self,
        info: &ObjectInfo,
        offset: u64,
        len: u64,
        trace: Option<TraceCtx>,
    ) -> Result<Bytes, GatewayError> {
        if offset >= info.size {
            return Ok(Bytes::new());
        }
        let len = len.min(info.size - offset);
        if len == 0 {
            return Ok(Bytes::new());
        }
        Ok(self.client().read_traced(info.blob, Some(info.version), offset, len, trace)?)
    }

    /// Object metadata without the body.
    pub fn head_object(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<ObjectInfo, GatewayError> {
        self.track("head_object", || self.head_inner(principal, bucket, key))
    }

    /// [`head_object`](ObjectGateway::head_object) body, untracked so the
    /// GET paths that call it internally count as one request, not two.
    fn head_inner(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<ObjectInfo, GatewayError> {
        let b = self.buckets.lock();
        let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
        self.check_read(principal, bucket_ref)?;
        bucket_ref.objects.get(key).cloned().ok_or(GatewayError::NoSuchKey)
    }

    /// Remove an object (S3 `DELETE /objects/{key}`): decommissions the
    /// backing BLOB at the version manager — unpinning its snapshots and
    /// marking every version reclaimable — then drops the key from the
    /// bucket index. The bytes themselves are reclaimed asynchronously by
    /// the lifecycle GC sweeper; in-flight pinned GETs keep working until
    /// the sweep reaches their version.
    pub fn delete_object(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<(), GatewayError> {
        self.track("delete_object", || {
            let blob = {
                let b = self.buckets.lock();
                let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
                self.check_write(principal, bucket_ref)?;
                bucket_ref.objects.get(key).ok_or(GatewayError::NoSuchKey)?.blob
            };
            // Decommission outside the lock (it is a round trip to the
            // version manager), before unlinking the key: a transient
            // failure leaves the object visible so the client's retry
            // finds it again.
            self.client().decommission(blob)?;
            let mut b = self.buckets.lock();
            let bucket_ref = b.get_mut(bucket).ok_or(GatewayError::NoSuchBucket)?;
            bucket_ref.objects.remove(key);
            Ok(())
        })
    }

    /// Pin the object's current content as a snapshot (S3-ish
    /// `POST /objects/{key}/snapshots`): an O(1), metadata-only operation
    /// at the version manager — the backing version's segment tree is
    /// shared, not copied — that makes the pinned version a lifecycle GC
    /// root. The returned [`ObjectInfo`] reads the snapshotted bytes via
    /// [`read_pinned`](ObjectGateway::read_pinned) regardless of later
    /// overwrites or retention sweeps.
    pub fn snapshot_object(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
    ) -> Result<ObjectInfo, GatewayError> {
        self.track("snapshot_object", || {
            let info = {
                let b = self.buckets.lock();
                let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
                self.check_write(principal, bucket_ref)?;
                bucket_ref.objects.get(key).cloned().ok_or(GatewayError::NoSuchKey)?
            };
            let pinned = self.client().snapshot(info.blob, Some(info.version))?;
            Ok(ObjectInfo { version: pinned, ..info })
        })
    }

    /// Begin a multipart upload (S3 `CreateMultipartUpload`). Every part
    /// except the last must be exactly `part_size` bytes, and `part_size`
    /// must be a positive multiple of the gateway page size — parts map
    /// directly onto page-aligned BLOB writes, so they may be uploaded
    /// concurrently and in any order.
    pub fn create_multipart(
        &self,
        principal: ClientId,
        bucket: &str,
        key: &str,
        part_size: u64,
    ) -> Result<u64, GatewayError> {
        if !valid_name(key) {
            return Err(GatewayError::InvalidName);
        }
        if part_size == 0 || !part_size.is_multiple_of(self.cfg.page_size) {
            return Err(GatewayError::InvalidPart);
        }
        {
            let b = self.buckets.lock();
            let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
            self.check_write(principal, bucket_ref)?;
        }
        // Lazy TTL sweep: uploads that were never completed or aborted
        // would otherwise sit in the map forever.
        self.sweep_stale_uploads();
        let blob = self.client().create(BlobSpec {
            page_size: self.cfg.page_size,
            replication: self.cfg.replication,
        })?;
        let id = self.next_upload.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.uploads.lock().insert(
            id,
            Multipart {
                owner: principal,
                bucket: bucket.to_owned(),
                key: key.to_owned(),
                blob,
                part_size,
                parts: BTreeMap::new(),
                last_touched: Instant::now(),
            },
        );
        Ok(id)
    }

    /// Drop every multipart upload idle for longer than
    /// [`GatewayConfig::multipart_ttl`], decommissioning its backing BLOB
    /// so the uploaded part bytes become reclaimable. Counted in
    /// `gateway.multipart_expired`. Runs lazily on `create_multipart`;
    /// callable directly from an operator tick as well.
    pub fn sweep_stale_uploads(&self) -> usize {
        let ttl = self.cfg.multipart_ttl;
        let stale: Vec<(u64, BlobId)> = {
            let u = self.uploads.lock();
            u.iter()
                .filter(|(_, up)| up.last_touched.elapsed() > ttl)
                .map(|(id, up)| (*id, up.blob))
                .collect()
        };
        let mut expired = 0usize;
        for (id, blob) in stale {
            // Re-check under the lock: a racing part upload refreshes
            // the clock and keeps its upload alive.
            let still_stale = {
                let mut u = self.uploads.lock();
                match u.get(&id) {
                    Some(up) if up.last_touched.elapsed() > ttl => {
                        u.remove(&id);
                        true
                    }
                    _ => false,
                }
            };
            if still_stale {
                // Best-effort: the sweep must not fail creation because a
                // decommission round trip hit a transient outage.
                let _ = self.client().decommission(blob);
                expired += 1;
                self.telemetry.inc("gateway.multipart_expired", &[], 1);
            }
        }
        expired
    }

    /// Upload one part (1-based part numbers, S3 `UploadPart`). Parts may
    /// arrive concurrently and out of order; re-uploading a part number
    /// replaces it.
    pub fn upload_part(
        &self,
        principal: ClientId,
        upload_id: u64,
        part_number: u32,
        data: Bytes,
    ) -> Result<(), GatewayError> {
        self.track("upload_part", || self.upload_part_inner(principal, upload_id, part_number, data))
    }

    fn upload_part_inner(
        &self,
        principal: ClientId,
        upload_id: u64,
        part_number: u32,
        data: Bytes,
    ) -> Result<(), GatewayError> {
        let (blob, part_size, offset) = {
            let u = self.uploads.lock();
            let up = u.get(&upload_id).ok_or(GatewayError::NoSuchUpload)?;
            if up.owner != principal {
                return Err(GatewayError::AccessDenied);
            }
            if part_number == 0 || data.is_empty() || data.len() as u64 > up.part_size {
                return Err(GatewayError::InvalidPart);
            }
            (up.blob, up.part_size, (part_number as u64 - 1) * up.part_size)
        };
        let size = data.len() as u64;
        // Stream the part into the blob at its slot — the (possibly
        // short last) part is padded to whole pages on the wire, but
        // only its final page; nothing is buffered in the uploads map.
        let (version, tag) = self.stream_in(blob, WriteKind::At(offset), data, 0, None)?;
        let mut u = self.uploads.lock();
        let up = u.get_mut(&upload_id).ok_or(GatewayError::NoSuchUpload)?;
        debug_assert_eq!(up.part_size, part_size);
        up.parts.insert(part_number, (size, tag, version));
        up.last_touched = Instant::now();
        Ok(())
    }

    /// Complete a multipart upload (S3 `CompleteMultipartUpload`): part
    /// numbers must be contiguous from 1 and every part except the last
    /// must be full-sized. Publishes the assembled object.
    pub fn complete_multipart(
        &self,
        principal: ClientId,
        upload_id: u64,
    ) -> Result<ObjectInfo, GatewayError> {
        self.track("complete_multipart", || self.complete_multipart_inner(principal, upload_id))
    }

    fn complete_multipart_inner(
        &self,
        principal: ClientId,
        upload_id: u64,
    ) -> Result<ObjectInfo, GatewayError> {
        let up = {
            let mut u = self.uploads.lock();
            let up = u.get(&upload_id).ok_or(GatewayError::NoSuchUpload)?;
            if up.owner != principal {
                return Err(GatewayError::AccessDenied);
            }
            u.remove(&upload_id).expect("present")
        };
        let n = up.parts.len() as u32;
        if n == 0 || *up.parts.keys().last().expect("nonempty") != n {
            self.uploads.lock().insert(upload_id, up);
            return Err(GatewayError::InvalidPart);
        }
        let mut size = 0u64;
        let mut tag = 0xcbf2_9ce4_8422_2325u64;
        let mut version = VersionId(0);
        for (num, (len, part_tag, part_version)) in &up.parts {
            if *num != n && *len != up.part_size {
                self.uploads.lock().insert(upload_id, up);
                return Err(GatewayError::InvalidPart);
            }
            size += len;
            tag = tag.rotate_left(13) ^ part_tag;
            version = version.max(*part_version);
        }
        let info = ObjectInfo { key: up.key.clone(), size, blob: up.blob, version, etag: tag };
        let mut b = self.buckets.lock();
        let bucket_ref = b.get_mut(&up.bucket).ok_or(GatewayError::NoSuchBucket)?;
        bucket_ref.objects.insert(up.key, info.clone());
        Ok(info)
    }

    /// Abort a multipart upload (S3 `AbortMultipartUpload`): drops the
    /// upload state; uploaded part data is reclaimed asynchronously by the
    /// data-removal strategies.
    pub fn abort_multipart(&self, principal: ClientId, upload_id: u64) -> Result<(), GatewayError> {
        let mut u = self.uploads.lock();
        let up = u.get(&upload_id).ok_or(GatewayError::NoSuchUpload)?;
        if up.owner != principal {
            return Err(GatewayError::AccessDenied);
        }
        u.remove(&upload_id);
        Ok(())
    }

    /// Keys in a bucket starting with `prefix`, up to `max_keys`, in key
    /// order.
    pub fn list_objects(
        &self,
        principal: ClientId,
        bucket: &str,
        prefix: &str,
        max_keys: usize,
    ) -> Result<Vec<ObjectInfo>, GatewayError> {
        let b = self.buckets.lock();
        let bucket_ref = b.get(bucket).ok_or(GatewayError::NoSuchBucket)?;
        self.check_read(principal, bucket_ref)?;
        Ok(bucket_ref
            .objects
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .take(max_keys)
            .map(|(_, o)| o.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sads_blob::runtime::threaded::{Cluster, ClusterBuilder};

    fn cluster_and_gateway() -> (Cluster, ObjectGateway) {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .start();
        let client = cluster.client(ClientId(1000));
        let gw = ObjectGateway::new(
            client,
            GatewayConfig { page_size: 64 * 1024, replication: 1, ..Default::default() },
        );
        (cluster, gw)
    }

    const ALICE: ClientId = ClientId(1);
    const BOB: ClientId = ClientId(2);

    fn body(n: usize, seed: u8) -> Bytes {
        Bytes::from((0..n).map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed)).collect::<Vec<u8>>())
    }

    #[test]
    fn traced_requests_echo_trace_id_and_span_the_backend() {
        let sink = Arc::new(SpanSink::new());
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .span_sink(Arc::clone(&sink))
            .start();
        let client = cluster.client(ClientId(1000));
        let mut gw = ObjectGateway::new(
            client,
            GatewayConfig { page_size: 64 * 1024, replication: 1, ..Default::default() },
        );
        gw.set_span_sink(Arc::clone(&sink));
        gw.create_bucket(ALICE, "t", Acl::Private).unwrap();
        let data = body(200_000, 5);
        let put = gw.put_object_traced(ALICE, "t", "k", data.clone()).unwrap();
        assert_ne!(put.trace_id, 0, "put echoes a trace id");
        let got = gw.get_object_traced(ALICE, "t", "k").unwrap();
        assert_eq!(got.body, data);
        assert_ne!(got.trace_id, 0);
        assert_ne!(got.trace_id, put.trace_id, "one trace per request");
        cluster.shutdown();

        let spans = sink.spans();
        // The PUT trace holds the gateway root, the nested client write
        // op, and provider-side handles — one causal tree per request.
        let in_put: Vec<_> = spans.iter().filter(|s| s.trace == put.trace_id).collect();
        assert!(in_put
            .iter()
            .any(|s| s.service == "gateway" && s.op == "put_object" && s.kind == SpanKind::Op));
        let client_write = in_put
            .iter()
            .find(|s| s.service == "client" && s.op == "write_stream")
            .expect("client write stream nests in the gateway trace");
        assert_ne!(client_write.parent, 0, "write stream hangs off the gateway root");
        assert!(in_put.iter().any(|s| s.service == "provider"));
        // The GET trace likewise covers the nested read.
        assert!(spans
            .iter()
            .any(|s| s.trace == got.trace_id && s.service == "client" && s.op == "read"));
    }

    #[test]
    fn traced_latencies_surface_as_metrics_exemplars() {
        let sink = Arc::new(SpanSink::new());
        let (cluster, mut gw) = cluster_and_gateway();
        gw.set_span_sink(Arc::clone(&sink));
        gw.create_bucket(ALICE, "x", Acl::Private).unwrap();
        let put = gw.put_object_traced(ALICE, "x", "k", body(10_000, 4)).unwrap();
        let get = gw.get_object_traced(ALICE, "x", "k").unwrap();
        let text = gw.get_metrics();
        // The trace ids echoed to the client reappear on the op_seconds
        // buckets their latencies landed in.
        assert!(
            text.contains(&format!("trace_id=\"{:x}\"", put.trace_id)),
            "put exemplar missing:\n{text}"
        );
        assert!(
            text.contains(&format!("trace_id=\"{:x}\"", get.trace_id)),
            "get exemplar missing:\n{text}"
        );
        // And the exposition round-trips through the parser, exemplars
        // included.
        let parsed = sads_telemetry::parse_prometheus(&text).expect("exposition parses");
        assert!(parsed
            .iter()
            .any(|s| s.exemplar.as_ref().is_some_and(|(tid, _)| *tid == format!("{:x}", put.trace_id))));
        cluster.shutdown();
    }

    #[test]
    fn statusz_renders_health_alerts_recorder_and_top_counters() {
        let (cluster, mut gw) = cluster_and_gateway();
        let reg = Arc::clone(cluster.telemetry());
        gw.set_telemetry(Arc::clone(&reg));
        let rec = Arc::clone(cluster.flight_recorder().expect("recorder is on by default"));
        gw.set_flight_recorder(Arc::clone(&rec));

        gw.create_bucket(ALICE, "s", Acl::Private).unwrap();
        gw.put_object(ALICE, "s", "k", body(4096, 7)).unwrap();

        // Paint a known health/alert picture over whatever the cluster
        // heartbeats wrote: one fresh node, one long-silent node, one
        // burning rule.
        reg.set(HEARTBEAT_GAUGE, &[("node", "9001")], 1_000_000.0);
        reg.set(HEARTBEAT_GAUGE, &[("node", "9002")], 10.0);
        reg.set("alerts.active", &[("rule", "read_rate_burn")], 1.0);
        reg.inc("alerts.fired", &[("rule", "read_rate_burn")], 3);
        rec.trigger_dump("statusz-test", "synthetic", 123);

        let page = gw.statusz();
        assert!(page.contains("uptime_s:"), "{page}");
        assert!(page.contains("health:"), "{page}");
        assert!(page.contains("node 9002: Down"), "{page}");
        assert!(page.contains("active=[read_rate_burn]"), "{page}");
        assert!(page.contains("fired read_rate_burn: 3"), "{page}");
        assert!(page.contains("flight recorder:"), "{page}");
        assert!(page.contains("last dump #1: statusz-test"), "{page}");
        // The PUT left request counters behind; the busiest-counter
        // sketch must include the gateway family.
        assert!(page.contains("top counters:"), "{page}");
        assert!(page.contains("gateway.requests{op=put_object}"), "{page}");
        cluster.shutdown();
    }

    #[test]
    fn put_get_roundtrip_with_odd_sizes() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "data", Acl::Private).unwrap();
        // An object that is NOT a page multiple: padding must be invisible.
        let data = body(100_001, 3);
        let info = gw.put_object(ALICE, "data", "a/b.bin", data.clone()).unwrap();
        assert_eq!(info.size, 100_001);
        let got = gw.get_object(ALICE, "data", "a/b.bin").unwrap();
        assert_eq!(got, data);
        // Range read, clamped at the logical end.
        let got = gw.get_object_range(ALICE, "data", "a/b.bin", 99_000, 5_000).unwrap();
        assert_eq!(&got[..], &data[99_000..]);
        let h = gw.head_object(ALICE, "data", "a/b.bin").unwrap();
        assert_eq!(h.etag, info.etag);
        cluster.shutdown();
    }

    #[test]
    fn streaming_reader_matches_range_reads() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "s", Acl::Private).unwrap();
        let data = body(5 * 64 * 1024 + 777, 9);
        gw.put_object(ALICE, "s", "obj", data.clone()).unwrap();

        // Full-object stream reassembles the body.
        let mut r = gw.get_object_reader(ALICE, "s", "obj", 0, u64::MAX).unwrap();
        assert_eq!(r.len(), data.len() as u64);
        let mut got = Vec::new();
        while let Some(chunk) = r.next().unwrap() {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got[..], &data[..]);

        // Unaligned range, clamped at the logical object end (padding
        // pages stay invisible).
        let (off, len) = (64 * 1024 + 13, u64::MAX);
        let mut r = gw.get_object_reader(ALICE, "s", "obj", off, len).unwrap();
        assert_eq!(r.len(), data.len() as u64 - off);
        let mut got = Vec::new();
        while let Some(chunk) = r.next().unwrap() {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got[..], &data[off as usize..]);

        // Offset past the end streams nothing; early close is clean.
        let mut r = gw.get_object_reader(ALICE, "s", "obj", data.len() as u64 + 1, 10).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.next().unwrap(), None);
        let r = gw.get_object_reader(ALICE, "s", "obj", 0, u64::MAX).unwrap();
        r.close().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn overwrite_changes_version_and_content() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        let v1 = gw.put_object(ALICE, "b", "k", body(1000, 1)).unwrap();
        let v2 = gw.put_object(ALICE, "b", "k", body(500, 2)).unwrap();
        assert_eq!(v1.blob, v2.blob, "same backing blob");
        assert!(v2.version > v1.version);
        let got = gw.get_object(ALICE, "b", "k").unwrap();
        assert_eq!(got.len(), 500);
        assert_eq!(got, body(500, 2));
        cluster.shutdown();
    }

    #[test]
    fn acl_enforcement() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "private", Acl::Private).unwrap();
        gw.create_bucket(ALICE, "public", Acl::PublicRead).unwrap();
        gw.put_object(ALICE, "private", "secret", body(10, 1)).unwrap();
        gw.put_object(ALICE, "public", "page", body(10, 2)).unwrap();
        assert_eq!(
            gw.get_object(BOB, "private", "secret").unwrap_err(),
            GatewayError::AccessDenied
        );
        assert!(gw.get_object(BOB, "public", "page").is_ok());
        assert!(matches!(
            gw.put_object(BOB, "public", "vandalism", body(1, 0)),
            Err(GatewayError::AccessDenied)
        ));
        assert_eq!(gw.list_buckets(BOB), vec!["public".to_owned()]);
        cluster.shutdown();
    }

    #[test]
    fn bucket_lifecycle_and_errors() {
        let (cluster, gw) = cluster_and_gateway();
        assert_eq!(gw.create_bucket(ALICE, "", Acl::Private), Err(GatewayError::InvalidName));
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        assert_eq!(
            gw.create_bucket(BOB, "b", Acl::Private),
            Err(GatewayError::BucketAlreadyExists)
        );
        assert_eq!(gw.get_object(ALICE, "nope", "k"), Err(GatewayError::NoSuchBucket));
        assert_eq!(gw.get_object(ALICE, "b", "k"), Err(GatewayError::NoSuchKey));
        gw.put_object(ALICE, "b", "k", body(10, 1)).unwrap();
        assert_eq!(gw.delete_bucket(ALICE, "b"), Err(GatewayError::BucketNotEmpty));
        assert_eq!(gw.delete_bucket(BOB, "b"), Err(GatewayError::AccessDenied));
        gw.delete_object(ALICE, "b", "k").unwrap();
        assert_eq!(gw.delete_object(ALICE, "b", "k"), Err(GatewayError::NoSuchKey));
        gw.delete_bucket(ALICE, "b").unwrap();
        assert_eq!(gw.get_object(ALICE, "b", "k"), Err(GatewayError::NoSuchBucket));
        cluster.shutdown();
    }

    #[test]
    fn list_with_prefix_is_ordered_and_bounded() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        for k in ["logs/1", "logs/2", "logs/3", "img/1"] {
            gw.put_object(ALICE, "b", k, body(8, 0)).unwrap();
        }
        let keys: Vec<String> = gw
            .list_objects(ALICE, "b", "logs/", 10)
            .unwrap()
            .into_iter()
            .map(|o| o.key)
            .collect();
        assert_eq!(keys, vec!["logs/1", "logs/2", "logs/3"]);
        let keys = gw.list_objects(ALICE, "b", "logs/", 2).unwrap();
        assert_eq!(keys.len(), 2);
        let all = gw.list_objects(ALICE, "b", "", 10).unwrap();
        assert_eq!(all.len(), 4);
        cluster.shutdown();
    }

    #[test]
    fn delete_decommissions_the_backing_blob() {
        let (mut cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        let info = gw.put_object(ALICE, "b", "k", body(1000, 1)).unwrap();
        gw.delete_object(ALICE, "b", "k").unwrap();
        assert_eq!(gw.get_object(ALICE, "b", "k"), Err(GatewayError::NoSuchKey));
        // The backing BLOB was decommissioned at the version manager: it
        // takes no new pins and no new writes.
        let probe = cluster.client(ClientId(2000));
        assert!(probe.snapshot(info.blob, None).is_err(), "decommissioned blob refuses pins");
        // Re-putting the key gets a fresh BLOB — decommissioned ids are
        // never reused.
        let again = gw.put_object(ALICE, "b", "k", body(1000, 2)).unwrap();
        assert_ne!(again.blob, info.blob);
        let snap = gw.metrics_snapshot();
        assert_eq!(snap.counter("gateway.requests", &[("op", "delete_object")]), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn snapshot_object_pins_the_current_version() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::PublicRead).unwrap();
        let d1 = body(150_000, 1);
        gw.put_object(ALICE, "b", "k", d1.clone()).unwrap();
        let pin = gw.snapshot_object(ALICE, "b", "k").unwrap();
        assert_eq!(pin.version, gw.head_object(ALICE, "b", "k").unwrap().version);
        // Snapshots are owner-only mutations even on public-read buckets,
        // and unknown keys surface as NoSuchKey.
        assert_eq!(
            gw.snapshot_object(BOB, "b", "k"),
            Err(GatewayError::AccessDenied)
        );
        assert_eq!(
            gw.snapshot_object(ALICE, "b", "missing"),
            Err(GatewayError::NoSuchKey)
        );
        // The pin keeps serving the snapshotted bytes across overwrites.
        gw.put_object(ALICE, "b", "k", body(150_000, 2)).unwrap();
        assert_eq!(gw.read_pinned(&pin, 0, pin.size).unwrap(), d1);
        let snap = gw.metrics_snapshot();
        assert_eq!(snap.counter("gateway.requests", &[("op", "snapshot_object")]), Some(3));
        assert_eq!(snap.counter("gateway.errors", &[("op", "snapshot_object")]), Some(2));
        cluster.shutdown();
    }

    #[test]
    fn overwrite_during_read_is_snapshot_isolated() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        let d1 = body(200_000, 1);
        gw.put_object(ALICE, "b", "k", d1.clone()).unwrap();
        let pin = gw.head_object(ALICE, "b", "k").unwrap();
        gw.put_object(ALICE, "b", "k", body(200_000, 2)).unwrap();
        // The pinned version still serves the old bytes (what a
        // long-running GET observes across a concurrent overwrite).
        let got = gw.read_pinned(&pin, 0, pin.size).unwrap();
        assert_eq!(got, d1);
        cluster.shutdown();
    }

    #[test]
    fn transient_backend_outages_map_to_unavailable() {
        use sads_blob::model::{BlobId, ChunkKey, VersionId};
        let key = ChunkKey { blob: BlobId(1), version: VersionId(1), page: 0 };
        for e in [
            BlobError::ChunkUnavailable(key),
            BlobError::MetaUnavailable,
            BlobError::Timeout,
            BlobError::AllocationFailed { requested: 3, available: 0 },
        ] {
            match GatewayError::from(e) {
                GatewayError::Unavailable { retry_after_secs } => {
                    assert!(retry_after_secs > 0, "hint must tell clients to wait");
                }
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
        // Non-transient failures keep their S3 storage-error shape.
        assert!(matches!(
            GatewayError::from(BlobError::Blocked(ClientId(9))),
            GatewayError::Storage(BlobError::Blocked(_))
        ));
    }

    #[test]
    fn empty_object_roundtrip() {
        let (cluster, gw) = cluster_and_gateway();
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        let info = gw.put_object(ALICE, "b", "empty", Bytes::new()).unwrap();
        assert_eq!(info.size, 0);
        let got = gw.get_object(ALICE, "b", "empty").unwrap();
        assert!(got.is_empty());
        cluster.shutdown();
    }

    /// The `/metrics` contract: sharing the cluster's registry with the
    /// gateway makes one scrape cover the S3 front end and the BLOB
    /// services behind it — ≥10 metric families across ≥4 services, all
    /// surviving a Prometheus-text render/parse round trip.
    #[test]
    fn metrics_exposition_covers_gateway_and_cluster() {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .start();
        let client = cluster.client(ClientId(1000));
        let mut gw = ObjectGateway::new(
            client,
            GatewayConfig { page_size: 64 * 1024, replication: 1, ..Default::default() },
        );
        gw.set_telemetry(Arc::clone(cluster.telemetry()));

        gw.create_bucket(ALICE, "m", Acl::Private).unwrap();
        for i in 0..4u8 {
            let key = format!("k{i}");
            gw.put_object(ALICE, "m", &key, body(100_000, i)).unwrap();
            assert!(gw.get_object(ALICE, "m", &key).is_ok());
        }
        assert!(gw.head_object(ALICE, "m", "missing").is_err());
        // Let one service heartbeat land so node/pool/meta gauges exist.
        std::thread::sleep(std::time::Duration::from_millis(1500));

        let snap = gw.metrics_snapshot();
        assert_eq!(snap.counter("gateway.requests", &[("op", "put_object")]), Some(4));
        assert_eq!(snap.counter("gateway.requests", &[("op", "get_object")]), Some(4));
        assert_eq!(snap.counter("gateway.errors", &[("op", "head_object")]), Some(1));
        assert!(snap.counter_total("provider.reads").unwrap_or(0) > 0, "backend reads counted");
        assert!(snap.counter_total("vman.tickets").unwrap_or(0) >= 4, "writes took tickets");

        let families = snap.families();
        assert!(
            families.len() >= 10,
            "expected ≥10 metric families, got {}: {families:?}",
            families.len()
        );
        let mut services: Vec<&str> =
            families.iter().map(|f| f.split('.').next().unwrap()).collect();
        services.sort();
        services.dedup();
        assert!(
            services.len() >= 4,
            "expected families from ≥4 services, got {services:?}"
        );

        // The text endpoint renders the same data and parses back.
        let text = gw.get_metrics();
        let parsed = sads_telemetry::parse_prometheus(&text).expect("parseable exposition");
        assert!(parsed
            .iter()
            .any(|s| s.name == "sads_gateway_requests"
                && s.labels.iter().any(|(k, v)| k == "op" && v == "put_object")
                && s.value == 4.0));
        assert!(parsed.iter().any(|s| s.name == "sads_gateway_op_seconds_bucket"));
        cluster.shutdown();
    }
}

#[cfg(test)]
mod multipart_tests {
    use super::*;
    use sads_blob::runtime::threaded::{Cluster, ClusterBuilder};

    const ALICE: ClientId = ClientId(1);
    const BOB: ClientId = ClientId(2);
    const PAGE: u64 = 64 * 1024;
    const PART: u64 = 2 * PAGE;

    fn setup() -> (Cluster, ObjectGateway) {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .start();
        let client = cluster.client(ClientId(1000));
        let gw =
            ObjectGateway::new(client, GatewayConfig { page_size: PAGE, replication: 1, ..Default::default() });
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();
        (cluster, gw)
    }

    fn body(n: usize, seed: u8) -> Bytes {
        Bytes::from((0..n).map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed)).collect::<Vec<u8>>())
    }

    #[test]
    fn out_of_order_parts_assemble_correctly() {
        let (cluster, gw) = setup();
        let id = gw.create_multipart(ALICE, "b", "big", PART).unwrap();
        let p1 = body(PART as usize, 1);
        let p2 = body(PART as usize, 2);
        let p3 = body(1000, 3); // short last part
        gw.upload_part(ALICE, id, 3, p3.clone()).unwrap();
        gw.upload_part(ALICE, id, 1, p1.clone()).unwrap();
        gw.upload_part(ALICE, id, 2, p2.clone()).unwrap();
        let info = gw.complete_multipart(ALICE, id).unwrap();
        assert_eq!(info.size, 2 * PART + 1000);
        let got = gw.get_object(ALICE, "b", "big").unwrap();
        assert_eq!(&got[..PART as usize], &p1[..]);
        assert_eq!(&got[PART as usize..2 * PART as usize], &p2[..]);
        assert_eq!(&got[2 * PART as usize..], &p3[..]);
        // The upload id is gone.
        assert_eq!(gw.complete_multipart(ALICE, id), Err(GatewayError::NoSuchUpload));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_part_uploads() {
        let (cluster, gw) = setup();
        let gw = std::sync::Arc::new(gw);
        let id = gw.create_multipart(ALICE, "b", "par", PART).unwrap();
        let mut handles = Vec::new();
        for n in 1..=6u32 {
            let gw = std::sync::Arc::clone(&gw);
            handles.push(std::thread::spawn(move || {
                gw.upload_part(ALICE, id, n, body(PART as usize, n as u8)).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let info = gw.complete_multipart(ALICE, id).unwrap();
        assert_eq!(info.size, 6 * PART);
        for n in 1..=6u32 {
            let got = gw
                .get_object_range(ALICE, "b", "par", (n as u64 - 1) * PART, PART)
                .unwrap();
            assert_eq!(got, body(PART as usize, n as u8), "part {n}");
        }
        drop(gw);
        cluster.shutdown();
    }

    #[test]
    fn invalid_uploads_are_rejected() {
        let (cluster, gw) = setup();
        // part_size must be a page multiple.
        assert_eq!(
            gw.create_multipart(ALICE, "b", "k", PAGE + 1),
            Err(GatewayError::InvalidPart)
        );
        let id = gw.create_multipart(ALICE, "b", "k", PART).unwrap();
        // part number 0, empty part, oversized part.
        assert_eq!(
            gw.upload_part(ALICE, id, 0, body(10, 0)),
            Err(GatewayError::InvalidPart)
        );
        assert_eq!(gw.upload_part(ALICE, id, 1, Bytes::new()), Err(GatewayError::InvalidPart));
        assert_eq!(
            gw.upload_part(ALICE, id, 1, body((PART + 1) as usize, 0)),
            Err(GatewayError::InvalidPart)
        );
        // Gap in part numbers fails complete but keeps the upload alive.
        gw.upload_part(ALICE, id, 1, body(PART as usize, 1)).unwrap();
        gw.upload_part(ALICE, id, 3, body(100, 3)).unwrap();
        assert_eq!(gw.complete_multipart(ALICE, id), Err(GatewayError::InvalidPart));
        // Short non-final part fails too.
        gw.upload_part(ALICE, id, 2, body(100, 2)).unwrap();
        assert_eq!(gw.complete_multipart(ALICE, id), Err(GatewayError::InvalidPart));
        // Fixing part 2 completes.
        gw.upload_part(ALICE, id, 2, body(PART as usize, 2)).unwrap();
        assert!(gw.complete_multipart(ALICE, id).is_ok());
        // ACL: only the owner may touch an upload.
        let id = gw.create_multipart(ALICE, "b", "k2", PART).unwrap();
        assert_eq!(
            gw.upload_part(BOB, id, 1, body(10, 0)),
            Err(GatewayError::AccessDenied)
        );
        assert_eq!(gw.abort_multipart(BOB, id), Err(GatewayError::AccessDenied));
        gw.abort_multipart(ALICE, id).unwrap();
        assert_eq!(gw.abort_multipart(ALICE, id), Err(GatewayError::NoSuchUpload));
        cluster.shutdown();
    }

    #[test]
    fn stale_uploads_expire_after_ttl() {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .start();
        let client = cluster.client(ClientId(1000));
        let mut gw = ObjectGateway::new(
            client,
            GatewayConfig {
                page_size: PAGE,
                replication: 1,
                multipart_ttl: Duration::from_millis(50),
            },
        );
        gw.set_telemetry(Arc::clone(cluster.telemetry()));
        gw.create_bucket(ALICE, "b", Acl::Private).unwrap();

        let stale = gw.create_multipart(ALICE, "b", "stale", PART).unwrap();
        gw.upload_part(ALICE, stale, 1, body(PART as usize, 1)).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        // Creating a new upload runs the lazy sweep and reaps the idle one.
        let live = gw.create_multipart(ALICE, "b", "live", PART).unwrap();
        assert_eq!(
            gw.upload_part(ALICE, stale, 2, body(PART as usize, 2)),
            Err(GatewayError::NoSuchUpload),
            "expired upload is gone"
        );
        assert_eq!(gw.abort_multipart(ALICE, stale), Err(GatewayError::NoSuchUpload));
        assert_eq!(
            gw.metrics_snapshot().counter("gateway.multipart_expired", &[]),
            Some(1),
            "sweep counted exactly the stale upload"
        );
        // Part uploads refresh the staleness clock: touch `live` every
        // 30 ms (under the 50 ms TTL), then run the sweep again — it must
        // survive, with the expiry counter unchanged.
        std::thread::sleep(Duration::from_millis(30));
        gw.upload_part(ALICE, live, 1, body(700, 9)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        gw.upload_part(ALICE, live, 1, body(800, 9)).unwrap();
        assert_eq!(gw.sweep_stale_uploads(), 0, "refreshed upload is not stale");
        assert_eq!(
            gw.metrics_snapshot().counter("gateway.multipart_expired", &[]),
            Some(1)
        );
        let info = gw.complete_multipart(ALICE, live).unwrap();
        assert_eq!(info.size, 800);
        cluster.shutdown();
    }
}
