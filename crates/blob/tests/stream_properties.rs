//! Property tests for the streaming write path: a streamed write — fed
//! in arbitrary slices, from single bytes to multi-chunk bursts — must
//! publish exactly the bytes a whole-buffer [`ClientHandle::write`]
//! would, regardless of how the feed was split.
//!
//! [`ClientHandle::write`]: sads_blob::runtime::threaded::ClientHandle::write

use std::sync::OnceLock;

use bytes::Bytes;
use proptest::prelude::*;
use sads_blob::runtime::threaded::{ClientHandle, ClusterBuilder};
use sads_blob::{BlobSpec, ClientId, WriteKind};

const PAGE: u64 = 4096;

/// One shared cluster for every generated case: cluster spin-up is the
/// expensive part, so the property loop reuses a process-wide instance
/// (the threads are reclaimed at process exit).
fn client() -> &'static ClientHandle {
    static CLIENT: OnceLock<ClientHandle> = OnceLock::new();
    CLIENT.get_or_init(|| {
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .start();
        let handle = cluster.client(ClientId(7000));
        std::mem::forget(cluster);
        handle
    })
}

/// Deterministic pseudo-random body so failures reproduce bytewise.
fn body(len: usize, seed: u64) -> Bytes {
    let mut x = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect::<Vec<u8>>(),
    )
}

/// Split `data` into feed slices drawn from `cuts` (cycled): the values
/// deliberately span 1-byte feeds, sub-page tails, and bursts larger
/// than a whole chunk.
fn feed_in_slices(
    handle: &mut sads_blob::BlobWriteHandle,
    data: &Bytes,
    cuts: &[usize],
) -> Result<(), sads_blob::BlobError> {
    let mut at = 0usize;
    let mut i = 0usize;
    while at < data.len() {
        let take = cuts[i % cuts.len()].clamp(1, data.len() - at);
        handle.feed(data.slice(at..at + take))?;
        at += take;
        i += 1;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streamed_write_matches_whole_buffer_write(
        pages in 1u64..6,
        seed in 1u64..u64::MAX,
        cuts in prop::collection::vec(
            prop_oneof![
                Just(1usize),                      // single-byte feeds
                2usize..(PAGE as usize),           // sub-page slices
                (PAGE as usize)..(3 * PAGE as usize), // multi-chunk bursts
            ],
            1..6,
        ),
    ) {
        let c = client();
        let len = pages * PAGE;
        let data = body(len as usize, seed);

        // Reference: classic whole-buffer write.
        let whole = c.create(BlobSpec { page_size: PAGE, replication: 1 }).unwrap();
        let vw = c.write(whole, 0, data.clone()).unwrap();

        // Candidate: streamed write fed in the generated slicing.
        let streamed = c.create(BlobSpec { page_size: PAGE, replication: 1 }).unwrap();
        let mut h = c.open_write_stream(streamed, WriteKind::At(0), len, None).unwrap();
        feed_in_slices(&mut h, &data, &cuts).unwrap();
        let vs = h.commit().unwrap();

        let expect = c.read(whole, Some(vw), 0, len).unwrap();
        let got = c.read(streamed, Some(vs), 0, len).unwrap();
        prop_assert_eq!(&expect, &data, "whole-buffer write roundtrip");
        prop_assert!(got == data, "streamed write diverged (cuts {:?})", &cuts);
    }

    #[test]
    fn streamed_read_matches_whole_buffer_read(
        pages in 1u64..8,
        seed in 1u64..u64::MAX,
        off_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.2,
    ) {
        let c = client();
        let total = pages * PAGE;
        let data = body(total as usize, seed);
        let blob = c.create(BlobSpec { page_size: PAGE, replication: 1 }).unwrap();
        let v = c.write(blob, 0, data.clone()).unwrap();

        // An arbitrary (possibly empty, possibly end-clamped) range.
        let offset = (off_frac * total as f64) as u64;
        let len = ((len_frac * total as f64) as u64).min(total.saturating_sub(offset));

        let mut h = c.open_read_stream(blob, Some(v), offset, len, None).unwrap();
        let mut got = Vec::new();
        while let Some(chunk) = h.next().unwrap() {
            got.extend_from_slice(&chunk);
        }
        prop_assert_eq!(got.len() as u64, len);
        prop_assert!(
            got == data[offset as usize..(offset + len) as usize],
            "streamed range [{offset}, +{len}) diverged"
        );
    }
}
