//! # sads-blob — BlobSeer reimplementation
//!
//! A full Rust reimplementation of BlobSeer (Nicolae et al., JPDC 2010),
//! the large-scale data-sharing platform the paper builds its
//! self-adaptive cloud storage service on.
//!
//! BLOBs are huge byte sequences split into fixed-size pages; every write
//! publishes a new immutable version; versions share unmodified pages and
//! metadata subtrees. The five actors of the paper's §III-A are here:
//!
//! * [`services::DataProviderService`] — chunk storage,
//! * [`services::MetaProviderService`] — distributed segment-tree nodes,
//! * [`services::ProviderManagerService`] — membership + allocation
//!   strategies ([`pmanager`]),
//! * [`services::VersionManagerService`] — ticketing + ordered
//!   publication ([`vmanager`]),
//! * [`client::ClientCore`] — the client protocol state machines.
//!
//! All service logic is runtime-agnostic; [`runtime::sim`] drives it on
//! the deterministic cluster simulator, [`runtime::threaded`] on real
//! threads with real bytes.
//!
//! # Example: a minimal write/read round-trip
//!
//! ```
//! use bytes::Bytes;
//! use sads_blob::runtime::threaded::ClusterBuilder;
//! use sads_blob::{BlobSpec, ClientId};
//!
//! let mut cluster = ClusterBuilder::new()
//!     .data_providers(4)
//!     .meta_providers(2)
//!     .provider_capacity(64 << 20)
//!     .start();
//! let client = cluster.client(ClientId(1));
//!
//! // Page-aligned writes publish immutable versions.
//! let page = 64 * 1024;
//! let blob = client.create(BlobSpec { page_size: page, replication: 2 }).unwrap();
//! let data = Bytes::from(vec![0xAB; page as usize]);
//! let v1 = client.write(blob, 0, data.clone()).unwrap();
//!
//! let got = client.read(blob, Some(v1), 0, page).unwrap();
//! assert_eq!(got, data);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod meta;
pub mod model;
pub mod pmanager;
pub mod probe;
pub mod provider;
pub mod rpc;
pub mod runtime;
pub mod services;
pub mod storage;
pub mod stream;
pub mod vmanager;

pub use client::{ClientConfig, ClientCore, ClientOp, Completion, OpOutput};
pub use stream::{BlobReadHandle, BlobWriteHandle};
pub use model::{
    BlobError, BlobId, BlobSpec, ChunkDescriptor, ChunkKey, ClientId, PageInterval, Payload,
    VersionId, VersionInfo,
};
pub use storage::{BackendConfig, BackendSpec, ChunkBackend, DiskConfig};
pub use vmanager::{WriteKind, WriteTicket};
