//! Core data model: BLOB identities, versions, page geometry, chunk
//! descriptors and error types shared by every BlobSeer actor.
//!
//! BlobSeer stores *BLOBs* — huge, unstructured byte sequences — split into
//! fixed-size *pages* (the paper calls them chunks). Every write or append
//! publishes a new immutable *version*; versions share unmodified pages and
//! metadata subtrees with their ancestors.

use bytes::Bytes;
use std::fmt;

/// Identifies a BLOB within one BlobSeer deployment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlobId(pub u64);

/// A published (or pending) snapshot number of a BLOB. Version 0 is the
/// empty BLOB that exists at creation; the first write publishes version 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VersionId(pub u64);

impl VersionId {
    /// The initial (empty) version every BLOB has at creation.
    pub const INITIAL: VersionId = VersionId(0);

    /// The next version number.
    #[inline]
    pub fn next(self) -> VersionId {
        VersionId(self.0 + 1)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies the principal (user/application) performing client
/// operations; the unit of accounting for the security framework.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u64);

impl ClientId {
    /// The system principal used by internal maintenance traffic
    /// (replication repair, GC); never subject to security sanctions.
    pub const SYSTEM: ClientId = ClientId(0);
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A half-open interval of *pages* `[start, start + len)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageInterval {
    /// First page index.
    pub start: u64,
    /// Number of pages (may be zero for an empty interval).
    pub len: u64,
}

impl PageInterval {
    /// An empty interval.
    pub const EMPTY: PageInterval = PageInterval { start: 0, len: 0 };

    /// Construct from explicit bounds.
    pub fn new(start: u64, len: u64) -> Self {
        PageInterval { start, len }
    }

    /// One-past-the-last page index.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Is the interval empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Do two intervals share at least one page?
    #[inline]
    pub fn intersects(&self, other: &PageInterval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end() && other.start < self.end()
    }

    /// Does `self` fully contain `other`?
    #[inline]
    pub fn contains(&self, other: &PageInterval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end() <= self.end())
    }

    /// Does the interval contain the given page?
    #[inline]
    pub fn contains_page(&self, page: u64) -> bool {
        self.start <= page && page < self.end()
    }
}

impl fmt::Display for PageInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})", self.start, self.end())
    }
}

/// Key of a stored chunk: one page of one version of one BLOB.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChunkKey {
    /// Owning BLOB.
    pub blob: BlobId,
    /// Version whose writer produced this chunk.
    pub version: VersionId,
    /// Page index within the BLOB.
    pub page: u64,
}

/// Where the replicas of one chunk live.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChunkDescriptor {
    /// Storage key.
    pub key: ChunkKey,
    /// Data providers holding a replica (node addresses).
    pub replicas: Vec<sads_sim::NodeId>,
    /// Payload size in bytes (== page size except for a trailing page).
    pub size: u64,
}

/// A chunk payload. The threaded runtime carries real bytes; the simulated
/// runtime carries only the length, so multi-gigabyte experiments do not
/// allocate.
#[derive(Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real data (threaded runtime, examples, gateway).
    Data(Bytes),
    /// Size-only stand-in (simulation runtime).
    Sim(u64),
}

impl Payload {
    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        match self {
            Payload::Data(b) => b.len() as u64,
            Payload::Sim(n) => *n,
        }
    }

    /// Is the payload empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-filled payload of the same flavor as `self` (used to
    /// materialize holes when reading never-written ranges).
    pub fn zeros_like(&self, len: u64) -> Payload {
        match self {
            Payload::Data(_) => Payload::Data(Bytes::from(vec![0u8; len as usize])),
            Payload::Sim(_) => Payload::Sim(len),
        }
    }

    /// Borrow the real bytes, if any.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Data(b) => Some(b),
            Payload::Sim(_) => None,
        }
    }

    /// Slice `[from, from + len)` out of the payload.
    pub fn slice(&self, from: u64, len: u64) -> Payload {
        match self {
            Payload::Data(b) => {
                let from = from as usize;
                let to = (from + len as usize).min(b.len());
                Payload::Data(b.slice(from.min(b.len())..to))
            }
            Payload::Sim(n) => Payload::Sim(len.min(n.saturating_sub(from))),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Data(b) => write!(f, "Data({}B)", b.len()),
            Payload::Sim(n) => write!(f, "Sim({n}B)"),
        }
    }
}

/// Immutable parameters of a BLOB, fixed at creation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlobSpec {
    /// Page (chunk) size in bytes. The paper's deployments use 8 MiB.
    pub page_size: u64,
    /// Number of replicas kept for each chunk.
    pub replication: u32,
}

impl Default for BlobSpec {
    fn default() -> Self {
        BlobSpec { page_size: 8 << 20, replication: 1 }
    }
}

/// Everything a reader needs to know about one published version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VersionInfo {
    /// The version number.
    pub version: VersionId,
    /// BLOB size, in bytes, as of this version.
    pub size: u64,
    /// BLOB page size (bytes) — readers derive page geometry from it.
    pub page_size: u64,
    /// Root of this version's metadata tree (`None` for the empty v0).
    pub root: Option<crate::meta::NodeRef>,
}

/// Errors surfaced by client operations and internal services.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BlobError {
    /// The BLOB id is unknown to the version manager.
    UnknownBlob(BlobId),
    /// The requested version has not been published.
    UnknownVersion(BlobId, VersionId),
    /// Write offset/size not aligned to the page size.
    Misaligned {
        /// Offending offset.
        offset: u64,
        /// Offending length.
        len: u64,
        /// Required alignment.
        page_size: u64,
    },
    /// A zero-length write was requested.
    EmptyWrite,
    /// Read past the end of the version.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Version size.
        size: u64,
    },
    /// The provider manager could not find enough providers.
    AllocationFailed {
        /// Chunks requested.
        requested: u32,
        /// Providers available.
        available: u32,
    },
    /// The client is blocked by the security framework.
    Blocked(ClientId),
    /// A chunk could not be stored or retrieved from any replica.
    ChunkUnavailable(ChunkKey),
    /// A metadata node could not be stored or retrieved.
    MetaUnavailable,
    /// The operation timed out after exhausting retries.
    Timeout,
    /// Storage capacity exhausted on the target provider.
    ProviderFull,
    /// Internal protocol violation (bug guard).
    Protocol(&'static str),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::UnknownBlob(b) => write!(f, "unknown blob {b:?}"),
            BlobError::UnknownVersion(b, v) => write!(f, "unknown version {v} of {b:?}"),
            BlobError::Misaligned { offset, len, page_size } => {
                write!(f, "write [{offset}, +{len}) not aligned to page size {page_size}")
            }
            BlobError::EmptyWrite => write!(f, "zero-length write"),
            BlobError::OutOfBounds { offset, len, size } => {
                write!(f, "read [{offset}, +{len}) out of bounds (size {size})")
            }
            BlobError::AllocationFailed { requested, available } => {
                write!(f, "allocation failed: {requested} chunks, {available} providers")
            }
            BlobError::Blocked(c) => write!(f, "client {c} blocked by security policy"),
            BlobError::ChunkUnavailable(k) => write!(f, "chunk {k:?} unavailable"),
            BlobError::MetaUnavailable => write!(f, "metadata unavailable"),
            BlobError::Timeout => write!(f, "operation timed out"),
            BlobError::ProviderFull => write!(f, "provider storage full"),
            BlobError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Round `bytes` up to whole pages.
#[inline]
pub fn pages_for(bytes: u64, page_size: u64) -> u64 {
    bytes.div_ceil(page_size)
}

/// Smallest power of two ≥ `n` (and ≥ 1).
#[inline]
pub fn next_pow2(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_relations() {
        let a = PageInterval::new(0, 4);
        let b = PageInterval::new(2, 4);
        let c = PageInterval::new(4, 2);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c), "half-open intervals: [0,4) and [4,6) are disjoint");
        assert!(a.contains(&PageInterval::new(1, 2)));
        assert!(!a.contains(&b));
        assert!(a.contains(&PageInterval::EMPTY));
        assert!(!a.intersects(&PageInterval::EMPTY));
        assert!(a.contains_page(3));
        assert!(!a.contains_page(4));
    }

    #[test]
    fn payload_slicing_both_flavors() {
        let d = Payload::Data(Bytes::from_static(b"hello world"));
        assert_eq!(d.len(), 11);
        let s = d.slice(6, 5);
        assert_eq!(s.bytes().unwrap().as_ref(), b"world");
        let sim = Payload::Sim(100);
        assert_eq!(sim.slice(90, 20).len(), 10, "slice clamps to payload end");
        assert_eq!(sim.slice(200, 5).len(), 0);
        assert!(Payload::Sim(0).is_empty());
    }

    #[test]
    fn zeros_like_preserves_flavor() {
        let z = Payload::Sim(1).zeros_like(5);
        assert!(matches!(z, Payload::Sim(5)));
        let z = Payload::Data(Bytes::new()).zeros_like(3);
        assert_eq!(z.bytes().unwrap().as_ref(), &[0, 0, 0]);
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(pages_for(0, 8), 0);
        assert_eq!(pages_for(1, 8), 1);
        assert_eq!(pages_for(8, 8), 1);
        assert_eq!(pages_for(9, 8), 2);
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
    }

    #[test]
    fn version_ordering() {
        assert!(VersionId::INITIAL < VersionId(1));
        assert_eq!(VersionId(3).next(), VersionId(4));
        assert_eq!(format!("{}", VersionId(2)), "v2");
    }
}
