//! The BlobSeer client: protocol state machines for `create`, `write`,
//! `append` and `read`, written as a resumable core ([`ClientCore`]) that
//! both runtimes embed.
//!
//! A write proceeds through six phases, mirroring the real BlobSeer
//! protocol: obtain a ticket from the version manager → obtain chunk
//! placements from the provider manager → store chunk replicas on the data
//! providers (all in parallel) → resolve the untouched-subtree references
//! against the published metadata (O(log n) reads) → store the new tree
//! nodes on the metadata providers → commit to the version manager, which
//! acknowledges once the version publishes in order.

use std::collections::{HashMap, HashSet};

use bytes::BytesMut;
use rand::Rng;
use sads_sim::{NodeId, SimDuration, SimTime, SpanClass, SpanKind, SpanRecord, TraceCtx};

use crate::meta::{
    partition, MetaNode, NodeKey, NodeRange, PageSource, TreeBuilder, TreeReader,
};
use crate::model::{
    pages_for, BlobError, BlobId, BlobSpec, ChunkDescriptor, ChunkKey, ClientId, PageInterval,
    Payload, VersionId, VersionInfo,
};
use crate::rpc::{ChunkErr, Msg};
use crate::services::Env;
use crate::vmanager::{WriteKind, WriteTicket};

/// Bit set on every timer token owned by the client core, so embedding
/// actors can route timers.
pub const CLIENT_TIMER_BIT: u64 = 1 << 63;

/// Secondary namespace bit: per-chunk-RPC deadline tokens (the low bits
/// carry the request id).
const CHUNK_TIMEOUT_BIT: u64 = 1 << 62;

/// Secondary namespace bit: deferred-resend tokens armed by the
/// exponential-backoff retry path (the low bits carry the request id of
/// the resend that fires when the timer does).
const RETRY_TIMER_BIT: u64 = 1 << 61;

/// An operation a client can perform.
#[derive(Debug)]
pub enum ClientOp {
    /// Create a new BLOB.
    Create {
        /// BLOB parameters.
        spec: BlobSpec,
    },
    /// Write (or append) data. Offsets and lengths must be multiples of
    /// the BLOB page size.
    Write {
        /// Target BLOB.
        blob: BlobId,
        /// Offset or append.
        kind: WriteKind,
        /// Data (real bytes or simulated length).
        data: Payload,
    },
    /// Read a byte range of a version (latest if `version` is `None`).
    Read {
        /// Target BLOB.
        blob: BlobId,
        /// Version to read, or latest.
        version: Option<VersionId>,
        /// Byte offset.
        offset: u64,
        /// Byte length (clamped to the version size).
        len: u64,
    },
    /// Pin a version as a snapshot (latest if `version` is `None`). A
    /// metadata-only O(1) operation: the pinned version becomes a GC
    /// root, its segment tree is shared, never copied.
    Snapshot {
        /// Target BLOB.
        blob: BlobId,
        /// Version to pin, or latest.
        version: Option<VersionId>,
    },
    /// Decommission a BLOB: unpin every snapshot and mark the whole
    /// version history reclaimable by the lifecycle sweeper.
    Decommission {
        /// Target BLOB.
        blob: BlobId,
    },
}

/// Successful operation output.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// BLOB created.
    Created(BlobId),
    /// Write published.
    Written {
        /// Target BLOB.
        blob: BlobId,
        /// The published version.
        version: VersionId,
        /// Byte offset written.
        offset: u64,
        /// Byte length written.
        len: u64,
    },
    /// Read finished.
    Read {
        /// Assembled data (zeros for holes; `Payload::Sim` in simulation).
        data: Payload,
        /// The version that was read.
        version: VersionId,
    },
    /// Snapshot pinned.
    Snapshotted {
        /// Target BLOB.
        blob: BlobId,
        /// The pinned version.
        version: VersionId,
    },
    /// BLOB decommissioned (`false` = refused, e.g. blocked client).
    Decommissioned {
        /// Target BLOB.
        blob: BlobId,
        /// Whether the version manager accepted.
        ok: bool,
    },
}

/// A finished operation, successful or not.
#[derive(Debug)]
pub struct Completion {
    /// Caller-chosen tag from `start_op`.
    pub tag: u64,
    /// Outcome.
    pub result: Result<OpOutput, BlobError>,
    /// When the op started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Payload bytes moved (0 for create / failures).
    pub bytes: u64,
}

impl Completion {
    /// Throughput in MB/s (payload bytes over op duration), or 0.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.finished.since(self.started).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }
}

/// Fault-tolerance policy for chunk-store RPCs.
///
/// With the policy [disabled](RetryPolicy::disabled) (the default) the
/// client behaves exactly as before this knob existed: chunk stores carry
/// no per-request deadline and any `PutChunkErr` fails the operation. An
/// [enabled](RetryPolicy::standard) policy arms a deadline on every
/// chunk store; a timed-out or refused store is re-sent to the *same*
/// provider after a bounded exponential backoff (`backoff_base · 2ᵏ`,
/// capped at `backoff_max`), and once `max_attempts` sends are exhausted
/// — or the provider reports `Full` — the client asks the provider
/// manager for a replacement placement and re-sends there instead
/// (bounded by `max_reallocs` per write).
///
/// Retries are safe because request ids correlate, never apply: a chunk
/// put is idempotent at the provider (keyed by [`ChunkKey`], an existing
/// key is kept and never double-charged), so a duplicate arrival — e.g.
/// the original slow ack racing a retransmission — cannot double-apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for one chunk-store RPC attempt.
    pub put_timeout: SimDuration,
    /// Maximum sends per target provider (1 = no same-target retry).
    /// `0` disables the whole policy.
    pub max_attempts: u32,
    /// Backoff before the k-th retry is `backoff_base · 2^(k-1)` …
    pub backoff_base: SimDuration,
    /// … capped at this value.
    pub backoff_max: SimDuration,
    /// How many times one write may fall back to the provider manager
    /// for a replacement placement before giving up.
    pub max_reallocs: u32,
}

impl RetryPolicy {
    /// No deadlines, no retries — the pre-fault-layer behavior, and the
    /// default (so fault-free runs are bit-identical with the policy
    /// merely present).
    pub const fn disabled() -> Self {
        RetryPolicy {
            put_timeout: SimDuration::ZERO,
            max_attempts: 0,
            backoff_base: SimDuration::ZERO,
            backoff_max: SimDuration::ZERO,
            max_reallocs: 0,
        }
    }

    /// A sane enabled policy: 10 s put deadline, 3 attempts per target
    /// with 500 ms → 8 s backoff, up to 4 re-allocations per write.
    pub const fn standard() -> Self {
        RetryPolicy {
            put_timeout: SimDuration::from_secs(10),
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(500),
            backoff_max: SimDuration::from_secs(8),
            max_reallocs: 4,
        }
    }

    /// Is any retry machinery active?
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Backoff before retry number `attempts` (1-based attempts so far).
    fn backoff(&self, attempts: u32) -> SimDuration {
        let shift = attempts.saturating_sub(1).min(16);
        self.backoff_base.saturating_mul(1u64 << shift).min(self.backoff_max)
    }
}

/// Client tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Per-operation deadline; the op fails with `Timeout` past it.
    pub op_timeout: SimDuration,
    /// Per-chunk-fetch deadline: an unresponsive replica (crashed or
    /// drowning in backlog) triggers failover to the next replica.
    pub chunk_timeout: SimDuration,
    /// Real-data deployments set this so reads always materialize actual
    /// zero bytes for holes (simulated deployments keep size-only
    /// payloads).
    pub materialize_zeros: bool,
    /// Maximum chunk transfers (puts or gets) in flight per operation.
    /// Completed transfers refill the window from the pending queue, so
    /// chunk I/O to distinct providers pipelines while memory and provider
    /// backlog stay bounded. `0` means unbounded (burst everything).
    pub chunk_window: usize,
    /// Capacity (node count) of the client-side metadata-node cache.
    /// Metadata nodes are immutable once published, so cached nodes are
    /// never stale; hits skip whole rounds of the tree descent. `0`
    /// disables the cache.
    pub meta_cache_nodes: usize,
    /// Chunk-RPC fault tolerance (deadlines, backoff, re-allocation and
    /// degraded-read placement refresh). Disabled by default.
    pub retry: RetryPolicy,
    /// Cold-cache reads open the metadata descent with one bulk
    /// [`Msg::GetMetaRange`] broadcast to the metadata providers instead
    /// of walking the tree one remote level at a time. The replies only
    /// warm the node cache — anything missing falls back to the per-node
    /// descent, so this is purely a round-trip optimization (and can be
    /// turned off to talk to servers that predate the message).
    pub meta_range_fetch: bool,
    /// Reply-size cap (node count) each provider applies to one
    /// `GetMetaRange` answer; truncated scans continue via cursor.
    pub meta_range_max_nodes: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            op_timeout: SimDuration::from_secs(600),
            chunk_timeout: SimDuration::from_secs(15),
            materialize_zeros: false,
            chunk_window: 32,
            meta_cache_nodes: 4096,
            retry: RetryPolicy::disabled(),
            meta_range_fetch: true,
            meta_range_max_nodes: 512,
        }
    }
}

/// Bounded FIFO cache of immutable metadata nodes. Because a `NodeKey`
/// names a node created by exactly one (never-rewritten) version, any
/// cached entry is valid forever; eviction exists only to bound memory.
#[derive(Debug, Default)]
struct MetaCache {
    cap: usize,
    map: HashMap<NodeKey, MetaNode>,
    order: std::collections::VecDeque<NodeKey>,
}

impl MetaCache {
    fn new(cap: usize) -> Self {
        MetaCache { cap, map: HashMap::new(), order: std::collections::VecDeque::new() }
    }

    fn get(&self, k: &NodeKey) -> Option<&MetaNode> {
        self.map.get(k)
    }

    fn insert(&mut self, k: NodeKey, n: MetaNode) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(k, n).is_none() {
            self.order.push_back(k);
            while self.map.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

#[derive(Debug)]
enum WritePhase {
    Ticket,
    Alloc,
    Chunks,
    MetaResolve,
    MetaPut,
    Commit,
}

#[derive(Debug)]
struct WriteSess {
    blob: BlobId,
    data: Payload,
    ticket: Option<WriteTicket>,
    chunks: Vec<ChunkDescriptor>,
    builder: Option<TreeBuilder>,
    root: Option<crate::meta::NodeRef>,
    phase: WritePhase,
    /// Chunk stores not yet issued (kept reversed so `pop()` yields the
    /// next job); the in-flight window refills from here.
    pending_puts: Vec<(NodeId, Vec<(ChunkKey, Payload)>)>,
    /// Replacement placements requested so far (bounded by
    /// [`RetryPolicy::max_reallocs`]).
    reallocs: u32,
}

#[derive(Debug)]
enum ReadPhase {
    Version,
    Meta,
    Chunks,
}

#[derive(Debug)]
struct ReadSess {
    blob: BlobId,
    offset: u64,
    len: u64,
    info: Option<VersionInfo>,
    reader: Option<TreeReader>,
    page0: u64,
    parts: Vec<Option<Payload>>,
    phase: ReadPhase,
    /// Per-provider chunk-fetch batches not yet issued (reversed; `pop()`
    /// yields the next batch); the in-flight window refills from here.
    pending_gets: Vec<(NodeId, Vec<(usize, ChunkDescriptor)>)>,
    /// Whether this read already issued its one bulk `GetMetaRange`
    /// broadcast (at most one per read; later descent gaps use the
    /// per-node path).
    range_used: bool,
}

impl ReadSess {
    /// Version + page interval of this read's bulk range query. The tree
    /// being descended is the one rooted at the version that *created*
    /// the root node — equal to the read version except when a recovered
    /// no-op version republished its predecessor's root.
    fn range_query(&self) -> (VersionId, PageInterval) {
        let info = self.info.as_ref().expect("info set");
        let version = match info.root {
            Some(crate::meta::NodeRef::Node { version, .. }) => version,
            _ => info.version,
        };
        (version, PageInterval::new(self.page0, self.parts.len() as u64))
    }
}

#[derive(Debug)]
enum SessKind {
    Create,
    // Boxed: write and read sessions embed builders, descriptor tables
    // and pending queues, and are much larger than the other variants.
    Write(Box<WriteSess>),
    Read(Box<ReadSess>),
    Snapshot(BlobId),
    Decommission(BlobId),
}

/// Causal-trace state of one operation: the root span identity plus the
/// start time of the protocol stage currently in flight. Present only
/// when the embedding runtime exposes a [`sads_sim::SpanSink`]; with
/// tracing off the field is `None` and the client does no span work.
#[derive(Debug)]
struct OpTrace {
    /// Root context: `span_id` is the operation's `Op` span, under which
    /// every stage span and (via ambient propagation) every network and
    /// server-side handle span of this operation nests.
    ctx: TraceCtx,
    /// Operation label: `"create"`, `"write"` or `"read"`.
    op: &'static str,
    /// When the current stage began (stage spans are emitted lazily, at
    /// the transition out of the stage).
    stage_start: SimTime,
}

#[derive(Debug)]
struct Session {
    tag: u64,
    started: SimTime,
    kind: SessKind,
    /// Request ids awaited in the current phase.
    outstanding: HashSet<u64>,
    /// Span bookkeeping when tracing is on (`None` = zero trace work).
    trace: Option<OpTrace>,
}

/// Which sub-protocol a pending request id belongs to, plus retry state
/// for chunk transfers.
#[derive(Debug)]
enum ReqRole {
    Plain,
    /// A chunk fetch for read-part `idx`. `first` is the replica index
    /// tried initially; `attempts` counts tries so far, and failover
    /// walks `replicas[(first + attempts) % len]` until every replica
    /// was tried once. `refreshed` marks a fetch re-issued after a
    /// degraded-read placement refresh (one refresh per chunk per op).
    ChunkGet {
        idx: usize,
        desc: ChunkDescriptor,
        first: usize,
        attempts: usize,
        refreshed: bool,
    },
    /// One provider's batch of chunk fetches (window slots grouped by
    /// the replica chosen for each chunk). A single deadline guards the
    /// whole batch; failed or unanswered items re-enter the per-chunk
    /// replica walk individually.
    ChunkGetBatch {
        target: NodeId,
        items: Vec<(usize, ChunkDescriptor)>,
    },
    /// A metadata fetch carrying the requested keys (during resolve).
    MetaGet,
    /// One provider's slice of the bulk metadata range query a cold read
    /// opens with (`target` kept for continuation requests).
    MetaRange {
        target: NodeId,
    },
    /// One provider's batch of chunk stores, kept so a timed-out or
    /// refused store can be re-sent (same target, then a replacement).
    ChunkPut {
        target: NodeId,
        items: Vec<(ChunkKey, Payload)>,
        attempts: u32,
    },
    /// A replacement-placement request for chunk stores that exhausted
    /// their target (`failed`); `items` are re-sent to the new placement.
    ReAlloc {
        failed: NodeId,
        items: Vec<(ChunkKey, Payload)>,
    },
    /// A degraded-read placement refresh: re-fetch the leaf of read-part
    /// `idx` directly (bypassing the cache) to pick up repair patches.
    LeafRefresh {
        idx: usize,
        desc: ChunkDescriptor,
    },
}

/// The embeddable client core. Drive it with `start_op`, feed it every
/// incoming message/timer, and collect [`Completion`]s.
pub struct ClientCore {
    id: ClientId,
    vman: NodeId,
    pman: NodeId,
    meta_providers: Vec<NodeId>,
    cfg: ClientConfig,
    sessions: HashMap<u64, Session>,
    req_index: HashMap<u64, (u64, ReqRole)>,
    next_req: u64,
    next_sid: u64,
    /// Metadata nodes seen (fetched or written) by this client. Nodes are
    /// immutable, so hits skip whole descent rounds with no coherence
    /// protocol.
    meta_cache: MetaCache,
}

impl ClientCore {
    /// A client of the deployment whose managers and (static) metadata
    /// provider ring are given.
    pub fn new(
        id: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: Vec<NodeId>,
        cfg: ClientConfig,
    ) -> Self {
        assert!(!meta_providers.is_empty(), "at least one metadata provider");
        ClientCore {
            id,
            vman,
            pman,
            meta_providers,
            cfg,
            sessions: HashMap::new(),
            req_index: HashMap::new(),
            next_req: 1,
            next_sid: 1,
            meta_cache: MetaCache::new(cfg.meta_cache_nodes),
        }
    }

    /// This client's principal id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Operations currently in flight.
    pub fn active_ops(&self) -> usize {
        self.sessions.len()
    }

    /// Does this timer token belong to the client core?
    pub fn owns_timer(token: u64) -> bool {
        token & CLIENT_TIMER_BIT != 0
    }

    fn fresh_req(&mut self, sid: u64, role: ReqRole) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.req_index.insert(req, (sid, role));
        req
    }

    /// Begin an operation; its completion will carry `tag`.
    pub fn start_op(&mut self, env: &mut dyn Env, op: ClientOp, tag: u64) {
        let sid = self.next_sid;
        self.next_sid += 1;
        let started = env.now();
        env.set_timer(self.cfg.op_timeout, CLIENT_TIMER_BIT | sid);
        let op_name = match &op {
            ClientOp::Create { .. } => "create",
            ClientOp::Write { .. } => "write",
            ClientOp::Read { .. } => "read",
            ClientOp::Snapshot { .. } => "snapshot",
            ClientOp::Decommission { .. } => "decommission",
        };
        let trace = env.span_sink().map(|sink| {
            // Nest under an ambient context when one exists (e.g. the S3
            // gateway's per-request span); otherwise open a fresh trace.
            let (trace_id, parent) = match env.trace_ctx() {
                Some(tc) => (tc.trace_id, tc.span_id),
                None => (sink.next_id(), 0),
            };
            let span_id = sink.next_id();
            OpTrace {
                ctx: TraceCtx { trace_id, span_id, parent },
                op: op_name,
                stage_start: started,
            }
        });
        env.set_trace_ctx(trace.as_ref().map(|t| t.ctx));
        let mut sess = Session {
            tag,
            started,
            kind: SessKind::Create,
            outstanding: HashSet::new(),
            trace,
        };
        match op {
            ClientOp::Create { spec } => {
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::CreateBlob { req, client: self.id, spec });
            }
            ClientOp::Write { blob, kind, data } => {
                sess.kind = SessKind::Write(Box::new(WriteSess {
                    blob,
                    data,
                    ticket: None,
                    chunks: Vec::new(),
                    builder: None,
                    root: None,
                    phase: WritePhase::Ticket,
                    pending_puts: Vec::new(),
                    reallocs: 0,
                }));
                let len = match &sess.kind {
                    SessKind::Write(w) => w.data.len(),
                    _ => unreachable!(),
                };
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::Ticket { req, client: self.id, blob, kind, len });
            }
            ClientOp::Read { blob, version, offset, len } => {
                sess.kind = SessKind::Read(Box::new(ReadSess {
                    blob,
                    offset,
                    len,
                    info: None,
                    reader: None,
                    page0: 0,
                    parts: Vec::new(),
                    phase: ReadPhase::Version,
                    pending_gets: Vec::new(),
                    range_used: false,
                }));
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::GetVersion { req, client: self.id, blob, version });
            }
            ClientOp::Snapshot { blob, version } => {
                sess.kind = SessKind::Snapshot(blob);
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::SnapshotVersion { req, client: self.id, blob, version });
            }
            ClientOp::Decommission { blob } => {
                sess.kind = SessKind::Decommission(blob);
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::DecommissionBlob { req, client: self.id, blob });
            }
        }
        env.set_trace_ctx(None);
    }

    /// Feed a timer owned by the client core (see [`ClientCore::owns_timer`]).
    pub fn handle_timer(&mut self, env: &mut dyn Env, token: u64) -> Vec<Completion> {
        if token & RETRY_TIMER_BIT != 0 {
            // A backoff expired: the deferred resend registered under this
            // request id goes out now. Stale timers (op already finished)
            // fall out at the request-index lookup.
            let req = token & !(CLIENT_TIMER_BIT | RETRY_TIMER_BIT);
            self.fire_deferred_resend(env, req);
            return vec![];
        }
        if token & CHUNK_TIMEOUT_BIT != 0 {
            // A chunk RPC went unanswered (provider crashed or drowned in
            // backlog): synthesize the matching error locally so the
            // normal failover/retry path handles timeouts and explicit
            // refusals identically. Stale timers (request already
            // answered) fall out at the request-index lookup.
            let req = token & !(CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT);
            let msg = match self.req_index.get(&req) {
                Some((_, ReqRole::ChunkPut { .. })) => {
                    Msg::PutChunkErr { req, err: ChunkErr::Unreachable }
                }
                Some(_) => Msg::GetChunkErr { req, err: ChunkErr::NotFound },
                None => return vec![],
            };
            return self.handle_msg(env, NodeId::EXTERNAL, msg);
        }
        let sid = token & !CLIENT_TIMER_BIT;
        if let Some(sess) = self.sessions.remove(&sid) {
            for req in &sess.outstanding {
                self.req_index.remove(req);
            }
            if let Some(t) = &sess.trace {
                let now = env.now();
                Self::record_stage(env, t, Self::stage_of(&sess.kind), now);
                Self::record_op(env, t, sess.started, now);
            }
            return vec![Completion {
                tag: sess.tag,
                result: Err(BlobError::Timeout),
                started: sess.started,
                finished: env.now(),
                bytes: 0,
            }];
        }
        vec![]
    }

    /// Send the chunk store registered for a deferred (backed-off) resend
    /// under request id `req`, arming a fresh RPC deadline. No-op if the
    /// operation finished (or timed out) while the backoff ran.
    fn fire_deferred_resend(&mut self, env: &mut dyn Env, req: u64) {
        let Some((sid, ReqRole::ChunkPut { target, items, .. })) = self.req_index.get(&req)
        else {
            return;
        };
        let sid = *sid;
        let target = *target;
        let msg = if items.len() == 1 {
            let (key, data) = items[0].clone();
            Msg::PutChunk { req, client: self.id, key, data }
        } else {
            Msg::PutChunkBatch { req, client: self.id, items: items.clone() }
        };
        // The resend belongs to the operation's causal tree.
        let tc = self.sessions.get(&sid).and_then(|s| s.trace.as_ref().map(|t| t.ctx));
        env.set_trace_ctx(tc);
        env.send(target, msg);
        env.set_trace_ctx(None);
        env.set_timer(self.cfg.retry.put_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Feed an incoming message. Returns any operations that completed.
    pub fn handle_msg(&mut self, env: &mut dyn Env, _from: NodeId, msg: Msg) -> Vec<Completion> {
        let Some(req) = req_of(&msg) else { return vec![] };
        let Some((sid, role)) = self.req_index.remove(&req) else { return vec![] };
        let Some(sess) = self.sessions.get_mut(&sid) else { return vec![] };
        sess.outstanding.remove(&req);

        // Restore this operation's causal context so every message sent
        // while advancing the protocol nests under its root span, and
        // remember the stage so a phase transition can close its span.
        let stage_before = Self::stage_of(&sess.kind);
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));

        let verdict = Self::advance(
            self.id,
            self.vman,
            self.pman,
            &self.meta_providers,
            self.cfg,
            &mut self.meta_cache,
            &mut self.next_req,
            &mut self.req_index,
            sid,
            sess,
            role,
            msg,
            env,
        );
        match verdict {
            Step::Continue => {
                if Self::stage_of(&sess.kind) != stage_before {
                    if let Some(t) = sess.trace.as_mut() {
                        let now = env.now();
                        Self::record_stage(env, &*t, stage_before, now);
                        t.stage_start = now;
                    }
                }
                env.set_trace_ctx(None);
                vec![]
            }
            Step::Done(result, bytes) => {
                let sess = self.sessions.remove(&sid).expect("present");
                for r in &sess.outstanding {
                    self.req_index.remove(r);
                }
                if let Some(t) = &sess.trace {
                    let now = env.now();
                    Self::record_stage(env, t, stage_before, now);
                    Self::record_op(env, t, sess.started, now);
                }
                env.set_trace_ctx(None);
                vec![Completion {
                    tag: sess.tag,
                    result,
                    started: sess.started,
                    finished: env.now(),
                    bytes,
                }]
            }
        }
    }

    /// Name of the protocol stage a session is currently in.
    fn stage_of(kind: &SessKind) -> &'static str {
        match kind {
            SessKind::Create => "create",
            SessKind::Snapshot(_) => "snapshot",
            SessKind::Decommission(_) => "decommission",
            SessKind::Write(w) => match w.phase {
                WritePhase::Ticket => "ticket",
                WritePhase::Alloc => "alloc",
                WritePhase::Chunks => "chunks",
                WritePhase::MetaResolve => "meta_resolve",
                WritePhase::MetaPut => "meta_put",
                WritePhase::Commit => "commit",
            },
            SessKind::Read(r) => match r.phase {
                ReadPhase::Version => "version",
                ReadPhase::Meta => "meta",
                ReadPhase::Chunks => "chunks",
            },
        }
    }

    /// Close the stage span that just ended (`start` = when the stage
    /// began, kept in the session's [`OpTrace`]).
    fn record_stage(env: &mut dyn Env, t: &OpTrace, stage: &'static str, end: SimTime) {
        let Some(sink) = env.span_sink() else { return };
        sink.record(SpanRecord {
            trace: t.ctx.trace_id,
            span: sink.next_id(),
            parent: t.ctx.span_id,
            service: "client",
            op: stage,
            node: env.id().0 as u64,
            start_ns: t.stage_start.as_nanos(),
            end_ns: end.as_nanos(),
            kind: SpanKind::Stage,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
    }

    /// Close the operation's root span.
    fn record_op(env: &mut dyn Env, t: &OpTrace, started: SimTime, end: SimTime) {
        let Some(sink) = env.span_sink() else { return };
        sink.record(SpanRecord {
            trace: t.ctx.trace_id,
            span: t.ctx.span_id,
            parent: t.ctx.parent,
            service: "client",
            op: t.op,
            node: env.id().0 as u64,
            start_ns: started.as_nanos(),
            end_ns: end.as_nanos(),
            kind: SpanKind::Op,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
    }

    /// One protocol step. Static to sidestep split borrows of `self`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        client: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        next_req: &mut u64,
        req_index: &mut HashMap<u64, (u64, ReqRole)>,
        sid: u64,
        sess: &mut Session,
        role: ReqRole,
        msg: Msg,
        env: &mut dyn Env,
    ) -> Step {
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };

        match &mut sess.kind {
            SessKind::Create => match msg {
                Msg::CreateBlobOk { blob, .. } => Step::Done(Ok(OpOutput::Created(blob)), 0),
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to create")), 0),
            },

            SessKind::Snapshot(blob) => match msg {
                Msg::SnapshotVersionOk { version, .. } => {
                    Step::Done(Ok(OpOutput::Snapshotted { blob: *blob, version }), 0)
                }
                Msg::SnapshotVersionErr { err, .. } => Step::Done(Err(err), 0),
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to snapshot")), 0),
            },

            SessKind::Decommission(blob) => match msg {
                Msg::DecommissionBlobOk { ok, .. } => {
                    Step::Done(Ok(OpOutput::Decommissioned { blob: *blob, ok }), 0)
                }
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to decommission")), 0),
            },

            SessKind::Write(w) => match (std::mem::replace(&mut w.phase, WritePhase::Ticket), msg)
            {
                (WritePhase::Ticket, Msg::TicketOk { ticket, .. }) => {
                    let pages = ticket.interval().len;
                    let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                    env.send(
                        pman,
                        Msg::Alloc {
                            req,
                            client,
                            chunks: pages as u32,
                            replication: ticket.replication,
                            chunk_size: ticket.page_size,
                        },
                    );
                    w.ticket = Some(ticket);
                    w.phase = WritePhase::Alloc;
                    Step::Continue
                }
                (WritePhase::Ticket, Msg::TicketErr { err, .. }) => Step::Done(Err(err), 0),

                (WritePhase::Alloc, Msg::AllocOk { placement, .. }) => {
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let interval = ticket.interval();
                    debug_assert_eq!(placement.len() as u64, interval.len);
                    let page = ticket.page_size;
                    w.chunks = placement
                        .iter()
                        .enumerate()
                        .map(|(i, replicas)| ChunkDescriptor {
                            key: ChunkKey {
                                blob: w.blob,
                                version: ticket.version,
                                page: interval.start + i as u64,
                            },
                            replicas: replicas.clone(),
                            size: page,
                        })
                        .collect();
                    // Group replica stores by target provider (first-seen
                    // order, so the schedule stays deterministic), then
                    // open the in-flight window; each ack refills one
                    // slot, so chunk I/O pipelines across providers while
                    // the client's memory and the number of in-flight
                    // requests stay bounded. A provider holding several of
                    // this write's chunks gets them in one batched round
                    // trip instead of one request per chunk.
                    let mut jobs: Vec<(NodeId, Vec<(ChunkKey, Payload)>)> = Vec::new();
                    for (i, desc) in w.chunks.iter().enumerate() {
                        let slice = w.data.slice(i as u64 * page, page);
                        for replica in &desc.replicas {
                            match jobs.iter_mut().find(|(t, _)| t == replica) {
                                Some((_, items)) => items.push((desc.key, slice.clone())),
                                None => jobs.push((*replica, vec![(desc.key, slice.clone())])),
                            }
                        }
                    }
                    jobs.reverse(); // pop() = next batch, in first-seen order
                    w.pending_puts = jobs;
                    let window = if cfg.chunk_window == 0 { usize::MAX } else { cfg.chunk_window };
                    while sess.outstanding.len() < window {
                        let Some((target, items)) = w.pending_puts.pop() else { break };
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    w.phase = WritePhase::Chunks;
                    Step::Continue
                }
                (WritePhase::Alloc, Msg::AllocErr { available, .. }) => Step::Done(
                    Err(BlobError::AllocationFailed {
                        requested: w.data.len().div_ceil(
                            w.ticket.as_ref().map(|t| t.page_size).unwrap_or(1).max(1),
                        ) as u32,
                        available,
                    }),
                    0,
                ),

                (WritePhase::Chunks, Msg::PutChunkOk { .. }) => {
                    // A slot freed: issue the next queued batch, if any.
                    if let Some((target, items)) = w.pending_puts.pop() {
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    // All replicas stored: build metadata.
                    let ticket = w.ticket.clone().expect("ticket set");
                    let builder = TreeBuilder::new(
                        w.blob,
                        ticket.version,
                        ticket.interval(),
                        ticket.page_size,
                        ticket.new_size,
                        ticket.base,
                        ticket.pending.clone(),
                    );
                    w.builder = Some(builder);
                    Self::write_meta_step(client, meta_providers, meta_cache, &mut fresh, sess, env)
                }
                (WritePhase::Chunks, Msg::PutChunkErr { err, .. }) => {
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    let ReqRole::ChunkPut { target, items, attempts } = role else {
                        return Step::Done(Err(chunk_err(err, client)), 0);
                    };
                    if !cfg.retry.enabled() {
                        return Step::Done(Err(chunk_err(err, client)), 0);
                    }
                    if err != ChunkErr::Full && attempts < cfg.retry.max_attempts {
                        // Same-target retry: register the resend under a
                        // fresh request id; the backoff timer sends it.
                        env.incr("client.rpc_retries", 1);
                        let delay = cfg.retry.backoff(attempts);
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ChunkPut { target, items, attempts: attempts + 1 },
                        );
                        env.set_timer(delay, CLIENT_TIMER_BIT | RETRY_TIMER_BIT | req);
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    // Target exhausted (dead) or full: ask the provider
                    // manager for a replacement placement for these chunks.
                    if w.reallocs < cfg.retry.max_reallocs {
                        w.reallocs += 1;
                        env.incr("client.reallocs", 1);
                        let page = w.ticket.as_ref().map(|t| t.page_size).unwrap_or(0);
                        let chunks = items.len() as u32;
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ReAlloc { failed: target, items },
                        );
                        env.send(
                            pman,
                            Msg::Alloc { req, client, chunks, replication: 1, chunk_size: page },
                        );
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    match items.first() {
                        Some((key, _)) => Step::Done(Err(BlobError::ChunkUnavailable(*key)), 0),
                        None => Step::Done(Err(chunk_err(err, client)), 0),
                    }
                }

                (WritePhase::Chunks, Msg::AllocOk { placement, .. }) => {
                    // A replacement placement arrived for chunk stores
                    // whose target died: patch the descriptor table so the
                    // metadata tree records the replacement replica, then
                    // re-send each chunk to its new home.
                    let ReqRole::ReAlloc { failed, items } = role else {
                        return Step::Done(Err(BlobError::Protocol("unexpected write reply")), 0);
                    };
                    debug_assert_eq!(placement.len(), items.len());
                    let mut jobs: Vec<(NodeId, Vec<(ChunkKey, Payload)>)> = Vec::new();
                    for ((key, data), replicas) in items.into_iter().zip(placement) {
                        let Some(&new_target) = replicas.first() else {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        };
                        if let Some(desc) = w.chunks.iter_mut().find(|d| d.key == key) {
                            for r in &mut desc.replicas {
                                if *r == failed {
                                    *r = new_target;
                                }
                            }
                        }
                        match jobs.iter_mut().find(|(t, _)| *t == new_target) {
                            Some((_, batch)) => batch.push((key, data)),
                            None => jobs.push((new_target, vec![(key, data)])),
                        }
                    }
                    for (target, batch) in jobs {
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            batch,
                            env,
                        );
                    }
                    w.phase = WritePhase::Chunks;
                    Step::Continue
                }
                (WritePhase::Chunks, Msg::AllocErr { available, .. }) => {
                    // No replacement capacity anywhere: total unavailability.
                    if let ReqRole::ReAlloc { items, .. } = role {
                        if let Some((key, _)) = items.first() {
                            return Step::Done(Err(BlobError::ChunkUnavailable(*key)), 0);
                        }
                    }
                    Step::Done(Err(BlobError::AllocationFailed { requested: 0, available }), 0)
                }

                (WritePhase::MetaResolve, Msg::GetMetaOk { nodes, .. }) => {
                    let builder = w.builder.as_mut().expect("builder set");
                    for (k, n) in nodes {
                        match n {
                            Some(node) => {
                                builder.supply(k, &node);
                                meta_cache.insert(k, node);
                            }
                            None => return Step::Done(Err(BlobError::MetaUnavailable), 0),
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::MetaResolve;
                        return Step::Continue;
                    }
                    Self::write_meta_step(client, meta_providers, meta_cache, &mut fresh, sess, env)
                }

                (WritePhase::MetaPut, Msg::PutMetaOk { .. }) => {
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::MetaPut;
                        return Step::Continue;
                    }
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                    env.send(
                        vman,
                        Msg::Commit {
                            req,
                            client,
                            blob: w.blob,
                            version: ticket.version,
                            root: w.root.expect("root set in meta phase"),
                            size: ticket.new_size,
                        },
                    );
                    w.phase = WritePhase::Commit;
                    Step::Continue
                }

                (WritePhase::Commit, Msg::CommitOk { version, .. }) => {
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let bytes = ticket.len;
                    Step::Done(
                        Ok(OpOutput::Written {
                            blob: w.blob,
                            version,
                            offset: ticket.offset,
                            len: ticket.len,
                        }),
                        bytes,
                    )
                }
                (WritePhase::Commit, Msg::TicketErr { err, .. }) => Step::Done(Err(err), 0),

                (_, _) => Step::Done(Err(BlobError::Protocol("unexpected write reply")), 0),
            },

            SessKind::Read(r) => match (std::mem::replace(&mut r.phase, ReadPhase::Version), msg, role)
            {
                (ReadPhase::Version, Msg::GetVersionOk { info, .. }, _) => {
                    if r.len == 0 {
                        let data = if cfg.materialize_zeros {
                            Payload::Data(bytes::Bytes::new())
                        } else {
                            Payload::Sim(0)
                        };
                        return Step::Done(
                            Ok(OpOutput::Read { data, version: info.version }),
                            0,
                        );
                    }
                    if r.offset >= info.size {
                        return Step::Done(
                            Err(BlobError::OutOfBounds {
                                offset: r.offset,
                                len: r.len,
                                size: info.size,
                            }),
                            0,
                        );
                    }
                    let eff_len = r.len.min(info.size - r.offset);
                    r.len = eff_len;
                    let page = info.page_size;
                    r.page0 = r.offset / page;
                    let last = (r.offset + eff_len - 1) / page;
                    let interval = PageInterval::new(r.page0, last - r.page0 + 1);
                    let reader = TreeReader::new(r.blob, info.root, interval);
                    r.parts = (0..interval.len).map(|_| None).collect();
                    r.info = Some(info);
                    r.reader = Some(reader);
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }
                (ReadPhase::Version, Msg::GetVersionErr { err, .. }, _) => Step::Done(Err(err), 0),

                (ReadPhase::Meta, Msg::GetMetaOk { nodes, .. }, _) => {
                    let reader = r.reader.as_mut().expect("reader set");
                    for (k, n) in nodes {
                        match n {
                            Some(node) => {
                                reader.supply(k, &node);
                                meta_cache.insert(k, node);
                            }
                            None => return Step::Done(Err(BlobError::MetaUnavailable), 0),
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        r.phase = ReadPhase::Meta;
                        return Step::Continue;
                    }
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }

                (
                    ReadPhase::Meta,
                    Msg::GetMetaRangeOk { nodes, more, .. },
                    ReqRole::MetaRange { target },
                ) => {
                    // Bulk reply from one provider's slice of the read
                    // path: every node only warms the cache. Correctness
                    // never depends on what the provider chose to send —
                    // the descent re-runs cache-first below and anything
                    // the bulk replies missed falls back to per-node
                    // fetches.
                    let mut last = None;
                    for (k, n) in nodes {
                        last = Some(k.range);
                        meta_cache.insert(k, n);
                    }
                    if more {
                        if let Some(after) = last {
                            let (version, query) = r.range_query();
                            let req =
                                fresh(&mut sess.outstanding, ReqRole::MetaRange { target });
                            env.send(
                                target,
                                Msg::GetMetaRange {
                                    req,
                                    blob: r.blob,
                                    version,
                                    query,
                                    after: Some(after),
                                    max_nodes: cfg.meta_range_max_nodes,
                                },
                            );
                            r.phase = ReadPhase::Meta;
                            return Step::Continue;
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        r.phase = ReadPhase::Meta;
                        return Step::Continue;
                    }
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }

                (ReadPhase::Chunks, Msg::GetChunkOk { data, .. }, ReqRole::ChunkGet { idx, .. }) => {
                    r.parts[idx] = Some(data);
                    // A slot freed: issue the next queued batch, if any.
                    if let Some((target, items)) = r.pending_gets.pop() {
                        Self::issue_chunk_get_batch(
                            client,
                            cfg.chunk_timeout,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    if sess.outstanding.is_empty() {
                        return Self::assemble(sess, cfg.materialize_zeros);
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkBatchOk { items, .. },
                    ReqRole::ChunkGetBatch { target, items: req_items },
                ) => {
                    // Per-item results: store the hits, walk the misses.
                    // This reply disarms the batch's shared deadline;
                    // resubmitted items arm their own per-chunk deadlines.
                    let mut failed: Vec<(usize, ChunkDescriptor)> = Vec::new();
                    for (idx, desc) in req_items {
                        match items.iter().find(|(k, _)| *k == desc.key) {
                            Some((_, Ok(data))) => r.parts[idx] = Some(data.clone()),
                            Some((_, Err(ChunkErr::Blocked))) => {
                                return Step::Done(Err(BlobError::Blocked(client)), 0)
                            }
                            _ => failed.push((idx, desc)),
                        }
                    }
                    for (idx, desc) in failed {
                        let first =
                            desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            1,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                    }
                    if let Some((t, items)) = r.pending_gets.pop() {
                        Self::issue_chunk_get_batch(
                            client,
                            cfg.chunk_timeout,
                            &mut fresh,
                            &mut sess.outstanding,
                            t,
                            items,
                            env,
                        );
                    }
                    if sess.outstanding.is_empty() {
                        return Self::assemble(sess, cfg.materialize_zeros);
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkErr { err, .. },
                    ReqRole::ChunkGetBatch { target, items },
                ) => {
                    // The whole batch failed: the provider refused it, or
                    // its single shared deadline fired. Each item
                    // independently re-enters the per-chunk replica walk
                    // (retries occupy the batch's window slot, so no
                    // refill here).
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    for (idx, desc) in items {
                        let first =
                            desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            1,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkErr { err, .. },
                    ReqRole::ChunkGet { idx, desc, first, attempts, refreshed },
                ) => {
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    if !refreshed {
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            attempts,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                        r.phase = ReadPhase::Chunks;
                        return Step::Continue;
                    }
                    // Post-refresh walk: no second leaf refresh.
                    if attempts < desc.replicas.len() {
                        env.incr("client.replica_walks", 1);
                        let target = desc.replicas[(first + attempts) % desc.replicas.len()];
                        let key = desc.key;
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ChunkGet {
                                idx,
                                desc,
                                first,
                                attempts: attempts + 1,
                                refreshed,
                            },
                        );
                        env.send(target, Msg::GetChunk { req, client, key });
                        env.set_timer(
                            cfg.chunk_timeout,
                            CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req,
                        );
                        r.phase = ReadPhase::Chunks;
                        return Step::Continue;
                    }
                    Step::Done(Err(BlobError::ChunkUnavailable(desc.key)), 0)
                }

                (
                    ReadPhase::Chunks,
                    Msg::GetMetaOk { nodes, .. },
                    ReqRole::LeafRefresh { idx, desc },
                ) => {
                    // The refreshed leaf supersedes the stale cached copy.
                    let mut fresh_desc = None;
                    for (k, n) in nodes {
                        if let Some(MetaNode::Leaf { chunk }) = &n {
                            fresh_desc = Some(chunk.clone());
                            meta_cache.insert(k, n.expect("checked Some"));
                        }
                    }
                    match fresh_desc {
                        Some(chunk) if !chunk.replicas.is_empty() => {
                            Self::issue_chunk_get(
                                client,
                                cfg.chunk_timeout,
                                &mut fresh,
                                &mut sess.outstanding,
                                idx,
                                chunk,
                                true,
                                env,
                            );
                            r.phase = ReadPhase::Chunks;
                            Step::Continue
                        }
                        _ => Step::Done(Err(BlobError::ChunkUnavailable(desc.key)), 0),
                    }
                }

                (_, _, _) => Step::Done(Err(BlobError::Protocol("unexpected read reply")), 0),
            },
        }
    }

    /// Issue the next round of metadata work for a write session: either
    /// more base-tree fetches, or (once resolved) the node stores.
    fn write_meta_step(
        client: ClientId,
        meta_providers: &[NodeId],
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        sess: &mut Session,
        env: &mut dyn Env,
    ) -> Step {
        let SessKind::Write(w) = &mut sess.kind else { unreachable!() };
        let builder = w.builder.as_mut().expect("builder set");
        // Descend as far as the node cache carries us; only go remote for
        // keys the cache cannot serve, and only once no descent advanced.
        while !builder.is_ready() {
            let fetches = builder.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        builder.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                for (target, keys) in group_by_partition(&missing, meta_providers) {
                    let req = fresh(&mut sess.outstanding, ReqRole::MetaGet);
                    env.send(target, Msg::GetMeta { req, keys });
                }
                w.phase = WritePhase::MetaResolve;
                return Step::Continue;
            }
            // Some descent advanced; recompute the frontier before
            // deciding what (if anything) must still be fetched.
        }
        // Resolved: emit nodes and store them.
        let (nodes, root) = builder.build(&w.chunks);
        w.root = Some(root);
        let mut per_provider: HashMap<NodeId, Vec<(NodeKey, MetaNode)>> = HashMap::new();
        for (k, n) in nodes {
            // The writer will likely read (or extend) this version soon:
            // warm the cache with the nodes we just built.
            meta_cache.insert(k, n.clone());
            let target = meta_providers[partition(&k, meta_providers.len())];
            per_provider.entry(target).or_default().push((k, n));
        }
        let mut targets: Vec<NodeId> = per_provider.keys().copied().collect();
        targets.sort();
        for target in targets {
            let nodes = per_provider.remove(&target).expect("present");
            let req = fresh(&mut sess.outstanding, ReqRole::Plain);
            env.send(target, Msg::PutMeta { req, nodes });
        }
        let _ = client;
        w.phase = WritePhase::MetaPut;
        Step::Continue
    }

    /// Issue the next round of metadata fetches for a read session, or
    /// start fetching chunks once the descent completes.
    fn read_meta_step(
        client: ClientId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        sess: &mut Session,
        env: &mut dyn Env,
    ) -> Step {
        let SessKind::Read(r) = &mut sess.kind else { unreachable!() };
        let reader = r.reader.as_mut().expect("reader set");
        // Descend through cached nodes without leaving the client; a warm
        // cache turns the whole level-by-level descent into local work.
        while !reader.is_done() {
            let fetches = reader.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        reader.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                if cfg.meta_range_fetch && !r.range_used {
                    // Cold cache: instead of walking the tree one level
                    // per round trip, ask every metadata provider for its
                    // slice of the read path in one bulk query. Nodes are
                    // hash-partitioned, so no single provider holds a full
                    // root-to-leaf path — the broadcast is still one
                    // logical round trip, replacing O(depth) of them.
                    r.range_used = true;
                    let (version, query) = r.range_query();
                    for target in meta_providers {
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::MetaRange { target: *target },
                        );
                        env.send(
                            *target,
                            Msg::GetMetaRange {
                                req,
                                blob: r.blob,
                                version,
                                query,
                                after: None,
                                max_nodes: cfg.meta_range_max_nodes,
                            },
                        );
                    }
                } else {
                    for (target, keys) in group_by_partition(&missing, meta_providers) {
                        let req = fresh(&mut sess.outstanding, ReqRole::MetaGet);
                        env.send(target, Msg::GetMeta { req, keys });
                    }
                }
                r.phase = ReadPhase::Meta;
                return Step::Continue;
            }
        }
        let reader = r.reader.take().expect("reader set");
        let info = r.info.as_ref().expect("info set");
        let page = info.page_size;
        let sources = reader.into_sources();
        let mut jobs: Vec<(usize, ChunkDescriptor)> = Vec::new();
        for (idx, src) in sources.into_iter().enumerate() {
            match src {
                PageSource::Hole { .. } => {
                    // Holes are stored as size-only placeholders; assembly
                    // turns them into real zero bytes when the read mixes
                    // them with real-data chunks.
                    r.parts[idx] = Some(Payload::Sim(page));
                }
                PageSource::Chunk(desc) if desc.replicas.is_empty() => {
                    // A tombstone leaf written by stalled-write recovery:
                    // the page was never stored, read it as zeros.
                    r.parts[idx] = Some(Payload::Sim(page));
                }
                PageSource::Chunk(desc) => jobs.push((idx, desc)),
            }
        }
        if jobs.is_empty() {
            return Self::assemble(sess, cfg.materialize_zeros);
        }
        // Pick a replica per chunk (one RNG draw each, in page order),
        // group fetches by chosen provider in first-seen order — the
        // schedule stays deterministic — then open the in-flight window;
        // each reply refills one slot. A provider serving several of this
        // read's chunks gets them in one batched round trip instead of
        // one request per chunk.
        let mut groups: Vec<(NodeId, Vec<(usize, ChunkDescriptor)>)> = Vec::new();
        for (idx, desc) in jobs {
            let pick = env.rng().random_range(0..desc.replicas.len());
            let target = desc.replicas[pick];
            match groups.iter_mut().find(|(t, _)| *t == target) {
                Some((_, items)) => items.push((idx, desc)),
                None => groups.push((target, vec![(idx, desc)])),
            }
        }
        groups.reverse(); // pop() = next batch, in first-seen order
        r.pending_gets = groups;
        let window = if cfg.chunk_window == 0 { usize::MAX } else { cfg.chunk_window };
        while sess.outstanding.len() < window {
            let Some((target, items)) = r.pending_gets.pop() else { break };
            Self::issue_chunk_get_batch(
                client,
                cfg.chunk_timeout,
                fresh,
                &mut sess.outstanding,
                target,
                items,
                env,
            );
        }
        r.phase = ReadPhase::Chunks;
        Step::Continue
    }

    /// Send one provider's queued chunk stores: a lone chunk as a plain
    /// `PutChunk`, several as one `PutChunkBatch` round trip. The items
    /// are kept in the request's role so an enabled [`RetryPolicy`] can
    /// re-send them (payloads are refcounted views — no data is copied);
    /// the policy also arms the per-RPC deadline here.
    fn issue_chunk_put(
        client: ClientId,
        retry: RetryPolicy,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        target: NodeId,
        items: Vec<(ChunkKey, Payload)>,
        env: &mut dyn Env,
    ) {
        let req = fresh(
            outstanding,
            ReqRole::ChunkPut { target, items: items.clone(), attempts: 1 },
        );
        if items.len() == 1 {
            let (key, data) = items.into_iter().next().expect("one item");
            env.send(target, Msg::PutChunk { req, client, key, data });
        } else {
            env.send(target, Msg::PutChunkBatch { req, client, items });
        }
        if retry.enabled() {
            env.set_timer(retry.put_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
        }
    }

    /// Send one chunk fetch to a randomly chosen replica, arming the
    /// per-chunk failover timer.
    #[allow(clippy::too_many_arguments)]
    fn issue_chunk_get(
        client: ClientId,
        chunk_timeout: SimDuration,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        idx: usize,
        desc: ChunkDescriptor,
        refreshed: bool,
        env: &mut dyn Env,
    ) {
        let first = env.rng().random_range(0..desc.replicas.len());
        let target = desc.replicas[first];
        let key = desc.key;
        let req = fresh(
            outstanding,
            ReqRole::ChunkGet { idx, desc, first, attempts: 1, refreshed },
        );
        env.send(target, Msg::GetChunk { req, client, key });
        env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Send one provider's queued chunk fetches: a lone chunk as a plain
    /// `GetChunk` (classic per-chunk replica walk), several as one
    /// `GetChunkBatch` round trip. One deadline guards the whole batch;
    /// items that fail or go unanswered re-enter the per-chunk walk
    /// individually, each arming its own deadline.
    fn issue_chunk_get_batch(
        client: ClientId,
        chunk_timeout: SimDuration,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        target: NodeId,
        items: Vec<(usize, ChunkDescriptor)>,
        env: &mut dyn Env,
    ) {
        if items.len() == 1 {
            let (idx, desc) = items.into_iter().next().expect("one item");
            let first = desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
            let key = desc.key;
            let req = fresh(
                outstanding,
                ReqRole::ChunkGet { idx, desc, first, attempts: 1, refreshed: false },
            );
            env.send(target, Msg::GetChunk { req, client, key });
            env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
            return;
        }
        let keys: Vec<ChunkKey> = items.iter().map(|(_, d)| d.key).collect();
        let req = fresh(outstanding, ReqRole::ChunkGetBatch { target, items });
        env.send(target, Msg::GetChunkBatch { req, client, keys });
        env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Walk a failed chunk fetch to the next replica (arming a fresh
    /// per-chunk deadline) or — once every replica was tried — re-fetch
    /// the chunk's leaf in case a replication repair moved it. `Err(key)`
    /// means the chunk is unavailable and the read must fail.
    #[allow(clippy::too_many_arguments)]
    fn failover_chunk_get(
        client: ClientId,
        cfg: ClientConfig,
        meta_providers: &[NodeId],
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        idx: usize,
        desc: ChunkDescriptor,
        first: usize,
        attempts: usize,
        env: &mut dyn Env,
    ) -> Result<(), ChunkKey> {
        if attempts < desc.replicas.len() {
            env.incr("client.replica_walks", 1);
            let target = desc.replicas[(first + attempts) % desc.replicas.len()];
            let key = desc.key;
            let req = fresh(
                outstanding,
                ReqRole::ChunkGet { idx, desc, first, attempts: attempts + 1, refreshed: false },
            );
            env.send(target, Msg::GetChunk { req, client, key });
            env.set_timer(cfg.chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
            return Ok(());
        }
        if cfg.retry.enabled() {
            // Degraded read: every known replica failed, but a replication
            // repair may have patched the leaf with fresh replicas since
            // this descent cached it. Re-fetch the leaf directly
            // (bypassing the cache) and retry against whatever placement
            // it records.
            let key = NodeKey {
                blob: desc.key.blob,
                version: desc.key.version,
                range: NodeRange::new(desc.key.page, 1),
            };
            let owner = meta_providers[partition(&key, meta_providers.len())];
            let req = fresh(outstanding, ReqRole::LeafRefresh { idx, desc });
            env.send(owner, Msg::GetMeta { req, keys: vec![key] });
            return Ok(());
        }
        Err(desc.key)
    }

    /// All parts present: splice the requested byte range out of the page
    /// row and complete the read.
    fn assemble(sess: &mut Session, materialize_zeros: bool) -> Step {
        let SessKind::Read(r) = &mut sess.kind else { unreachable!() };
        let info = r.info.as_ref().expect("info set");
        let page = info.page_size;
        let skip = r.offset - r.page0 * page;
        let total = r.len;
        // Zero-copy fast path: a range inside a single real-data page is
        // served as a refcounted sub-slice of the stored chunk — no copy
        // from provider buffer to client buffer anywhere on the path.
        if r.parts.len() == 1 {
            if let Some(Payload::Data(b)) = &r.parts[0] {
                if (skip + total) as usize <= b.len() {
                    let data = Payload::Data(b.slice(skip as usize..(skip + total) as usize));
                    return Step::Done(
                        Ok(OpOutput::Read { data, version: info.version }),
                        total,
                    );
                }
            }
        }
        // Real bytes iff every non-hole part carries real bytes and the
        // deployment stores real data; holes become zero bytes then.
        let any_real = r.parts.iter().flatten().any(|p| matches!(p, Payload::Data(_)));
        let data = if any_real || materialize_zeros {
            let mut buf = BytesMut::with_capacity(total as usize);
            let mut remaining = total;
            let mut offset_in_part = skip;
            for part in r.parts.iter().flatten() {
                if remaining == 0 {
                    break;
                }
                let avail = page - offset_in_part;
                let take = avail.min(remaining);
                match part {
                    Payload::Data(b) => {
                        let s = offset_in_part as usize;
                        let e = ((offset_in_part + take) as usize).min(b.len());
                        if s < b.len() {
                            buf.extend_from_slice(&b[s..e]);
                        }
                        // Chunks are always full pages; pad defensively.
                        let got = e.saturating_sub(s) as u64;
                        if got < take {
                            buf.extend(std::iter::repeat_n(0u8, (take - got) as usize));
                        }
                    }
                    Payload::Sim(_) => {
                        buf.extend(std::iter::repeat_n(0u8, take as usize));
                    }
                }
                remaining -= take;
                offset_in_part = 0;
            }
            Payload::Data(buf.freeze())
        } else {
            Payload::Sim(total)
        };
        let version = info.version;
        let bytes = total;
        Step::Done(Ok(OpOutput::Read { data, version }), bytes)
    }
}

enum Step {
    Continue,
    Done(Result<OpOutput, BlobError>, u64),
}

/// Extract the correlation id of a reply message.
fn req_of(msg: &Msg) -> Option<u64> {
    Some(match msg {
        Msg::AllocOk { req, .. }
        | Msg::AllocErr { req, .. }
        | Msg::Directory { req, .. }
        | Msg::PutChunkOk { req }
        | Msg::PutChunkErr { req, .. }
        | Msg::GetChunkOk { req, .. }
        | Msg::GetChunkErr { req, .. }
        | Msg::GetChunkBatchOk { req, .. }
        | Msg::GetMetaRangeOk { req, .. }
        | Msg::DeleteChunkOk { req, .. }
        | Msg::PutMetaOk { req }
        | Msg::GetMetaOk { req, .. }
        | Msg::DeleteMetaOk { req, .. }
        | Msg::CreateBlobOk { req, .. }
        | Msg::SnapshotVersionOk { req, .. }
        | Msg::SnapshotVersionErr { req, .. }
        | Msg::DecommissionBlobOk { req, .. }
        | Msg::TicketOk { req, .. }
        | Msg::TicketErr { req, .. }
        | Msg::CommitOk { req, .. }
        | Msg::GetVersionOk { req, .. }
        | Msg::GetVersionErr { req, .. } => *req,
        _ => return None,
    })
}

fn chunk_err(err: ChunkErr, client: ClientId) -> BlobError {
    match err {
        ChunkErr::Blocked => BlobError::Blocked(client),
        ChunkErr::Full => BlobError::ProviderFull,
        ChunkErr::NotFound => BlobError::Protocol("put got NotFound"),
        ChunkErr::Unreachable => BlobError::Timeout,
    }
}

/// Group metadata keys by their owning provider.
fn group_by_partition(
    keys: &[NodeKey],
    meta_providers: &[NodeId],
) -> Vec<(NodeId, Vec<NodeKey>)> {
    let mut map: HashMap<NodeId, Vec<NodeKey>> = HashMap::new();
    for k in keys {
        let target = meta_providers[partition(k, meta_providers.len())];
        map.entry(target).or_default().push(*k);
    }
    let mut out: Vec<(NodeId, Vec<NodeKey>)> = map.into_iter().collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Number of chunks a write of `len` bytes needs at the given page size.
pub fn chunks_for_write(len: u64, page_size: u64) -> u64 {
    pages_for(len, page_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{MetaNode, NodeRange, NodeRef};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct TestEnv {
        now: SimTime,
        sent: Vec<(NodeId, Msg)>,
        timers: Vec<(SimDuration, u64)>,
        rng: SmallRng,
    }

    impl TestEnv {
        fn new() -> Self {
            TestEnv {
                now: SimTime::ZERO,
                sent: vec![],
                timers: vec![],
                rng: SmallRng::seed_from_u64(0),
            }
        }
        fn take_sent(&mut self) -> Vec<(NodeId, Msg)> {
            std::mem::take(&mut self.sent)
        }
    }

    impl Env for TestEnv {
        fn id(&self) -> NodeId {
            NodeId(0)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: NodeId, msg: Msg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, delay: SimDuration, token: u64) {
            self.timers.push((delay, token));
        }
        fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    const VMAN: NodeId = NodeId(1);
    const PMAN: NodeId = NodeId(2);
    const META: NodeId = NodeId(3);
    const PROV_A: NodeId = NodeId(10);
    const PROV_B: NodeId = NodeId(11);

    fn core() -> ClientCore {
        ClientCore::new(ClientId(7), VMAN, PMAN, vec![META], ClientConfig::default())
    }

    #[test]
    fn create_roundtrip() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(&mut env, ClientOp::Create { spec: BlobSpec::default() }, 42);
        let (to, msg) = env.take_sent().pop().expect("create sent");
        assert_eq!(to, VMAN);
        let Msg::CreateBlob { req, .. } = msg else { panic!("wrong msg {msg:?}") };
        let done = c.handle_msg(&mut env, VMAN, Msg::CreateBlobOk { req, blob: BlobId(5) });
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 42);
        assert_eq!(done[0].result.as_ref().unwrap(), &OpOutput::Created(BlobId(5)));
        assert_eq!(c.active_ops(), 0);
    }

    #[test]
    fn snapshot_and_decommission_round_trips() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(&mut env, ClientOp::Snapshot { blob: BlobId(5), version: None }, 1);
        let (to, msg) = env.take_sent().pop().expect("snapshot sent");
        assert_eq!(to, VMAN);
        let Msg::SnapshotVersion { req, version: None, .. } = msg else { panic!("{msg:?}") };
        let done =
            c.handle_msg(&mut env, VMAN, Msg::SnapshotVersionOk { req, version: VersionId(3) });
        assert_eq!(
            done[0].result.as_ref().unwrap(),
            &OpOutput::Snapshotted { blob: BlobId(5), version: VersionId(3) }
        );

        c.start_op(&mut env, ClientOp::Decommission { blob: BlobId(5) }, 2);
        let (to, msg) = env.take_sent().pop().expect("decommission sent");
        assert_eq!(to, VMAN);
        let Msg::DecommissionBlob { req, .. } = msg else { panic!("{msg:?}") };
        let done = c.handle_msg(&mut env, VMAN, Msg::DecommissionBlobOk { req, ok: true });
        assert_eq!(
            done[0].result.as_ref().unwrap(),
            &OpOutput::Decommissioned { blob: BlobId(5), ok: true }
        );
        assert_eq!(c.active_ops(), 0);
    }

    #[test]
    fn snapshot_of_unknown_version_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Snapshot { blob: BlobId(5), version: Some(VersionId(9)) },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::SnapshotVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::SnapshotVersionErr {
                req,
                err: BlobError::UnknownVersion(BlobId(5), VersionId(9)),
            },
        );
        assert!(matches!(done[0].result, Err(BlobError::UnknownVersion(..))));
    }

    #[test]
    fn ticket_error_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Write {
                blob: BlobId(5),
                kind: WriteKind::Append,
                data: Payload::Sim(16),
            },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::Ticket { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::TicketErr { req, err: BlobError::Blocked(ClientId(7)) },
        );
        assert!(matches!(done[0].result, Err(BlobError::Blocked(_))));
    }

    #[test]
    fn allocation_failure_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Write { blob: BlobId(5), kind: WriteKind::At(0), data: Payload::Sim(16) },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::Ticket { req, .. } = msg else { panic!() };
        let ticket = WriteTicket {
            blob: BlobId(5),
            version: VersionId(1),
            offset: 0,
            len: 16,
            page_size: 8,
            replication: 3,
            new_size: 16,
            base: crate::meta::BaseSnapshot { version: VersionId(0), size: 0, root: None },
            pending: vec![],
        };
        assert!(c.handle_msg(&mut env, VMAN, Msg::TicketOk { req, ticket }).is_empty());
        let (to, msg) = env.take_sent().pop().unwrap();
        assert_eq!(to, PMAN);
        let Msg::Alloc { req, chunks, replication, .. } = msg else { panic!() };
        assert_eq!((chunks, replication), (2, 3));
        let done = c.handle_msg(&mut env, PMAN, Msg::AllocErr { req, available: 2 });
        assert!(matches!(done[0].result, Err(BlobError::AllocationFailed { available: 2, .. })));
    }

    #[test]
    fn op_timeout_fires_and_completes_with_error() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 8 },
            9,
        );
        // The op-deadline timer was armed.
        let (delay, token) = env.timers[0];
        assert_eq!(delay, ClientConfig::default().op_timeout);
        assert!(ClientCore::owns_timer(token));
        env.now = SimTime(1);
        let done = c.handle_timer(&mut env, token);
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0].result, Err(BlobError::Timeout)));
        assert_eq!(c.active_ops(), 0);
        // A stale reply afterwards is ignored.
        assert!(c.handle_msg(&mut env, VMAN, Msg::GetVersionErr {
            req: 1,
            err: BlobError::UnknownBlob(BlobId(5)),
        })
        .is_empty());
    }

    #[test]
    fn read_fails_over_to_next_replica_on_chunk_timeout() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 8 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        // One-page blob whose root is a leaf with two replicas.
        let root = NodeRef::Node { version: VersionId(1), range: NodeRange::new(0, 1) };
        assert!(c
            .handle_msg(
                &mut env,
                VMAN,
                Msg::GetVersionOk {
                    req,
                    info: VersionInfo {
                        version: VersionId(1),
                        size: 8,
                        page_size: 8,
                        root: Some(root),
                    },
                },
            )
            .is_empty());
        // Cold cache: one bulk range query replaces the per-level fetch.
        let (to, msg) = env.take_sent().pop().unwrap();
        assert_eq!(to, META);
        let Msg::GetMetaRange { req, .. } = msg else { panic!("{msg:?}") };
        let leaf = MetaNode::Leaf {
            chunk: ChunkDescriptor {
                key: ChunkKey { blob: BlobId(5), version: VersionId(1), page: 0 },
                replicas: vec![PROV_A, PROV_B],
                size: 8,
            },
        };
        let leaf_key = NodeKey {
            blob: BlobId(5),
            version: VersionId(1),
            range: NodeRange::new(0, 1),
        };
        assert!(c
            .handle_msg(
                &mut env,
                META,
                Msg::GetMetaRangeOk { req, nodes: vec![(leaf_key, leaf)], more: false },
            )
            .is_empty());
        // A chunk fetch went out to one replica, with a failover timer.
        let (first_target, msg) = env.take_sent().pop().unwrap();
        assert!(first_target == PROV_A || first_target == PROV_B);
        let Msg::GetChunk { .. } = msg else { panic!("{msg:?}") };
        let (_, token) = *env.timers.last().unwrap();
        assert!(ClientCore::owns_timer(token));
        // The replica never answers: the chunk timer fires and the client
        // retries another replica.
        assert!(c.handle_timer(&mut env, token).is_empty());
        let (second_target, msg) = env.take_sent().pop().unwrap();
        let Msg::GetChunk { req, .. } = msg else { panic!("{msg:?}") };
        assert_ne!(second_target, first_target, "failover goes to the other replica");
        // That one answers: the read completes.
        let done =
            c.handle_msg(&mut env, second_target, Msg::GetChunkOk { req, data: Payload::Sim(8) });
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, version }) = &done[0].result else {
            panic!("{:?}", done[0].result)
        };
        assert_eq!(data.len(), 8);
        assert_eq!(*version, VersionId(1));
    }

    /// Build (locally) the stored tree of a `pages`-page blob at version
    /// 1, every chunk placed on `replicas` — exactly the node set a
    /// writer would have put to the metadata providers.
    fn stored_tree(
        pages: u64,
        page: u64,
        replicas: Vec<NodeId>,
    ) -> (Vec<(NodeKey, MetaNode)>, NodeRef) {
        let chunks: Vec<ChunkDescriptor> = (0..pages)
            .map(|p| ChunkDescriptor {
                key: ChunkKey { blob: BlobId(5), version: VersionId(1), page: p },
                replicas: replicas.clone(),
                size: page,
            })
            .collect();
        let builder = crate::meta::TreeBuilder::new(
            BlobId(5),
            VersionId(1),
            PageInterval::new(0, pages),
            page,
            pages * page,
            crate::meta::BaseSnapshot { version: VersionId(0), size: 0, root: None },
            vec![],
        );
        assert!(builder.is_ready(), "no base tree to resolve");
        builder.build(&chunks)
    }

    /// Drive a fresh read op through GetVersion and the cold-cache bulk
    /// metadata exchange; returns with the chunk fetches just sent.
    fn open_read(
        c: &mut ClientCore,
        env: &mut TestEnv,
        pages: u64,
        page: u64,
        nodes: Vec<(NodeKey, MetaNode)>,
        root: NodeRef,
    ) {
        c.start_op(
            env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: pages * page },
            9,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        assert!(c
            .handle_msg(
                env,
                VMAN,
                Msg::GetVersionOk {
                    req,
                    info: VersionInfo {
                        version: VersionId(1),
                        size: pages * page,
                        page_size: page,
                        root: Some(root),
                    },
                },
            )
            .is_empty());
        // Cold cache: exactly one bulk range query per metadata provider
        // (the test ring has one) and no per-node GetMeta at all.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "one logical metadata round trip: {sent:?}");
        let (to, msg) = sent.into_iter().next().unwrap();
        assert_eq!(to, META);
        let Msg::GetMetaRange { req, query, .. } = msg else { panic!("{msg:?}") };
        assert_eq!(query, PageInterval::new(0, pages));
        assert!(c
            .handle_msg(env, META, Msg::GetMetaRangeOk { req, nodes, more: false })
            .is_empty());
    }

    #[test]
    fn cold_read_uses_one_meta_round_trip_and_one_chunk_batch() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (16u64, 8u64);
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        // All 16 chunks live on one provider: a single batched fetch
        // replaces 16 per-chunk round trips.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "one batched chunk round trip: {sent:?}");
        let (to, msg) = sent.into_iter().next().unwrap();
        assert_eq!(to, PROV_A);
        let Msg::GetChunkBatch { req, keys, .. } = msg else { panic!("{msg:?}") };
        assert_eq!(keys.len(), pages as usize);
        let items = keys.iter().map(|k| (*k, Ok(Payload::Sim(page)))).collect();
        let done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkBatchOk { req, items });
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, version }) = &done[0].result else {
            panic!("{:?}", done[0].result)
        };
        assert_eq!(data.len(), pages * page);
        assert_eq!(*version, VersionId(1));
    }

    #[test]
    fn batch_timeout_resubmits_each_item_individually() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (2u64, 8u64);
        // Both replicas on the same provider: the batch has one possible
        // target, and the per-item walk still has somewhere to go.
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A, PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        // One batch, guarded by one shared deadline.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "{sent:?}");
        let Msg::GetChunkBatch { keys, .. } = &sent[0].1 else { panic!("{:?}", sent[0].1) };
        assert_eq!(keys.len(), 2);
        let timers_before = env.timers.len();
        let (_, token) = *env.timers.last().unwrap();
        assert!(ClientCore::owns_timer(token));
        // The provider never answers: the batch deadline fires once and
        // every item re-enters the per-chunk replica walk on its own.
        assert!(c.handle_timer(&mut env, token).is_empty());
        let sent = env.take_sent();
        assert_eq!(sent.len(), 2, "per-item resubmission: {sent:?}");
        let reqs: Vec<u64> = sent
            .iter()
            .map(|(to, m)| {
                assert_eq!(*to, PROV_A);
                let Msg::GetChunk { req, .. } = m else { panic!("{m:?}") };
                *req
            })
            .collect();
        assert_eq!(
            env.timers.len(),
            timers_before + 2,
            "each resubmission arms its own deadline"
        );
        let mut done = vec![];
        for req in reqs {
            done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkOk { req, data: Payload::Sim(page) });
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].result.is_ok(), "{:?}", done[0].result);
    }

    #[test]
    fn partial_batch_failure_retries_only_the_missing_item() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (2u64, 8u64);
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A, PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        let sent = env.take_sent();
        let (_, Msg::GetChunkBatch { req, keys, .. }) = sent.into_iter().next().unwrap() else {
            panic!()
        };
        // One hit, one per-item miss: only the miss is retried.
        let items = vec![
            (keys[0], Ok(Payload::Sim(page))),
            (keys[1], Err(ChunkErr::NotFound)),
        ];
        assert!(c.handle_msg(&mut env, PROV_A, Msg::GetChunkBatchOk { req, items }).is_empty());
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "{sent:?}");
        let (to, Msg::GetChunk { req, key, .. }) = sent.into_iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(to, PROV_A);
        assert_eq!(key, keys[1]);
        let done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkOk { req, data: Payload::Sim(page) });
        assert_eq!(done.len(), 1);
        assert!(done[0].result.is_ok(), "{:?}", done[0].result);
    }

    #[test]
    fn read_of_out_of_bounds_offset_errors() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 100, len: 8 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::GetVersionOk {
                req,
                info: VersionInfo {
                    version: VersionId(1),
                    size: 8,
                    page_size: 8,
                    root: None,
                },
            },
        );
        assert!(matches!(done[0].result, Err(BlobError::OutOfBounds { .. })));
    }

    #[test]
    fn zero_length_read_completes_immediately() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 0 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::GetVersionOk {
                req,
                info: VersionInfo {
                    version: VersionId(2),
                    size: 8,
                    page_size: 8,
                    root: None,
                },
            },
        );
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, .. }) = &done[0].result else { panic!() };
        assert_eq!(data.len(), 0);
    }

    #[test]
    fn replies_from_unknown_requests_are_ignored() {
        let mut env = TestEnv::new();
        let mut c = core();
        assert!(c.handle_msg(&mut env, VMAN, Msg::PutChunkOk { req: 999 }).is_empty());
        assert!(c
            .handle_msg(&mut env, VMAN, Msg::CreateBlobOk { req: 1, blob: BlobId(1) })
            .is_empty());
    }
}
