//! The BlobSeer client: protocol state machines for `create`, `write`,
//! `append` and `read`, written as a resumable core ([`ClientCore`]) that
//! both runtimes embed.
//!
//! A write proceeds through six phases, mirroring the real BlobSeer
//! protocol: obtain a ticket from the version manager → obtain chunk
//! placements from the provider manager → store chunk replicas on the data
//! providers (all in parallel) → resolve the untouched-subtree references
//! against the published metadata (O(log n) reads) → store the new tree
//! nodes on the metadata providers → commit to the version manager, which
//! acknowledges once the version publishes in order.

use std::collections::{HashMap, HashSet};

use bytes::BytesMut;
use rand::Rng;
use sads_sim::{NodeId, SimDuration, SimTime, SpanClass, SpanKind, SpanRecord, TraceCtx};

use crate::meta::{
    partition, MetaNode, NodeKey, NodeRange, PageSource, TreeBuilder, TreeReader,
};
use crate::model::{
    pages_for, BlobError, BlobId, BlobSpec, ChunkDescriptor, ChunkKey, ClientId, PageInterval,
    Payload, VersionId, VersionInfo,
};
use crate::rpc::{ChunkErr, Msg};
use crate::services::Env;
use crate::vmanager::{WriteKind, WriteTicket};

/// Bit set on every timer token owned by the client core, so embedding
/// actors can route timers.
pub const CLIENT_TIMER_BIT: u64 = 1 << 63;

/// Secondary namespace bit: per-chunk-RPC deadline tokens (the low bits
/// carry the request id).
const CHUNK_TIMEOUT_BIT: u64 = 1 << 62;

/// Secondary namespace bit: deferred-resend tokens armed by the
/// exponential-backoff retry path (the low bits carry the request id of
/// the resend that fires when the timer does).
const RETRY_TIMER_BIT: u64 = 1 << 61;

/// An operation a client can perform.
#[derive(Debug)]
pub enum ClientOp {
    /// Create a new BLOB.
    Create {
        /// BLOB parameters.
        spec: BlobSpec,
    },
    /// Write (or append) data. Offsets and lengths must be multiples of
    /// the BLOB page size.
    Write {
        /// Target BLOB.
        blob: BlobId,
        /// Offset or append.
        kind: WriteKind,
        /// Data (real bytes or simulated length).
        data: Payload,
    },
    /// Read a byte range of a version (latest if `version` is `None`).
    Read {
        /// Target BLOB.
        blob: BlobId,
        /// Version to read, or latest.
        version: Option<VersionId>,
        /// Byte offset.
        offset: u64,
        /// Byte length (clamped to the version size).
        len: u64,
    },
    /// Pin a version as a snapshot (latest if `version` is `None`). A
    /// metadata-only O(1) operation: the pinned version becomes a GC
    /// root, its segment tree is shared, never copied.
    Snapshot {
        /// Target BLOB.
        blob: BlobId,
        /// Version to pin, or latest.
        version: Option<VersionId>,
    },
    /// Decommission a BLOB: unpin every snapshot and mark the whole
    /// version history reclaimable by the lifecycle sweeper.
    Decommission {
        /// Target BLOB.
        blob: BlobId,
    },
    /// Open a streaming write of `len` bytes (declared up front: the
    /// ticket pre-assigns the version and the page range). Completes with
    /// [`OpOutput::WriteStreamOpened`] once ticket + placements are held;
    /// the stream then accepts [`ClientOp::FeedWriteStream`] calls.
    OpenWriteStream {
        /// Target BLOB.
        blob: BlobId,
        /// Offset or append.
        kind: WriteKind,
        /// Total byte length that will be fed (page-aligned).
        len: u64,
    },
    /// Push bytes into an open write stream. Completes (with
    /// [`OpOutput::Fed`]) only once the stream has window headroom for
    /// the *next* feed — this completion is the backpressure signal that
    /// bounds buffered bytes at `chunk_window × page_size`.
    FeedWriteStream {
        /// Stream id from [`OpOutput::WriteStreamOpened`].
        stream: u64,
        /// Bytes to append to the stream (at most one page per feed to
        /// keep the memory bound exact).
        data: Payload,
    },
    /// Publish an open write stream: drains in-flight chunks, writes the
    /// metadata tree, commits at the version manager. Completes with
    /// [`OpOutput::Written`]. Every declared byte must have been fed.
    CommitWriteStream {
        /// Stream id.
        stream: u64,
    },
    /// Abandon an open write stream without publishing. Already-stored
    /// chunks are reclaimed by the version manager's stalled-write
    /// recovery and the lifecycle sweeper.
    AbortWriteStream {
        /// Stream id.
        stream: u64,
    },
    /// Open a streaming read of a byte range (latest version if `None`).
    /// Completes with [`OpOutput::ReadStreamOpened`] once the metadata
    /// descent resolved the chunk plan; data then arrives window-by-window
    /// via [`ClientOp::ReadStreamNext`].
    OpenReadStream {
        /// Target BLOB.
        blob: BlobId,
        /// Version to read, or latest.
        version: Option<VersionId>,
        /// Byte offset.
        offset: u64,
        /// Byte length (clamped to the version size).
        len: u64,
    },
    /// Pull the next window of bytes from an open read stream. Completes
    /// with [`OpOutput::ReadChunk`]; at most `chunk_window` pages are in
    /// client memory at any point. The stream closes itself when the
    /// chunk carrying `eof = true` is delivered.
    ReadStreamNext {
        /// Stream id from [`OpOutput::ReadStreamOpened`].
        stream: u64,
    },
    /// Close a read stream early (before `eof`).
    CloseReadStream {
        /// Stream id.
        stream: u64,
    },
}

/// Successful operation output.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// BLOB created.
    Created(BlobId),
    /// Write published.
    Written {
        /// Target BLOB.
        blob: BlobId,
        /// The published version.
        version: VersionId,
        /// Byte offset written.
        offset: u64,
        /// Byte length written.
        len: u64,
    },
    /// Read finished.
    Read {
        /// Assembled data (zeros for holes; `Payload::Sim` in simulation).
        data: Payload,
        /// The version that was read.
        version: VersionId,
    },
    /// Snapshot pinned.
    Snapshotted {
        /// Target BLOB.
        blob: BlobId,
        /// The pinned version.
        version: VersionId,
    },
    /// BLOB decommissioned (`false` = refused, e.g. blocked client).
    Decommissioned {
        /// Target BLOB.
        blob: BlobId,
        /// Whether the version manager accepted.
        ok: bool,
    },
    /// A write stream is open and accepting feeds.
    WriteStreamOpened {
        /// Stream id for subsequent feed/commit/abort ops.
        stream: u64,
        /// The version the commit will publish.
        version: VersionId,
        /// Byte offset the stream writes at.
        offset: u64,
        /// Declared byte length.
        len: u64,
        /// BLOB page size (the stream's chunk size).
        page_size: u64,
    },
    /// A feed was absorbed and the stream has headroom for the next one.
    Fed {
        /// Stream id.
        stream: u64,
    },
    /// A read stream is open; its chunk plan is resolved.
    ReadStreamOpened {
        /// Stream id for subsequent next/close ops.
        stream: u64,
        /// The version being read.
        version: VersionId,
        /// Effective (clamped) byte length the stream will deliver.
        len: u64,
        /// BLOB page size (the stream's chunk size).
        page_size: u64,
    },
    /// One window of streamed read data.
    ReadChunk {
        /// Stream id.
        stream: u64,
        /// The bytes (zeros for holes; `Payload::Sim` in simulation).
        data: Payload,
        /// True on the final chunk; the stream is closed after this.
        eof: bool,
    },
    /// A stream was closed (abort or explicit close).
    StreamClosed {
        /// Stream id.
        stream: u64,
    },
}

/// A finished operation, successful or not.
#[derive(Debug)]
pub struct Completion {
    /// Caller-chosen tag from `start_op`.
    pub tag: u64,
    /// Outcome.
    pub result: Result<OpOutput, BlobError>,
    /// When the op started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Payload bytes moved (0 for create / failures).
    pub bytes: u64,
}

impl Completion {
    /// Throughput in MB/s (payload bytes over op duration), or 0.
    pub fn throughput_mbps(&self) -> f64 {
        let secs = self.finished.since(self.started).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }
}

/// Fault-tolerance policy for chunk-store RPCs.
///
/// With the policy [disabled](RetryPolicy::disabled) (the default) the
/// client behaves exactly as before this knob existed: chunk stores carry
/// no per-request deadline and any `PutChunkErr` fails the operation. An
/// [enabled](RetryPolicy::standard) policy arms a deadline on every
/// chunk store; a timed-out or refused store is re-sent to the *same*
/// provider after a bounded exponential backoff (`backoff_base · 2ᵏ`,
/// capped at `backoff_max`), and once `max_attempts` sends are exhausted
/// — or the provider reports `Full` — the client asks the provider
/// manager for a replacement placement and re-sends there instead
/// (bounded by `max_reallocs` per write).
///
/// Retries are safe because request ids correlate, never apply: a chunk
/// put is idempotent at the provider (keyed by [`ChunkKey`], an existing
/// key is kept and never double-charged), so a duplicate arrival — e.g.
/// the original slow ack racing a retransmission — cannot double-apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for one chunk-store RPC attempt.
    pub put_timeout: SimDuration,
    /// Maximum sends per target provider (1 = no same-target retry).
    /// `0` disables the whole policy.
    pub max_attempts: u32,
    /// Backoff before the k-th retry is `backoff_base · 2^(k-1)` …
    pub backoff_base: SimDuration,
    /// … capped at this value.
    pub backoff_max: SimDuration,
    /// How many times one write may fall back to the provider manager
    /// for a replacement placement before giving up.
    pub max_reallocs: u32,
}

impl RetryPolicy {
    /// No deadlines, no retries — the pre-fault-layer behavior, and the
    /// default (so fault-free runs are bit-identical with the policy
    /// merely present).
    pub const fn disabled() -> Self {
        RetryPolicy {
            put_timeout: SimDuration::ZERO,
            max_attempts: 0,
            backoff_base: SimDuration::ZERO,
            backoff_max: SimDuration::ZERO,
            max_reallocs: 0,
        }
    }

    /// A sane enabled policy: 10 s put deadline, 3 attempts per target
    /// with 500 ms → 8 s backoff, up to 4 re-allocations per write.
    pub const fn standard() -> Self {
        RetryPolicy {
            put_timeout: SimDuration::from_secs(10),
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(500),
            backoff_max: SimDuration::from_secs(8),
            max_reallocs: 4,
        }
    }

    /// Is any retry machinery active?
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Backoff before retry number `attempts` (1-based attempts so far).
    fn backoff(&self, attempts: u32) -> SimDuration {
        let shift = attempts.saturating_sub(1).min(16);
        self.backoff_base.saturating_mul(1u64 << shift).min(self.backoff_max)
    }
}

/// Client tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Per-operation deadline; the op fails with `Timeout` past it.
    pub op_timeout: SimDuration,
    /// Per-chunk-fetch deadline: an unresponsive replica (crashed or
    /// drowning in backlog) triggers failover to the next replica.
    pub chunk_timeout: SimDuration,
    /// Real-data deployments set this so reads always materialize actual
    /// zero bytes for holes (simulated deployments keep size-only
    /// payloads).
    pub materialize_zeros: bool,
    /// Maximum chunk transfers (puts or gets) in flight per operation.
    /// Completed transfers refill the window from the pending queue, so
    /// chunk I/O to distinct providers pipelines while memory and provider
    /// backlog stay bounded. `0` means unbounded (burst everything).
    pub chunk_window: usize,
    /// Capacity (node count) of the client-side metadata-node cache.
    /// Metadata nodes are immutable once published, so cached nodes are
    /// never stale; hits skip whole rounds of the tree descent. `0`
    /// disables the cache.
    pub meta_cache_nodes: usize,
    /// Chunk-RPC fault tolerance (deadlines, backoff, re-allocation and
    /// degraded-read placement refresh). Disabled by default.
    pub retry: RetryPolicy,
    /// Cold-cache reads open the metadata descent with one bulk
    /// [`Msg::GetMetaRange`] broadcast to the metadata providers instead
    /// of walking the tree one remote level at a time. The replies only
    /// warm the node cache — anything missing falls back to the per-node
    /// descent, so this is purely a round-trip optimization (and can be
    /// turned off to talk to servers that predate the message).
    pub meta_range_fetch: bool,
    /// Reply-size cap (node count) each provider applies to one
    /// `GetMetaRange` answer; truncated scans continue via cursor.
    pub meta_range_max_nodes: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            op_timeout: SimDuration::from_secs(600),
            chunk_timeout: SimDuration::from_secs(15),
            materialize_zeros: false,
            chunk_window: 32,
            meta_cache_nodes: 4096,
            retry: RetryPolicy::disabled(),
            meta_range_fetch: true,
            meta_range_max_nodes: 512,
        }
    }
}

/// Bounded FIFO cache of immutable metadata nodes. Because a `NodeKey`
/// names a node created by exactly one (never-rewritten) version, any
/// cached entry is valid forever; eviction exists only to bound memory.
#[derive(Debug, Default)]
struct MetaCache {
    cap: usize,
    map: HashMap<NodeKey, MetaNode>,
    order: std::collections::VecDeque<NodeKey>,
}

impl MetaCache {
    fn new(cap: usize) -> Self {
        MetaCache { cap, map: HashMap::new(), order: std::collections::VecDeque::new() }
    }

    fn get(&self, k: &NodeKey) -> Option<&MetaNode> {
        self.map.get(k)
    }

    fn insert(&mut self, k: NodeKey, n: MetaNode) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(k, n).is_none() {
            self.order.push_back(k);
            while self.map.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

#[derive(Debug)]
enum WritePhase {
    Ticket,
    Alloc,
    Chunks,
    MetaResolve,
    MetaPut,
    Commit,
}

#[derive(Debug)]
struct WriteSess {
    blob: BlobId,
    data: Payload,
    ticket: Option<WriteTicket>,
    chunks: Vec<ChunkDescriptor>,
    builder: Option<TreeBuilder>,
    root: Option<crate::meta::NodeRef>,
    phase: WritePhase,
    /// Chunk stores not yet issued (kept reversed so `pop()` yields the
    /// next job); the in-flight window refills from here.
    pending_puts: Vec<(NodeId, Vec<(ChunkKey, Payload)>)>,
    /// Replacement placements requested so far (bounded by
    /// [`RetryPolicy::max_reallocs`]).
    reallocs: u32,
}

#[derive(Debug)]
enum ReadPhase {
    Version,
    Meta,
    Chunks,
}

#[derive(Debug)]
struct ReadSess {
    blob: BlobId,
    offset: u64,
    len: u64,
    info: Option<VersionInfo>,
    reader: Option<TreeReader>,
    page0: u64,
    parts: Vec<Option<Payload>>,
    phase: ReadPhase,
    /// Per-provider chunk-fetch batches not yet issued (reversed; `pop()`
    /// yields the next batch); the in-flight window refills from here.
    pending_gets: Vec<(NodeId, Vec<(usize, ChunkDescriptor)>)>,
    /// Whether this read already issued its one bulk `GetMetaRange`
    /// broadcast (at most one per read; later descent gaps use the
    /// per-node path).
    range_used: bool,
}

impl ReadSess {
    /// Version + page interval of this read's bulk range query. The tree
    /// being descended is the one rooted at the version that *created*
    /// the root node — equal to the read version except when a recovered
    /// no-op version republished its predecessor's root.
    fn range_query(&self) -> (VersionId, PageInterval) {
        let info = self.info.as_ref().expect("info set");
        let version = match info.root {
            Some(crate::meta::NodeRef::Node { version, .. }) => version,
            _ => info.version,
        };
        (version, PageInterval::new(self.page0, self.parts.len() as u64))
    }
}

/// What a parked stream sub-operation is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterKind {
    Open,
    Feed,
    Commit,
    Next,
}

/// The one stream sub-operation currently awaiting completion. Streams
/// are strictly half-duplex per handle: at most one feed/commit/next is
/// outstanding at a time, which is exactly what gives the backpressure
/// completion its meaning.
#[derive(Debug)]
struct StreamWaiter {
    tag: u64,
    started: SimTime,
    kind: WaiterKind,
    /// Payload bytes this sub-operation moves (a feed's accepted bytes,
    /// a commit's declared length); stamped on its [`Completion`].
    bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WStreamPhase {
    /// Awaiting the version manager's ticket.
    Ticket,
    /// Awaiting chunk placements.
    Alloc,
    /// Open: accepting feeds, shipping cut pages under the window.
    Streaming,
    /// Commit requested: draining in-flight chunk stores.
    Draining,
    /// Resolving untouched base-tree subtrees.
    MetaResolve,
    /// Storing the new tree nodes.
    MetaPut,
    /// Awaiting the version manager's publish ack.
    Commit,
}

/// A streaming write: the ticket/alloc handshake runs at open (the
/// declared length pins the version and page range), then feeds cut
/// page-sized chunks that ship through the same pipelined put path as a
/// whole-buffer write — but the client never holds more than
/// `chunk_window × page_size` un-acknowledged bytes: a feed's completion
/// is withheld until there is headroom for the next page.
#[derive(Debug)]
struct WriteStreamSess {
    blob: BlobId,
    ticket: Option<WriteTicket>,
    chunks: Vec<ChunkDescriptor>,
    builder: Option<TreeBuilder>,
    root: Option<crate::meta::NodeRef>,
    phase: WStreamPhase,
    /// Partial page under accumulation (real-data streams).
    acc: BytesMut,
    /// Partial page under accumulation (size-only simulation streams).
    acc_sim: u64,
    /// `Some(true)` once the first feed fixed the payload flavor to
    /// real data, `Some(false)` for simulation; mixing is a protocol
    /// error.
    data_mode: Option<bool>,
    /// Index into `chunks` of the next page to cut.
    next_page: u64,
    /// Cut pages (one entry per replica) not yet issued because the
    /// window is full.
    queued: std::collections::VecDeque<(NodeId, ChunkKey, Payload)>,
    /// Replica acks still owed per cut page; the page's bytes stay
    /// "buffered" until the last replica acks.
    page_acks: HashMap<u64, u32>,
    /// Bytes cut but not yet fully acknowledged (each page counted once
    /// — replicas share one refcounted buffer).
    unacked_bytes: u64,
    /// Total bytes accepted so far.
    fed: u64,
    /// High-water mark of `buffered()`, exported as the
    /// `client.stream_buffered_bytes` gauge.
    peak_buffered: u64,
    waiter: Option<StreamWaiter>,
    /// A fatal error that arrived while no sub-op was parked; delivered
    /// to (and ending the stream at) the next sub-op.
    failed: Option<BlobError>,
    reallocs: u32,
    /// Progress clock for the idle-timeout check: message arrivals and
    /// waiter completions refresh it.
    last_activity: SimTime,
}

impl WriteStreamSess {
    fn page_size(&self) -> u64 {
        self.ticket.as_ref().map(|t| t.page_size).unwrap_or(0)
    }

    /// Bytes this stream currently holds: the partial page plus every
    /// cut-but-not-fully-acked page.
    fn buffered(&self) -> u64 {
        self.acc.len() as u64 + self.acc_sim + self.unacked_bytes
    }

    /// May a feed completion be released? Yes once every cut page is at
    /// least in flight and there is headroom for one more page under the
    /// window cap — so the *next* feed cannot push `buffered()` past
    /// `chunk_window × page_size`.
    fn feed_ready(&self, window: usize) -> bool {
        if !self.queued.is_empty() {
            return false;
        }
        if window == 0 {
            return true;
        }
        let cap = (window as u64).max(2) * self.page_size();
        self.unacked_bytes == 0 || self.buffered() + self.page_size() <= cap
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RStreamPhase {
    /// Awaiting the version lookup.
    Version,
    /// Running the metadata descent for the whole range.
    Meta,
    /// Open, no fetch in flight; awaiting the next pull.
    Idle,
    /// One window of chunk fetches in flight.
    Fetching,
}

/// A streaming read: the version lookup and the (bulk, cache-warming)
/// metadata descent run at open and resolve the whole chunk plan — an
/// O(#pages) table of descriptors, not data — then each `next()` pulls
/// at most `chunk_window` pages of actual bytes, so a multi-GB read
/// runs in O(window) data memory.
#[derive(Debug)]
struct ReadStreamSess {
    blob: BlobId,
    offset: u64,
    len: u64,
    info: Option<VersionInfo>,
    reader: Option<TreeReader>,
    phase: RStreamPhase,
    page0: u64,
    /// Resolved page plan for the whole range.
    sources: Vec<PageSource>,
    /// Index into `sources` of the next page to deliver.
    cursor: usize,
    /// Plan index of `parts[0]` for the batch in flight.
    batch_base: usize,
    /// The batch in flight (at most `chunk_window` entries).
    parts: Vec<Option<Payload>>,
    waiter: Option<StreamWaiter>,
    failed: Option<BlobError>,
    range_used: bool,
    last_activity: SimTime,
}

impl ReadStreamSess {
    /// Version + page interval of the open descent's bulk range query
    /// (see [`ReadSess::range_query`] for the root-version subtlety).
    fn range_query(&self) -> (VersionId, PageInterval) {
        let info = self.info.as_ref().expect("info set");
        let version = match info.root {
            Some(crate::meta::NodeRef::Node { version, .. }) => version,
            _ => info.version,
        };
        let page = info.page_size;
        let last = (self.offset + self.len - 1) / page;
        (version, PageInterval::new(self.page0, last - self.page0 + 1))
    }
}

#[derive(Debug)]
enum SessKind {
    Create,
    // Boxed: write and read sessions embed builders, descriptor tables
    // and pending queues, and are much larger than the other variants.
    Write(Box<WriteSess>),
    Read(Box<ReadSess>),
    Snapshot(BlobId),
    Decommission(BlobId),
    // Long-lived streaming sessions: the session outlives each sub-op
    // (open/feed/commit/next), which complete through the parked
    // [`StreamWaiter`] instead of the session tag.
    WriteStream(Box<WriteStreamSess>),
    ReadStream(Box<ReadStreamSess>),
}

/// Causal-trace state of one operation: the root span identity plus the
/// start time of the protocol stage currently in flight. Present only
/// when the embedding runtime exposes a [`sads_sim::SpanSink`]; with
/// tracing off the field is `None` and the client does no span work.
#[derive(Debug)]
struct OpTrace {
    /// Root context: `span_id` is the operation's `Op` span, under which
    /// every stage span and (via ambient propagation) every network and
    /// server-side handle span of this operation nests.
    ctx: TraceCtx,
    /// Operation label: `"create"`, `"write"` or `"read"`.
    op: &'static str,
    /// When the current stage began (stage spans are emitted lazily, at
    /// the transition out of the stage).
    stage_start: SimTime,
}

#[derive(Debug)]
struct Session {
    tag: u64,
    started: SimTime,
    kind: SessKind,
    /// Request ids awaited in the current phase.
    outstanding: HashSet<u64>,
    /// Span bookkeeping when tracing is on (`None` = zero trace work).
    trace: Option<OpTrace>,
}

/// Which sub-protocol a pending request id belongs to, plus retry state
/// for chunk transfers.
#[derive(Debug)]
enum ReqRole {
    Plain,
    /// A chunk fetch for read-part `idx`. `first` is the replica index
    /// tried initially; `attempts` counts tries so far, and failover
    /// walks `replicas[(first + attempts) % len]` until every replica
    /// was tried once. `refreshed` marks a fetch re-issued after a
    /// degraded-read placement refresh (one refresh per chunk per op).
    ChunkGet {
        idx: usize,
        desc: ChunkDescriptor,
        first: usize,
        attempts: usize,
        refreshed: bool,
    },
    /// One provider's batch of chunk fetches (window slots grouped by
    /// the replica chosen for each chunk). A single deadline guards the
    /// whole batch; failed or unanswered items re-enter the per-chunk
    /// replica walk individually.
    ChunkGetBatch {
        target: NodeId,
        items: Vec<(usize, ChunkDescriptor)>,
    },
    /// A metadata fetch carrying the requested keys (during resolve).
    MetaGet,
    /// One provider's slice of the bulk metadata range query a cold read
    /// opens with (`target` kept for continuation requests).
    MetaRange {
        target: NodeId,
    },
    /// One provider's batch of chunk stores, kept so a timed-out or
    /// refused store can be re-sent (same target, then a replacement).
    ChunkPut {
        target: NodeId,
        items: Vec<(ChunkKey, Payload)>,
        attempts: u32,
    },
    /// A replacement-placement request for chunk stores that exhausted
    /// their target (`failed`); `items` are re-sent to the new placement.
    ReAlloc {
        failed: NodeId,
        items: Vec<(ChunkKey, Payload)>,
    },
    /// A degraded-read placement refresh: re-fetch the leaf of read-part
    /// `idx` directly (bypassing the cache) to pick up repair patches.
    LeafRefresh {
        idx: usize,
        desc: ChunkDescriptor,
    },
}

/// The embeddable client core. Drive it with `start_op`, feed it every
/// incoming message/timer, and collect [`Completion`]s.
pub struct ClientCore {
    id: ClientId,
    vman: NodeId,
    pman: NodeId,
    meta_providers: Vec<NodeId>,
    cfg: ClientConfig,
    sessions: HashMap<u64, Session>,
    req_index: HashMap<u64, (u64, ReqRole)>,
    next_req: u64,
    next_sid: u64,
    /// Metadata nodes seen (fetched or written) by this client. Nodes are
    /// immutable, so hits skip whole descent rounds with no coherence
    /// protocol.
    meta_cache: MetaCache,
}

impl ClientCore {
    /// A client of the deployment whose managers and (static) metadata
    /// provider ring are given.
    pub fn new(
        id: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: Vec<NodeId>,
        cfg: ClientConfig,
    ) -> Self {
        assert!(!meta_providers.is_empty(), "at least one metadata provider");
        ClientCore {
            id,
            vman,
            pman,
            meta_providers,
            cfg,
            sessions: HashMap::new(),
            req_index: HashMap::new(),
            next_req: 1,
            next_sid: 1,
            meta_cache: MetaCache::new(cfg.meta_cache_nodes),
        }
    }

    /// This client's principal id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Operations currently in flight.
    pub fn active_ops(&self) -> usize {
        self.sessions.len()
    }

    /// Does this timer token belong to the client core?
    pub fn owns_timer(token: u64) -> bool {
        token & CLIENT_TIMER_BIT != 0
    }

    fn fresh_req(&mut self, sid: u64, role: ReqRole) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.req_index.insert(req, (sid, role));
        req
    }

    /// Begin an operation; its completion will carry `tag`.
    ///
    /// Most operations complete later, through [`handle_msg`] /
    /// [`handle_timer`]; stream sub-operations (feeds, pulls) can
    /// complete synchronously when the stream already has headroom, so
    /// completions may also be returned here.
    ///
    /// [`handle_msg`]: ClientCore::handle_msg
    /// [`handle_timer`]: ClientCore::handle_timer
    pub fn start_op(&mut self, env: &mut dyn Env, op: ClientOp, tag: u64) -> Vec<Completion> {
        // Stream sub-operations act on an existing session instead of
        // opening one.
        match op {
            ClientOp::FeedWriteStream { stream, data } => {
                return self.wstream_feed(env, stream, data, tag)
            }
            ClientOp::CommitWriteStream { stream } => {
                return self.wstream_commit(env, stream, tag)
            }
            ClientOp::AbortWriteStream { stream } | ClientOp::CloseReadStream { stream } => {
                return self.stream_close(env, stream, tag)
            }
            ClientOp::ReadStreamNext { stream } => return self.rstream_next(env, stream, tag),
            _ => {}
        }
        let sid = self.next_sid;
        self.next_sid += 1;
        let started = env.now();
        env.set_timer(self.cfg.op_timeout, CLIENT_TIMER_BIT | sid);
        let op_name = match &op {
            ClientOp::Create { .. } => "create",
            ClientOp::Write { .. } => "write",
            ClientOp::Read { .. } => "read",
            ClientOp::Snapshot { .. } => "snapshot",
            ClientOp::Decommission { .. } => "decommission",
            ClientOp::OpenWriteStream { .. } => "write_stream",
            ClientOp::OpenReadStream { .. } => "read_stream",
            _ => unreachable!("stream sub-ops handled above"),
        };
        let trace = env.span_sink().map(|sink| {
            // Nest under an ambient context when one exists (e.g. the S3
            // gateway's per-request span); otherwise open a fresh trace.
            let (trace_id, parent) = match env.trace_ctx() {
                Some(tc) => (tc.trace_id, tc.span_id),
                None => (sink.next_id(), 0),
            };
            let span_id = sink.next_id();
            OpTrace {
                ctx: TraceCtx { trace_id, span_id, parent },
                op: op_name,
                stage_start: started,
            }
        });
        env.set_trace_ctx(trace.as_ref().map(|t| t.ctx));
        let mut sess = Session {
            tag,
            started,
            kind: SessKind::Create,
            outstanding: HashSet::new(),
            trace,
        };
        match op {
            ClientOp::Create { spec } => {
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::CreateBlob { req, client: self.id, spec });
            }
            ClientOp::Write { blob, kind, data } => {
                sess.kind = SessKind::Write(Box::new(WriteSess {
                    blob,
                    data,
                    ticket: None,
                    chunks: Vec::new(),
                    builder: None,
                    root: None,
                    phase: WritePhase::Ticket,
                    pending_puts: Vec::new(),
                    reallocs: 0,
                }));
                let len = match &sess.kind {
                    SessKind::Write(w) => w.data.len(),
                    _ => unreachable!(),
                };
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::Ticket { req, client: self.id, blob, kind, len });
            }
            ClientOp::Read { blob, version, offset, len } => {
                sess.kind = SessKind::Read(Box::new(ReadSess {
                    blob,
                    offset,
                    len,
                    info: None,
                    reader: None,
                    page0: 0,
                    parts: Vec::new(),
                    phase: ReadPhase::Version,
                    pending_gets: Vec::new(),
                    range_used: false,
                }));
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::GetVersion { req, client: self.id, blob, version });
            }
            ClientOp::Snapshot { blob, version } => {
                sess.kind = SessKind::Snapshot(blob);
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::SnapshotVersion { req, client: self.id, blob, version });
            }
            ClientOp::Decommission { blob } => {
                sess.kind = SessKind::Decommission(blob);
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::DecommissionBlob { req, client: self.id, blob });
            }
            ClientOp::OpenWriteStream { blob, kind, len } => {
                sess.kind = SessKind::WriteStream(Box::new(WriteStreamSess {
                    blob,
                    ticket: None,
                    chunks: Vec::new(),
                    builder: None,
                    root: None,
                    phase: WStreamPhase::Ticket,
                    acc: BytesMut::new(),
                    acc_sim: 0,
                    data_mode: None,
                    next_page: 0,
                    queued: std::collections::VecDeque::new(),
                    page_acks: HashMap::new(),
                    unacked_bytes: 0,
                    fed: 0,
                    peak_buffered: 0,
                    waiter: Some(StreamWaiter { tag, started, kind: WaiterKind::Open, bytes: 0 }),
                    failed: None,
                    reallocs: 0,
                    last_activity: started,
                }));
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::Ticket { req, client: self.id, blob, kind, len });
            }
            ClientOp::OpenReadStream { blob, version, offset, len } => {
                sess.kind = SessKind::ReadStream(Box::new(ReadStreamSess {
                    blob,
                    offset,
                    len,
                    info: None,
                    reader: None,
                    phase: RStreamPhase::Version,
                    page0: 0,
                    sources: Vec::new(),
                    cursor: 0,
                    batch_base: 0,
                    parts: Vec::new(),
                    waiter: Some(StreamWaiter { tag, started, kind: WaiterKind::Open, bytes: 0 }),
                    failed: None,
                    range_used: false,
                    last_activity: started,
                }));
                let req = self.fresh_req(sid, ReqRole::Plain);
                sess.outstanding.insert(req);
                self.sessions.insert(sid, sess);
                env.send(self.vman, Msg::GetVersion { req, client: self.id, blob, version });
            }
            ClientOp::FeedWriteStream { .. }
            | ClientOp::CommitWriteStream { .. }
            | ClientOp::AbortWriteStream { .. }
            | ClientOp::ReadStreamNext { .. }
            | ClientOp::CloseReadStream { .. } => unreachable!("handled above"),
        }
        env.set_trace_ctx(None);
        vec![]
    }

    /// Feed a timer owned by the client core (see [`ClientCore::owns_timer`]).
    pub fn handle_timer(&mut self, env: &mut dyn Env, token: u64) -> Vec<Completion> {
        if token & RETRY_TIMER_BIT != 0 {
            // A backoff expired: the deferred resend registered under this
            // request id goes out now. Stale timers (op already finished)
            // fall out at the request-index lookup.
            let req = token & !(CLIENT_TIMER_BIT | RETRY_TIMER_BIT);
            self.fire_deferred_resend(env, req);
            return vec![];
        }
        if token & CHUNK_TIMEOUT_BIT != 0 {
            // A chunk RPC went unanswered (provider crashed or drowned in
            // backlog): synthesize the matching error locally so the
            // normal failover/retry path handles timeouts and explicit
            // refusals identically. Stale timers (request already
            // answered) fall out at the request-index lookup.
            let req = token & !(CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT);
            let msg = match self.req_index.get(&req) {
                Some((_, ReqRole::ChunkPut { .. })) => {
                    Msg::PutChunkErr { req, err: ChunkErr::Unreachable }
                }
                Some(_) => Msg::GetChunkErr { req, err: ChunkErr::NotFound },
                None => return vec![],
            };
            return self.handle_msg(env, NodeId::EXTERNAL, msg);
        }
        let sid = token & !CLIENT_TIMER_BIT;
        // Stream sessions are long-lived: their deadline is an *idle*
        // timeout. If the stream made progress since the timer was
        // armed, re-arm for the remainder instead of killing it.
        let idle_since = match self.sessions.get(&sid).map(|s| &s.kind) {
            Some(SessKind::WriteStream(w)) => Some(w.last_activity),
            Some(SessKind::ReadStream(r)) => Some(r.last_activity),
            _ => None,
        };
        if let Some(last) = idle_since {
            let deadline = last + self.cfg.op_timeout;
            let now = env.now();
            if deadline > now {
                env.set_timer(deadline.since(now), CLIENT_TIMER_BIT | sid);
                return vec![];
            }
            return self.fail_stream(env, sid, BlobError::Timeout);
        }
        if let Some(sess) = self.sessions.remove(&sid) {
            for req in &sess.outstanding {
                self.req_index.remove(req);
            }
            if let Some(t) = &sess.trace {
                let now = env.now();
                Self::record_stage(env, t, Self::stage_of(&sess.kind), now);
                Self::record_op(env, t, sess.started, now);
            }
            return vec![Completion {
                tag: sess.tag,
                result: Err(BlobError::Timeout),
                started: sess.started,
                finished: env.now(),
                bytes: 0,
            }];
        }
        vec![]
    }

    /// Send the chunk store registered for a deferred (backed-off) resend
    /// under request id `req`, arming a fresh RPC deadline. No-op if the
    /// operation finished (or timed out) while the backoff ran.
    fn fire_deferred_resend(&mut self, env: &mut dyn Env, req: u64) {
        let Some((sid, ReqRole::ChunkPut { target, items, .. })) = self.req_index.get(&req)
        else {
            return;
        };
        let sid = *sid;
        let target = *target;
        let msg = if items.len() == 1 {
            let (key, data) = items[0].clone();
            Msg::PutChunk { req, client: self.id, key, data }
        } else {
            Msg::PutChunkBatch { req, client: self.id, items: items.clone() }
        };
        // The resend belongs to the operation's causal tree.
        let tc = self.sessions.get(&sid).and_then(|s| s.trace.as_ref().map(|t| t.ctx));
        env.set_trace_ctx(tc);
        env.send(target, msg);
        env.set_trace_ctx(None);
        env.set_timer(self.cfg.retry.put_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Feed an incoming message. Returns any operations that completed.
    pub fn handle_msg(&mut self, env: &mut dyn Env, _from: NodeId, msg: Msg) -> Vec<Completion> {
        let Some(req) = req_of(&msg) else { return vec![] };
        let Some((sid, role)) = self.req_index.remove(&req) else { return vec![] };
        let Some(sess) = self.sessions.get_mut(&sid) else { return vec![] };
        sess.outstanding.remove(&req);

        // Stream sessions complete sub-operations without ending the
        // session, so they run their own state machines.
        match &sess.kind {
            SessKind::WriteStream(_) => return self.wstream_msg(env, sid, role, msg),
            SessKind::ReadStream(_) => return self.rstream_msg(env, sid, role, msg),
            _ => {}
        }

        // Restore this operation's causal context so every message sent
        // while advancing the protocol nests under its root span, and
        // remember the stage so a phase transition can close its span.
        let stage_before = Self::stage_of(&sess.kind);
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));

        let verdict = Self::advance(
            self.id,
            self.vman,
            self.pman,
            &self.meta_providers,
            self.cfg,
            &mut self.meta_cache,
            &mut self.next_req,
            &mut self.req_index,
            sid,
            sess,
            role,
            msg,
            env,
        );
        match verdict {
            Step::Continue => {
                if Self::stage_of(&sess.kind) != stage_before {
                    if let Some(t) = sess.trace.as_mut() {
                        let now = env.now();
                        Self::record_stage(env, &*t, stage_before, now);
                        t.stage_start = now;
                    }
                }
                env.set_trace_ctx(None);
                vec![]
            }
            Step::Done(result, bytes) => {
                let sess = self.sessions.remove(&sid).expect("present");
                for r in &sess.outstanding {
                    self.req_index.remove(r);
                }
                if let Some(t) = &sess.trace {
                    let now = env.now();
                    Self::record_stage(env, t, stage_before, now);
                    Self::record_op(env, t, sess.started, now);
                }
                env.set_trace_ctx(None);
                vec![Completion {
                    tag: sess.tag,
                    result,
                    started: sess.started,
                    finished: env.now(),
                    bytes,
                }]
            }
        }
    }

    /// Name of the protocol stage a session is currently in.
    fn stage_of(kind: &SessKind) -> &'static str {
        match kind {
            SessKind::Create => "create",
            SessKind::Snapshot(_) => "snapshot",
            SessKind::Decommission(_) => "decommission",
            SessKind::Write(w) => match w.phase {
                WritePhase::Ticket => "ticket",
                WritePhase::Alloc => "alloc",
                WritePhase::Chunks => "chunks",
                WritePhase::MetaResolve => "meta_resolve",
                WritePhase::MetaPut => "meta_put",
                WritePhase::Commit => "commit",
            },
            SessKind::Read(r) => match r.phase {
                ReadPhase::Version => "version",
                ReadPhase::Meta => "meta",
                ReadPhase::Chunks => "chunks",
            },
            SessKind::WriteStream(w) => match w.phase {
                WStreamPhase::Ticket => "ticket",
                WStreamPhase::Alloc => "alloc",
                WStreamPhase::Streaming => "stream",
                WStreamPhase::Draining => "drain",
                WStreamPhase::MetaResolve => "meta_resolve",
                WStreamPhase::MetaPut => "meta_put",
                WStreamPhase::Commit => "commit",
            },
            SessKind::ReadStream(r) => match r.phase {
                RStreamPhase::Version => "version",
                RStreamPhase::Meta => "meta",
                RStreamPhase::Idle => "stream",
                RStreamPhase::Fetching => "chunks",
            },
        }
    }

    /// Close the stage span that just ended (`start` = when the stage
    /// began, kept in the session's [`OpTrace`]).
    fn record_stage(env: &mut dyn Env, t: &OpTrace, stage: &'static str, end: SimTime) {
        let Some(sink) = env.span_sink() else { return };
        sink.record(SpanRecord {
            trace: t.ctx.trace_id,
            span: sink.next_id(),
            parent: t.ctx.span_id,
            service: "client",
            op: stage,
            node: env.id().0 as u64,
            start_ns: t.stage_start.as_nanos(),
            end_ns: end.as_nanos(),
            kind: SpanKind::Stage,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
    }

    /// Close the operation's root span.
    fn record_op(env: &mut dyn Env, t: &OpTrace, started: SimTime, end: SimTime) {
        let Some(sink) = env.span_sink() else { return };
        sink.record(SpanRecord {
            trace: t.ctx.trace_id,
            span: t.ctx.span_id,
            parent: t.ctx.parent,
            service: "client",
            op: t.op,
            node: env.id().0 as u64,
            start_ns: started.as_nanos(),
            end_ns: end.as_nanos(),
            kind: SpanKind::Op,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
    }

    /// One protocol step. Static to sidestep split borrows of `self`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        client: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        next_req: &mut u64,
        req_index: &mut HashMap<u64, (u64, ReqRole)>,
        sid: u64,
        sess: &mut Session,
        role: ReqRole,
        msg: Msg,
        env: &mut dyn Env,
    ) -> Step {
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };

        match &mut sess.kind {
            // Stream sessions are routed to their own machines in
            // `handle_msg` before `advance` is ever reached.
            SessKind::WriteStream(_) | SessKind::ReadStream(_) => {
                unreachable!("stream sessions bypass advance")
            }

            SessKind::Create => match msg {
                Msg::CreateBlobOk { blob, .. } => Step::Done(Ok(OpOutput::Created(blob)), 0),
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to create")), 0),
            },

            SessKind::Snapshot(blob) => match msg {
                Msg::SnapshotVersionOk { version, .. } => {
                    Step::Done(Ok(OpOutput::Snapshotted { blob: *blob, version }), 0)
                }
                Msg::SnapshotVersionErr { err, .. } => Step::Done(Err(err), 0),
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to snapshot")), 0),
            },

            SessKind::Decommission(blob) => match msg {
                Msg::DecommissionBlobOk { ok, .. } => {
                    Step::Done(Ok(OpOutput::Decommissioned { blob: *blob, ok }), 0)
                }
                _ => Step::Done(Err(BlobError::Protocol("unexpected reply to decommission")), 0),
            },

            SessKind::Write(w) => match (std::mem::replace(&mut w.phase, WritePhase::Ticket), msg)
            {
                (WritePhase::Ticket, Msg::TicketOk { ticket, .. }) => {
                    let pages = ticket.interval().len;
                    let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                    env.send(
                        pman,
                        Msg::Alloc {
                            req,
                            client,
                            chunks: pages as u32,
                            replication: ticket.replication,
                            chunk_size: ticket.page_size,
                        },
                    );
                    w.ticket = Some(ticket);
                    w.phase = WritePhase::Alloc;
                    Step::Continue
                }
                (WritePhase::Ticket, Msg::TicketErr { err, .. }) => Step::Done(Err(err), 0),

                (WritePhase::Alloc, Msg::AllocOk { placement, .. }) => {
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let interval = ticket.interval();
                    debug_assert_eq!(placement.len() as u64, interval.len);
                    let page = ticket.page_size;
                    w.chunks = placement
                        .iter()
                        .enumerate()
                        .map(|(i, replicas)| ChunkDescriptor {
                            key: ChunkKey {
                                blob: w.blob,
                                version: ticket.version,
                                page: interval.start + i as u64,
                            },
                            replicas: replicas.clone(),
                            size: page,
                        })
                        .collect();
                    // Group replica stores by target provider (first-seen
                    // order, so the schedule stays deterministic), then
                    // open the in-flight window; each ack refills one
                    // slot, so chunk I/O pipelines across providers while
                    // the client's memory and the number of in-flight
                    // requests stay bounded. A provider holding several of
                    // this write's chunks gets them in one batched round
                    // trip instead of one request per chunk.
                    let mut jobs: Vec<(NodeId, Vec<(ChunkKey, Payload)>)> = Vec::new();
                    for (i, desc) in w.chunks.iter().enumerate() {
                        let slice = w.data.slice(i as u64 * page, page);
                        for replica in &desc.replicas {
                            match jobs.iter_mut().find(|(t, _)| t == replica) {
                                Some((_, items)) => items.push((desc.key, slice.clone())),
                                None => jobs.push((*replica, vec![(desc.key, slice.clone())])),
                            }
                        }
                    }
                    jobs.reverse(); // pop() = next batch, in first-seen order
                    w.pending_puts = jobs;
                    let window = if cfg.chunk_window == 0 { usize::MAX } else { cfg.chunk_window };
                    while sess.outstanding.len() < window {
                        let Some((target, items)) = w.pending_puts.pop() else { break };
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    w.phase = WritePhase::Chunks;
                    Step::Continue
                }
                (WritePhase::Alloc, Msg::AllocErr { available, .. }) => Step::Done(
                    Err(BlobError::AllocationFailed {
                        requested: w.data.len().div_ceil(
                            w.ticket.as_ref().map(|t| t.page_size).unwrap_or(1).max(1),
                        ) as u32,
                        available,
                    }),
                    0,
                ),

                (WritePhase::Chunks, Msg::PutChunkOk { .. }) => {
                    // A slot freed: issue the next queued batch, if any.
                    if let Some((target, items)) = w.pending_puts.pop() {
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    // All replicas stored: build metadata.
                    let ticket = w.ticket.clone().expect("ticket set");
                    let builder = TreeBuilder::new(
                        w.blob,
                        ticket.version,
                        ticket.interval(),
                        ticket.page_size,
                        ticket.new_size,
                        ticket.base,
                        ticket.pending.clone(),
                    );
                    w.builder = Some(builder);
                    Self::write_meta_step(client, meta_providers, meta_cache, &mut fresh, sess, env)
                }
                (WritePhase::Chunks, Msg::PutChunkErr { err, .. }) => {
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    let ReqRole::ChunkPut { target, items, attempts } = role else {
                        return Step::Done(Err(chunk_err(err, client)), 0);
                    };
                    if !cfg.retry.enabled() {
                        return Step::Done(Err(chunk_err(err, client)), 0);
                    }
                    if err != ChunkErr::Full && attempts < cfg.retry.max_attempts {
                        // Same-target retry: register the resend under a
                        // fresh request id; the backoff timer sends it.
                        env.incr("client.rpc_retries", 1);
                        let delay = cfg.retry.backoff(attempts);
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ChunkPut { target, items, attempts: attempts + 1 },
                        );
                        env.set_timer(delay, CLIENT_TIMER_BIT | RETRY_TIMER_BIT | req);
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    // Target exhausted (dead) or full: ask the provider
                    // manager for a replacement placement for these chunks.
                    if w.reallocs < cfg.retry.max_reallocs {
                        w.reallocs += 1;
                        env.incr("client.reallocs", 1);
                        let page = w.ticket.as_ref().map(|t| t.page_size).unwrap_or(0);
                        let chunks = items.len() as u32;
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ReAlloc { failed: target, items },
                        );
                        env.send(
                            pman,
                            Msg::Alloc { req, client, chunks, replication: 1, chunk_size: page },
                        );
                        w.phase = WritePhase::Chunks;
                        return Step::Continue;
                    }
                    match items.first() {
                        Some((key, _)) => Step::Done(Err(BlobError::ChunkUnavailable(*key)), 0),
                        None => Step::Done(Err(chunk_err(err, client)), 0),
                    }
                }

                (WritePhase::Chunks, Msg::AllocOk { placement, .. }) => {
                    // A replacement placement arrived for chunk stores
                    // whose target died: patch the descriptor table so the
                    // metadata tree records the replacement replica, then
                    // re-send each chunk to its new home.
                    let ReqRole::ReAlloc { failed, items } = role else {
                        return Step::Done(Err(BlobError::Protocol("unexpected write reply")), 0);
                    };
                    debug_assert_eq!(placement.len(), items.len());
                    let mut jobs: Vec<(NodeId, Vec<(ChunkKey, Payload)>)> = Vec::new();
                    for ((key, data), replicas) in items.into_iter().zip(placement) {
                        let Some(&new_target) = replicas.first() else {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        };
                        if let Some(desc) = w.chunks.iter_mut().find(|d| d.key == key) {
                            for r in &mut desc.replicas {
                                if *r == failed {
                                    *r = new_target;
                                }
                            }
                        }
                        match jobs.iter_mut().find(|(t, _)| *t == new_target) {
                            Some((_, batch)) => batch.push((key, data)),
                            None => jobs.push((new_target, vec![(key, data)])),
                        }
                    }
                    for (target, batch) in jobs {
                        Self::issue_chunk_put(
                            client,
                            cfg.retry,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            batch,
                            env,
                        );
                    }
                    w.phase = WritePhase::Chunks;
                    Step::Continue
                }
                (WritePhase::Chunks, Msg::AllocErr { available, .. }) => {
                    // No replacement capacity anywhere: total unavailability.
                    if let ReqRole::ReAlloc { items, .. } = role {
                        if let Some((key, _)) = items.first() {
                            return Step::Done(Err(BlobError::ChunkUnavailable(*key)), 0);
                        }
                    }
                    Step::Done(Err(BlobError::AllocationFailed { requested: 0, available }), 0)
                }

                (WritePhase::MetaResolve, Msg::GetMetaOk { nodes, .. }) => {
                    let builder = w.builder.as_mut().expect("builder set");
                    for (k, n) in nodes {
                        match n {
                            Some(node) => {
                                builder.supply(k, &node);
                                meta_cache.insert(k, node);
                            }
                            None => return Step::Done(Err(BlobError::MetaUnavailable), 0),
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::MetaResolve;
                        return Step::Continue;
                    }
                    Self::write_meta_step(client, meta_providers, meta_cache, &mut fresh, sess, env)
                }

                (WritePhase::MetaPut, Msg::PutMetaOk { .. }) => {
                    if !sess.outstanding.is_empty() {
                        w.phase = WritePhase::MetaPut;
                        return Step::Continue;
                    }
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                    env.send(
                        vman,
                        Msg::Commit {
                            req,
                            client,
                            blob: w.blob,
                            version: ticket.version,
                            root: w.root.expect("root set in meta phase"),
                            size: ticket.new_size,
                        },
                    );
                    w.phase = WritePhase::Commit;
                    Step::Continue
                }

                (WritePhase::Commit, Msg::CommitOk { version, .. }) => {
                    let ticket = w.ticket.as_ref().expect("ticket set");
                    let bytes = ticket.len;
                    Step::Done(
                        Ok(OpOutput::Written {
                            blob: w.blob,
                            version,
                            offset: ticket.offset,
                            len: ticket.len,
                        }),
                        bytes,
                    )
                }
                (WritePhase::Commit, Msg::TicketErr { err, .. }) => Step::Done(Err(err), 0),

                (_, _) => Step::Done(Err(BlobError::Protocol("unexpected write reply")), 0),
            },

            SessKind::Read(r) => match (std::mem::replace(&mut r.phase, ReadPhase::Version), msg, role)
            {
                (ReadPhase::Version, Msg::GetVersionOk { info, .. }, _) => {
                    if r.len == 0 {
                        let data = if cfg.materialize_zeros {
                            Payload::Data(bytes::Bytes::new())
                        } else {
                            Payload::Sim(0)
                        };
                        return Step::Done(
                            Ok(OpOutput::Read { data, version: info.version }),
                            0,
                        );
                    }
                    if r.offset >= info.size {
                        return Step::Done(
                            Err(BlobError::OutOfBounds {
                                offset: r.offset,
                                len: r.len,
                                size: info.size,
                            }),
                            0,
                        );
                    }
                    let eff_len = r.len.min(info.size - r.offset);
                    r.len = eff_len;
                    let page = info.page_size;
                    r.page0 = r.offset / page;
                    let last = (r.offset + eff_len - 1) / page;
                    let interval = PageInterval::new(r.page0, last - r.page0 + 1);
                    let reader = TreeReader::new(r.blob, info.root, interval);
                    r.parts = (0..interval.len).map(|_| None).collect();
                    r.info = Some(info);
                    r.reader = Some(reader);
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }
                (ReadPhase::Version, Msg::GetVersionErr { err, .. }, _) => Step::Done(Err(err), 0),

                (ReadPhase::Meta, Msg::GetMetaOk { nodes, .. }, _) => {
                    let reader = r.reader.as_mut().expect("reader set");
                    for (k, n) in nodes {
                        match n {
                            Some(node) => {
                                reader.supply(k, &node);
                                meta_cache.insert(k, node);
                            }
                            None => return Step::Done(Err(BlobError::MetaUnavailable), 0),
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        r.phase = ReadPhase::Meta;
                        return Step::Continue;
                    }
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }

                (
                    ReadPhase::Meta,
                    Msg::GetMetaRangeOk { nodes, more, .. },
                    ReqRole::MetaRange { target },
                ) => {
                    // Bulk reply from one provider's slice of the read
                    // path: every node only warms the cache. Correctness
                    // never depends on what the provider chose to send —
                    // the descent re-runs cache-first below and anything
                    // the bulk replies missed falls back to per-node
                    // fetches.
                    let mut last = None;
                    for (k, n) in nodes {
                        last = Some(k.range);
                        meta_cache.insert(k, n);
                    }
                    if more {
                        if let Some(after) = last {
                            let (version, query) = r.range_query();
                            let req =
                                fresh(&mut sess.outstanding, ReqRole::MetaRange { target });
                            env.send(
                                target,
                                Msg::GetMetaRange {
                                    req,
                                    blob: r.blob,
                                    version,
                                    query,
                                    after: Some(after),
                                    max_nodes: cfg.meta_range_max_nodes,
                                },
                            );
                            r.phase = ReadPhase::Meta;
                            return Step::Continue;
                        }
                    }
                    if !sess.outstanding.is_empty() {
                        r.phase = ReadPhase::Meta;
                        return Step::Continue;
                    }
                    Self::read_meta_step(client, meta_providers, cfg, meta_cache, &mut fresh, sess, env)
                }

                (ReadPhase::Chunks, Msg::GetChunkOk { data, .. }, ReqRole::ChunkGet { idx, .. }) => {
                    r.parts[idx] = Some(data);
                    // A slot freed: issue the next queued batch, if any.
                    if let Some((target, items)) = r.pending_gets.pop() {
                        Self::issue_chunk_get_batch(
                            client,
                            cfg.chunk_timeout,
                            &mut fresh,
                            &mut sess.outstanding,
                            target,
                            items,
                            env,
                        );
                    }
                    if sess.outstanding.is_empty() {
                        return Self::assemble(sess, cfg.materialize_zeros);
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkBatchOk { items, .. },
                    ReqRole::ChunkGetBatch { target, items: req_items },
                ) => {
                    // Per-item results: store the hits, walk the misses.
                    // This reply disarms the batch's shared deadline;
                    // resubmitted items arm their own per-chunk deadlines.
                    let mut failed: Vec<(usize, ChunkDescriptor)> = Vec::new();
                    for (idx, desc) in req_items {
                        match items.iter().find(|(k, _)| *k == desc.key) {
                            Some((_, Ok(data))) => r.parts[idx] = Some(data.clone()),
                            Some((_, Err(ChunkErr::Blocked))) => {
                                return Step::Done(Err(BlobError::Blocked(client)), 0)
                            }
                            _ => failed.push((idx, desc)),
                        }
                    }
                    for (idx, desc) in failed {
                        let first =
                            desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            1,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                    }
                    if let Some((t, items)) = r.pending_gets.pop() {
                        Self::issue_chunk_get_batch(
                            client,
                            cfg.chunk_timeout,
                            &mut fresh,
                            &mut sess.outstanding,
                            t,
                            items,
                            env,
                        );
                    }
                    if sess.outstanding.is_empty() {
                        return Self::assemble(sess, cfg.materialize_zeros);
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkErr { err, .. },
                    ReqRole::ChunkGetBatch { target, items },
                ) => {
                    // The whole batch failed: the provider refused it, or
                    // its single shared deadline fired. Each item
                    // independently re-enters the per-chunk replica walk
                    // (retries occupy the batch's window slot, so no
                    // refill here).
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    for (idx, desc) in items {
                        let first =
                            desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            1,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                    }
                    r.phase = ReadPhase::Chunks;
                    Step::Continue
                }
                (
                    ReadPhase::Chunks,
                    Msg::GetChunkErr { err, .. },
                    ReqRole::ChunkGet { idx, desc, first, attempts, refreshed },
                ) => {
                    if err == ChunkErr::Blocked {
                        return Step::Done(Err(BlobError::Blocked(client)), 0);
                    }
                    if !refreshed {
                        if let Err(key) = Self::failover_chunk_get(
                            client,
                            cfg,
                            meta_providers,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            desc,
                            first,
                            attempts,
                            env,
                        ) {
                            return Step::Done(Err(BlobError::ChunkUnavailable(key)), 0);
                        }
                        r.phase = ReadPhase::Chunks;
                        return Step::Continue;
                    }
                    // Post-refresh walk: no second leaf refresh.
                    if attempts < desc.replicas.len() {
                        env.incr("client.replica_walks", 1);
                        let target = desc.replicas[(first + attempts) % desc.replicas.len()];
                        let key = desc.key;
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::ChunkGet {
                                idx,
                                desc,
                                first,
                                attempts: attempts + 1,
                                refreshed,
                            },
                        );
                        env.send(target, Msg::GetChunk { req, client, key });
                        env.set_timer(
                            cfg.chunk_timeout,
                            CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req,
                        );
                        r.phase = ReadPhase::Chunks;
                        return Step::Continue;
                    }
                    Step::Done(Err(BlobError::ChunkUnavailable(desc.key)), 0)
                }

                (
                    ReadPhase::Chunks,
                    Msg::GetMetaOk { nodes, .. },
                    ReqRole::LeafRefresh { idx, desc },
                ) => {
                    // The refreshed leaf supersedes the stale cached copy.
                    let mut fresh_desc = None;
                    for (k, n) in nodes {
                        if let Some(MetaNode::Leaf { chunk }) = &n {
                            fresh_desc = Some(chunk.clone());
                            meta_cache.insert(k, n.expect("checked Some"));
                        }
                    }
                    match fresh_desc {
                        Some(chunk) if !chunk.replicas.is_empty() => {
                            Self::issue_chunk_get(
                                client,
                                cfg.chunk_timeout,
                                &mut fresh,
                                &mut sess.outstanding,
                                idx,
                                chunk,
                                true,
                                env,
                            );
                            r.phase = ReadPhase::Chunks;
                            Step::Continue
                        }
                        _ => Step::Done(Err(BlobError::ChunkUnavailable(desc.key)), 0),
                    }
                }

                (_, _, _) => Step::Done(Err(BlobError::Protocol("unexpected read reply")), 0),
            },
        }
    }

    /// Issue the next round of metadata work for a write session: either
    /// more base-tree fetches, or (once resolved) the node stores.
    fn write_meta_step(
        client: ClientId,
        meta_providers: &[NodeId],
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        sess: &mut Session,
        env: &mut dyn Env,
    ) -> Step {
        let SessKind::Write(w) = &mut sess.kind else { unreachable!() };
        let builder = w.builder.as_mut().expect("builder set");
        // Descend as far as the node cache carries us; only go remote for
        // keys the cache cannot serve, and only once no descent advanced.
        while !builder.is_ready() {
            let fetches = builder.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        builder.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                for (target, keys) in group_by_partition(&missing, meta_providers) {
                    let req = fresh(&mut sess.outstanding, ReqRole::MetaGet);
                    env.send(target, Msg::GetMeta { req, keys });
                }
                w.phase = WritePhase::MetaResolve;
                return Step::Continue;
            }
            // Some descent advanced; recompute the frontier before
            // deciding what (if anything) must still be fetched.
        }
        // Resolved: emit nodes and store them.
        let (nodes, root) = builder.build(&w.chunks);
        w.root = Some(root);
        let mut per_provider: HashMap<NodeId, Vec<(NodeKey, MetaNode)>> = HashMap::new();
        for (k, n) in nodes {
            // The writer will likely read (or extend) this version soon:
            // warm the cache with the nodes we just built.
            meta_cache.insert(k, n.clone());
            let target = meta_providers[partition(&k, meta_providers.len())];
            per_provider.entry(target).or_default().push((k, n));
        }
        let mut targets: Vec<NodeId> = per_provider.keys().copied().collect();
        targets.sort();
        for target in targets {
            let nodes = per_provider.remove(&target).expect("present");
            let req = fresh(&mut sess.outstanding, ReqRole::Plain);
            env.send(target, Msg::PutMeta { req, nodes });
        }
        let _ = client;
        w.phase = WritePhase::MetaPut;
        Step::Continue
    }

    /// Issue the next round of metadata fetches for a read session, or
    /// start fetching chunks once the descent completes.
    fn read_meta_step(
        client: ClientId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        sess: &mut Session,
        env: &mut dyn Env,
    ) -> Step {
        let SessKind::Read(r) = &mut sess.kind else { unreachable!() };
        let reader = r.reader.as_mut().expect("reader set");
        // Descend through cached nodes without leaving the client; a warm
        // cache turns the whole level-by-level descent into local work.
        while !reader.is_done() {
            let fetches = reader.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        reader.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                if cfg.meta_range_fetch && !r.range_used {
                    // Cold cache: instead of walking the tree one level
                    // per round trip, ask every metadata provider for its
                    // slice of the read path in one bulk query. Nodes are
                    // hash-partitioned, so no single provider holds a full
                    // root-to-leaf path — the broadcast is still one
                    // logical round trip, replacing O(depth) of them.
                    r.range_used = true;
                    let (version, query) = r.range_query();
                    for target in meta_providers {
                        let req = fresh(
                            &mut sess.outstanding,
                            ReqRole::MetaRange { target: *target },
                        );
                        env.send(
                            *target,
                            Msg::GetMetaRange {
                                req,
                                blob: r.blob,
                                version,
                                query,
                                after: None,
                                max_nodes: cfg.meta_range_max_nodes,
                            },
                        );
                    }
                } else {
                    for (target, keys) in group_by_partition(&missing, meta_providers) {
                        let req = fresh(&mut sess.outstanding, ReqRole::MetaGet);
                        env.send(target, Msg::GetMeta { req, keys });
                    }
                }
                r.phase = ReadPhase::Meta;
                return Step::Continue;
            }
        }
        let reader = r.reader.take().expect("reader set");
        let info = r.info.as_ref().expect("info set");
        let page = info.page_size;
        let sources = reader.into_sources();
        let mut jobs: Vec<(usize, ChunkDescriptor)> = Vec::new();
        for (idx, src) in sources.into_iter().enumerate() {
            match src {
                PageSource::Hole { .. } => {
                    // Holes are stored as size-only placeholders; assembly
                    // turns them into real zero bytes when the read mixes
                    // them with real-data chunks.
                    r.parts[idx] = Some(Payload::Sim(page));
                }
                PageSource::Chunk(desc) if desc.replicas.is_empty() => {
                    // A tombstone leaf written by stalled-write recovery:
                    // the page was never stored, read it as zeros.
                    r.parts[idx] = Some(Payload::Sim(page));
                }
                PageSource::Chunk(desc) => jobs.push((idx, desc)),
            }
        }
        if jobs.is_empty() {
            return Self::assemble(sess, cfg.materialize_zeros);
        }
        // Pick a replica per chunk (one RNG draw each, in page order),
        // group fetches by chosen provider in first-seen order — the
        // schedule stays deterministic — then open the in-flight window;
        // each reply refills one slot. A provider serving several of this
        // read's chunks gets them in one batched round trip instead of
        // one request per chunk.
        let mut groups: Vec<(NodeId, Vec<(usize, ChunkDescriptor)>)> = Vec::new();
        for (idx, desc) in jobs {
            let pick = env.rng().random_range(0..desc.replicas.len());
            let target = desc.replicas[pick];
            match groups.iter_mut().find(|(t, _)| *t == target) {
                Some((_, items)) => items.push((idx, desc)),
                None => groups.push((target, vec![(idx, desc)])),
            }
        }
        groups.reverse(); // pop() = next batch, in first-seen order
        r.pending_gets = groups;
        let window = if cfg.chunk_window == 0 { usize::MAX } else { cfg.chunk_window };
        while sess.outstanding.len() < window {
            let Some((target, items)) = r.pending_gets.pop() else { break };
            Self::issue_chunk_get_batch(
                client,
                cfg.chunk_timeout,
                fresh,
                &mut sess.outstanding,
                target,
                items,
                env,
            );
        }
        r.phase = ReadPhase::Chunks;
        Step::Continue
    }

    /// Send one provider's queued chunk stores: a lone chunk as a plain
    /// `PutChunk`, several as one `PutChunkBatch` round trip. The items
    /// are kept in the request's role so an enabled [`RetryPolicy`] can
    /// re-send them (payloads are refcounted views — no data is copied);
    /// the policy also arms the per-RPC deadline here.
    fn issue_chunk_put(
        client: ClientId,
        retry: RetryPolicy,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        target: NodeId,
        items: Vec<(ChunkKey, Payload)>,
        env: &mut dyn Env,
    ) {
        let req = fresh(
            outstanding,
            ReqRole::ChunkPut { target, items: items.clone(), attempts: 1 },
        );
        if items.len() == 1 {
            let (key, data) = items.into_iter().next().expect("one item");
            env.send(target, Msg::PutChunk { req, client, key, data });
        } else {
            env.send(target, Msg::PutChunkBatch { req, client, items });
        }
        if retry.enabled() {
            env.set_timer(retry.put_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
        }
    }

    /// Send one chunk fetch to a randomly chosen replica, arming the
    /// per-chunk failover timer.
    #[allow(clippy::too_many_arguments)]
    fn issue_chunk_get(
        client: ClientId,
        chunk_timeout: SimDuration,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        idx: usize,
        desc: ChunkDescriptor,
        refreshed: bool,
        env: &mut dyn Env,
    ) {
        let first = env.rng().random_range(0..desc.replicas.len());
        let target = desc.replicas[first];
        let key = desc.key;
        let req = fresh(
            outstanding,
            ReqRole::ChunkGet { idx, desc, first, attempts: 1, refreshed },
        );
        env.send(target, Msg::GetChunk { req, client, key });
        env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Send one provider's queued chunk fetches: a lone chunk as a plain
    /// `GetChunk` (classic per-chunk replica walk), several as one
    /// `GetChunkBatch` round trip. One deadline guards the whole batch;
    /// items that fail or go unanswered re-enter the per-chunk walk
    /// individually, each arming its own deadline.
    fn issue_chunk_get_batch(
        client: ClientId,
        chunk_timeout: SimDuration,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        target: NodeId,
        items: Vec<(usize, ChunkDescriptor)>,
        env: &mut dyn Env,
    ) {
        if items.len() == 1 {
            let (idx, desc) = items.into_iter().next().expect("one item");
            let first = desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
            let key = desc.key;
            let req = fresh(
                outstanding,
                ReqRole::ChunkGet { idx, desc, first, attempts: 1, refreshed: false },
            );
            env.send(target, Msg::GetChunk { req, client, key });
            env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
            return;
        }
        let keys: Vec<ChunkKey> = items.iter().map(|(_, d)| d.key).collect();
        let req = fresh(outstanding, ReqRole::ChunkGetBatch { target, items });
        env.send(target, Msg::GetChunkBatch { req, client, keys });
        env.set_timer(chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
    }

    /// Walk a failed chunk fetch to the next replica (arming a fresh
    /// per-chunk deadline) or — once every replica was tried — re-fetch
    /// the chunk's leaf in case a replication repair moved it. `Err(key)`
    /// means the chunk is unavailable and the read must fail.
    #[allow(clippy::too_many_arguments)]
    fn failover_chunk_get(
        client: ClientId,
        cfg: ClientConfig,
        meta_providers: &[NodeId],
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        idx: usize,
        desc: ChunkDescriptor,
        first: usize,
        attempts: usize,
        env: &mut dyn Env,
    ) -> Result<(), ChunkKey> {
        if attempts < desc.replicas.len() {
            env.incr("client.replica_walks", 1);
            let target = desc.replicas[(first + attempts) % desc.replicas.len()];
            let key = desc.key;
            let req = fresh(
                outstanding,
                ReqRole::ChunkGet { idx, desc, first, attempts: attempts + 1, refreshed: false },
            );
            env.send(target, Msg::GetChunk { req, client, key });
            env.set_timer(cfg.chunk_timeout, CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req);
            return Ok(());
        }
        if cfg.retry.enabled() {
            // Degraded read: every known replica failed, but a replication
            // repair may have patched the leaf with fresh replicas since
            // this descent cached it. Re-fetch the leaf directly
            // (bypassing the cache) and retry against whatever placement
            // it records.
            let key = NodeKey {
                blob: desc.key.blob,
                version: desc.key.version,
                range: NodeRange::new(desc.key.page, 1),
            };
            let owner = meta_providers[partition(&key, meta_providers.len())];
            let req = fresh(outstanding, ReqRole::LeafRefresh { idx, desc });
            env.send(owner, Msg::GetMeta { req, keys: vec![key] });
            return Ok(());
        }
        Err(desc.key)
    }

    /// All parts present: splice the requested byte range out of the page
    /// row and complete the read.
    fn assemble(sess: &mut Session, materialize_zeros: bool) -> Step {
        let SessKind::Read(r) = &mut sess.kind else { unreachable!() };
        let info = r.info.as_ref().expect("info set");
        let page = info.page_size;
        let skip = r.offset - r.page0 * page;
        let total = r.len;
        // Zero-copy fast path: a range inside a single real-data page is
        // served as a refcounted sub-slice of the stored chunk — no copy
        // from provider buffer to client buffer anywhere on the path.
        if r.parts.len() == 1 {
            if let Some(Payload::Data(b)) = &r.parts[0] {
                if (skip + total) as usize <= b.len() {
                    let data = Payload::Data(b.slice(skip as usize..(skip + total) as usize));
                    return Step::Done(
                        Ok(OpOutput::Read { data, version: info.version }),
                        total,
                    );
                }
            }
        }
        // Real bytes iff every non-hole part carries real bytes and the
        // deployment stores real data; holes become zero bytes then.
        let any_real = r.parts.iter().flatten().any(|p| matches!(p, Payload::Data(_)));
        let data = if any_real || materialize_zeros {
            let mut buf = BytesMut::with_capacity(total as usize);
            let mut remaining = total;
            let mut offset_in_part = skip;
            for part in r.parts.iter().flatten() {
                if remaining == 0 {
                    break;
                }
                let avail = page - offset_in_part;
                let take = avail.min(remaining);
                match part {
                    Payload::Data(b) => {
                        let s = offset_in_part as usize;
                        let e = ((offset_in_part + take) as usize).min(b.len());
                        if s < b.len() {
                            buf.extend_from_slice(&b[s..e]);
                        }
                        // Chunks are always full pages; pad defensively.
                        let got = e.saturating_sub(s) as u64;
                        if got < take {
                            buf.extend(std::iter::repeat_n(0u8, (take - got) as usize));
                        }
                    }
                    Payload::Sim(_) => {
                        buf.extend(std::iter::repeat_n(0u8, take as usize));
                    }
                }
                remaining -= take;
                offset_in_part = 0;
            }
            Payload::Data(buf.freeze())
        } else {
            Payload::Sim(total)
        };
        let version = info.version;
        let bytes = total;
        Step::Done(Ok(OpOutput::Read { data, version }), bytes)
    }

    // ---- streaming sessions ------------------------------------------

    /// A zero-duration completion (sub-ops that finish synchronously).
    fn instant(tag: u64, now: SimTime, result: Result<OpOutput, BlobError>) -> Completion {
        Completion { tag, result, started: now, finished: now, bytes: 0 }
    }

    /// Take (and clear) a stored fatal error from a stream session.
    fn stream_take_failure(&mut self, sid: u64) -> Option<BlobError> {
        match self.sessions.get_mut(&sid).map(|s| &mut s.kind) {
            Some(SessKind::WriteStream(w)) => w.failed.take(),
            Some(SessKind::ReadStream(r)) => r.failed.take(),
            _ => None,
        }
    }

    /// Tear a stream session down and deliver `err` to the sub-operation
    /// tagged `tag` (used when a stored failure is picked up, or when a
    /// sub-operation itself turns out to be fatal).
    fn stream_reap(
        &mut self,
        env: &mut dyn Env,
        sid: u64,
        tag: u64,
        err: BlobError,
    ) -> Vec<Completion> {
        let now = env.now();
        if let Some(sess) = self.sessions.remove(&sid) {
            for req in &sess.outstanding {
                self.req_index.remove(req);
            }
            if let Some(t) = &sess.trace {
                Self::record_stage(env, t, Self::stage_of(&sess.kind), now);
                Self::record_op(env, t, sess.started, now);
            }
        }
        vec![Self::instant(tag, now, Err(err))]
    }

    /// Idle-timeout a stream session: the error goes to the parked
    /// sub-operation if one is waiting, and the stream is torn down.
    fn fail_stream(&mut self, env: &mut dyn Env, sid: u64, err: BlobError) -> Vec<Completion> {
        let now = env.now();
        let Some(mut sess) = self.sessions.remove(&sid) else { return vec![] };
        for req in &sess.outstanding {
            self.req_index.remove(req);
        }
        let waiter = match &mut sess.kind {
            SessKind::WriteStream(w) => w.waiter.take(),
            SessKind::ReadStream(r) => r.waiter.take(),
            _ => None,
        };
        if let Some(t) = &sess.trace {
            Self::record_stage(env, t, Self::stage_of(&sess.kind), now);
            Self::record_op(env, t, sess.started, now);
        }
        match waiter {
            Some(wt) => vec![Completion {
                tag: wt.tag,
                result: Err(err),
                started: wt.started,
                finished: now,
                bytes: 0,
            }],
            None => vec![],
        }
    }

    /// Close a stream (write-stream abort or read-stream close).
    /// Idempotent: closing an already-gone stream succeeds, so handle
    /// drop paths can race eof/timeout teardown safely.
    fn stream_close(&mut self, env: &mut dyn Env, sid: u64, tag: u64) -> Vec<Completion> {
        let now = env.now();
        let is_stream = matches!(
            self.sessions.get(&sid).map(|s| &s.kind),
            Some(SessKind::WriteStream(_) | SessKind::ReadStream(_))
        );
        if !is_stream {
            if self.sessions.contains_key(&sid) {
                return vec![Self::instant(tag, now, Err(BlobError::Protocol("not a stream")))];
            }
            return vec![Self::instant(tag, now, Ok(OpOutput::StreamClosed { stream: sid }))];
        }
        let mut sess = self.sessions.remove(&sid).expect("checked present");
        for req in &sess.outstanding {
            self.req_index.remove(req);
        }
        let waiter = match &mut sess.kind {
            SessKind::WriteStream(w) => w.waiter.take(),
            SessKind::ReadStream(r) => r.waiter.take(),
            _ => None,
        };
        if let Some(t) = &sess.trace {
            Self::record_stage(env, t, Self::stage_of(&sess.kind), now);
            Self::record_op(env, t, sess.started, now);
        }
        let mut out = Vec::new();
        // Handles are half-duplex, so no sub-operation should be parked
        // here — but a racing caller gets a clean error, not silence.
        if let Some(wt) = waiter {
            out.push(Completion {
                tag: wt.tag,
                result: Err(BlobError::Protocol("stream closed")),
                started: wt.started,
                finished: now,
                bytes: 0,
            });
        }
        out.push(Self::instant(tag, now, Ok(OpOutput::StreamClosed { stream: sid })));
        out
    }

    /// Push bytes into an open write stream (see
    /// [`ClientOp::FeedWriteStream`]). Completes synchronously when the
    /// stream has headroom; otherwise the completion parks until enough
    /// chunk acks arrive.
    fn wstream_feed(
        &mut self,
        env: &mut dyn Env,
        sid: u64,
        data: Payload,
        tag: u64,
    ) -> Vec<Completion> {
        let now = env.now();
        if let Some(err) = self.stream_take_failure(sid) {
            return self.stream_reap(env, sid, tag, err);
        }
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("unknown stream")))];
        };
        let SessKind::WriteStream(w) = &mut sess.kind else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("not a write stream")))];
        };
        if w.waiter.is_some() {
            return vec![Self::instant(
                tag,
                now,
                Err(BlobError::Protocol("stream sub-operation already in flight")),
            )];
        }
        if w.phase != WStreamPhase::Streaming {
            return vec![Self::instant(
                tag,
                now,
                Err(BlobError::Protocol("stream is not accepting feeds")),
            )];
        }
        let len = data.len();
        let declared = w.ticket.as_ref().map(|t| t.len).unwrap_or(0);
        if w.fed + len > declared {
            return self.stream_reap(
                env,
                sid,
                tag,
                BlobError::Protocol("feed exceeds the declared stream length"),
            );
        }
        match data {
            Payload::Data(b) => {
                if w.data_mode == Some(false) {
                    return self.stream_reap(
                        env,
                        sid,
                        tag,
                        BlobError::Protocol("mixed real and simulated payloads in one stream"),
                    );
                }
                w.data_mode = Some(true);
                // Zero-copy fast path: with an empty accumulator, whole
                // pages are cut straight off the fed buffer as refcounted
                // sub-slices; only a sub-page tail goes through `acc`.
                let page = w.page_size() as usize;
                let mut b = b;
                if page > 0 && w.acc.is_empty() {
                    let mut at = 0usize;
                    while b.len() - at >= page && (w.next_page as usize) < w.chunks.len() {
                        let piece = Payload::Data(b.slice(at..at + page));
                        Self::wstream_enqueue(w, piece);
                        at += page;
                    }
                    if at > 0 {
                        b = b.slice(at..b.len());
                    }
                }
                if !b.is_empty() {
                    w.acc.extend_from_slice(&b);
                }
            }
            Payload::Sim(n) => {
                if w.data_mode == Some(true) {
                    return self.stream_reap(
                        env,
                        sid,
                        tag,
                        BlobError::Protocol("mixed real and simulated payloads in one stream"),
                    );
                }
                w.data_mode = Some(false);
                w.acc_sim += n;
            }
        }
        w.fed += len;
        w.last_activity = now;
        Self::wstream_cut(w);
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));
        let next_req = &mut self.next_req;
        let req_index = &mut self.req_index;
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };
        Self::wstream_pump(self.id, self.cfg, &mut fresh, &mut sess.outstanding, w, env);
        env.set_trace_ctx(None);
        let buffered = w.buffered();
        if buffered > w.peak_buffered {
            w.peak_buffered = buffered;
            env.record("client.stream_buffered_bytes", buffered as f64);
        }
        if w.feed_ready(self.cfg.chunk_window) {
            return vec![Completion {
                tag,
                result: Ok(OpOutput::Fed { stream: sid }),
                started: now,
                finished: now,
                bytes: len,
            }];
        }
        w.waiter = Some(StreamWaiter { tag, started: now, kind: WaiterKind::Feed, bytes: len });
        vec![]
    }

    /// Publish an open write stream (see [`ClientOp::CommitWriteStream`]):
    /// drain in-flight chunk stores, then run the metadata/commit tail of
    /// the write protocol.
    fn wstream_commit(&mut self, env: &mut dyn Env, sid: u64, tag: u64) -> Vec<Completion> {
        let now = env.now();
        if let Some(err) = self.stream_take_failure(sid) {
            return self.stream_reap(env, sid, tag, err);
        }
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("unknown stream")))];
        };
        let stage_before = Self::stage_of(&sess.kind);
        let SessKind::WriteStream(w) = &mut sess.kind else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("not a write stream")))];
        };
        if w.waiter.is_some() {
            return vec![Self::instant(
                tag,
                now,
                Err(BlobError::Protocol("stream sub-operation already in flight")),
            )];
        }
        if w.phase != WStreamPhase::Streaming {
            return vec![Self::instant(
                tag,
                now,
                Err(BlobError::Protocol("stream is not accepting a commit")),
            )];
        }
        let declared = w.ticket.as_ref().map(|t| t.len).unwrap_or(0);
        if w.fed != declared {
            return self.stream_reap(
                env,
                sid,
                tag,
                BlobError::Protocol("commit before the declared length was fed"),
            );
        }
        w.phase = WStreamPhase::Draining;
        w.last_activity = now;
        w.waiter = Some(StreamWaiter { tag, started: now, kind: WaiterKind::Commit, bytes: declared });
        if !sess.outstanding.is_empty() {
            return self.stream_epilogue(env, sid, stage_before, StreamStep::Park);
        }
        debug_assert!(w.queued.is_empty(), "queued chunks with an empty in-flight window");
        // Nothing in flight: go straight to the metadata phase.
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));
        let next_req = &mut self.next_req;
        let req_index = &mut self.req_index;
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };
        let step = Self::wstream_meta_step(
            &self.meta_providers,
            &mut self.meta_cache,
            &mut fresh,
            &mut sess.outstanding,
            w,
            env,
        );
        self.stream_epilogue(env, sid, stage_before, step)
    }

    /// Pull the next window of bytes from an open read stream (see
    /// [`ClientOp::ReadStreamNext`]).
    fn rstream_next(&mut self, env: &mut dyn Env, sid: u64, tag: u64) -> Vec<Completion> {
        let now = env.now();
        if let Some(err) = self.stream_take_failure(sid) {
            return self.stream_reap(env, sid, tag, err);
        }
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("unknown stream")))];
        };
        let stage_before = Self::stage_of(&sess.kind);
        let SessKind::ReadStream(r) = &mut sess.kind else {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("not a read stream")))];
        };
        if r.waiter.is_some() {
            return vec![Self::instant(
                tag,
                now,
                Err(BlobError::Protocol("stream sub-operation already in flight")),
            )];
        }
        if r.phase != RStreamPhase::Idle {
            return vec![Self::instant(tag, now, Err(BlobError::Protocol("stream is not open")))];
        }
        r.last_activity = now;
        // Past the last page: deliver eof, auto-closing the stream.
        if r.cursor >= r.sources.len() {
            let data = if self.cfg.materialize_zeros {
                Payload::Data(bytes::Bytes::new())
            } else {
                Payload::Sim(0)
            };
            r.waiter = Some(StreamWaiter { tag, started: now, kind: WaiterKind::Next, bytes: 0 });
            let out = OpOutput::ReadChunk { stream: sid, data, eof: true };
            return self.stream_epilogue(env, sid, stage_before, StreamStep::Finish(Ok(out), 0));
        }
        let page = r.info.as_ref().expect("info set").page_size;
        let remaining = r.sources.len() - r.cursor;
        // Besides the pipelining window, cap one delivered batch below
        // 32 MiB: glibc never raises its dynamic mmap threshold past that
        // (`DEFAULT_MMAP_THRESHOLD_MAX`), so a ≥ 32 MiB assembly buffer is
        // freshly mmap'd — and page-fault-zeroed — on every `next()`,
        // which measures ~6× slower than reusable sub-threshold buffers
        // (E15). The memory bound only tightens.
        const BATCH_BYTES_CAP: u64 = 16 << 20;
        let page_cap = ((BATCH_BYTES_CAP / page.max(1)) as usize).max(1);
        let window = if self.cfg.chunk_window == 0 {
            remaining.min(page_cap)
        } else {
            self.cfg.chunk_window.min(remaining).min(page_cap)
        };
        r.batch_base = r.cursor;
        r.parts = (0..window).map(|_| None).collect();
        r.cursor += window;
        let mut jobs: Vec<(usize, ChunkDescriptor)> = Vec::new();
        for i in 0..window {
            match r.sources[r.batch_base + i].clone() {
                PageSource::Hole { .. } => r.parts[i] = Some(Payload::Sim(page)),
                PageSource::Chunk(desc) if desc.replicas.is_empty() => {
                    // Tombstone leaf from stalled-write recovery: zeros.
                    r.parts[i] = Some(Payload::Sim(page));
                }
                PageSource::Chunk(desc) => jobs.push((i, desc)),
            }
        }
        if jobs.is_empty() {
            let (result, bytes, eof) = Self::rstream_assemble(sid, r, self.cfg.materialize_zeros);
            r.waiter = Some(StreamWaiter { tag, started: now, kind: WaiterKind::Next, bytes });
            let step = if eof {
                StreamStep::Finish(result, bytes)
            } else {
                StreamStep::Complete(result, bytes)
            };
            return self.stream_epilogue(env, sid, stage_before, step);
        }
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));
        let mut groups: Vec<(NodeId, Vec<(usize, ChunkDescriptor)>)> = Vec::new();
        for (idx, desc) in jobs {
            let pick = env.rng().random_range(0..desc.replicas.len());
            let target = desc.replicas[pick];
            match groups.iter_mut().find(|(t, _)| *t == target) {
                Some((_, items)) => items.push((idx, desc)),
                None => groups.push((target, vec![(idx, desc)])),
            }
        }
        let next_req = &mut self.next_req;
        let req_index = &mut self.req_index;
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };
        for (target, items) in groups {
            Self::issue_chunk_get_batch(
                self.id,
                self.cfg.chunk_timeout,
                &mut fresh,
                &mut sess.outstanding,
                target,
                items,
                env,
            );
        }
        env.set_trace_ctx(None);
        r.phase = RStreamPhase::Fetching;
        r.waiter = Some(StreamWaiter { tag, started: now, kind: WaiterKind::Next, bytes: 0 });
        vec![]
    }

    /// Route a message to a write-stream session's state machine.
    fn wstream_msg(
        &mut self,
        env: &mut dyn Env,
        sid: u64,
        role: ReqRole,
        msg: Msg,
    ) -> Vec<Completion> {
        let sess = self.sessions.get_mut(&sid).expect("stream session present");
        let stage_before = Self::stage_of(&sess.kind);
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));
        let step = Self::wstream_step(
            self.id,
            self.vman,
            self.pman,
            &self.meta_providers,
            self.cfg,
            &mut self.meta_cache,
            &mut self.next_req,
            &mut self.req_index,
            sid,
            sess,
            role,
            msg,
            env,
        );
        self.stream_epilogue(env, sid, stage_before, step)
    }

    /// Route a message to a read-stream session's state machine.
    fn rstream_msg(
        &mut self,
        env: &mut dyn Env,
        sid: u64,
        role: ReqRole,
        msg: Msg,
    ) -> Vec<Completion> {
        let sess = self.sessions.get_mut(&sid).expect("stream session present");
        let stage_before = Self::stage_of(&sess.kind);
        env.set_trace_ctx(sess.trace.as_ref().map(|t| t.ctx));
        let step = Self::rstream_step(
            self.id,
            &self.meta_providers,
            self.cfg,
            &mut self.meta_cache,
            &mut self.next_req,
            &mut self.req_index,
            sid,
            sess,
            role,
            msg,
            env,
        );
        self.stream_epilogue(env, sid, stage_before, step)
    }

    /// Apply a [`StreamStep`] to the session: deliver waiter completions,
    /// tear the stream down on [`StreamStep::Finish`], store fatal errors,
    /// and keep the stage-span bookkeeping in line with the classic path.
    fn stream_epilogue(
        &mut self,
        env: &mut dyn Env,
        sid: u64,
        stage_before: &'static str,
        step: StreamStep,
    ) -> Vec<Completion> {
        let now = env.now();
        let out = match step {
            StreamStep::Park => {
                self.stream_stage_note(env, sid, stage_before);
                vec![]
            }
            StreamStep::Complete(result, bytes) => {
                self.stream_stage_note(env, sid, stage_before);
                let mut out = Vec::new();
                if let Some(sess) = self.sessions.get_mut(&sid) {
                    let waiter = match &mut sess.kind {
                        SessKind::WriteStream(w) => {
                            w.last_activity = now;
                            w.waiter.take()
                        }
                        SessKind::ReadStream(r) => {
                            r.last_activity = now;
                            r.waiter.take()
                        }
                        _ => None,
                    };
                    if let Some(wt) = waiter {
                        if let Some(t) = &sess.trace {
                            Self::record_stream_span(env, t, sub_op_label(wt.kind), wt.started, now);
                        }
                        out.push(Completion {
                            tag: wt.tag,
                            result,
                            started: wt.started,
                            finished: now,
                            bytes,
                        });
                    }
                }
                out
            }
            StreamStep::Finish(result, bytes) => {
                let mut out = Vec::new();
                if let Some(mut sess) = self.sessions.remove(&sid) {
                    for req in &sess.outstanding {
                        self.req_index.remove(req);
                    }
                    let waiter = match &mut sess.kind {
                        SessKind::WriteStream(w) => w.waiter.take(),
                        SessKind::ReadStream(r) => r.waiter.take(),
                        _ => None,
                    };
                    if let Some(t) = &sess.trace {
                        if let Some(wt) = &waiter {
                            Self::record_stream_span(env, t, sub_op_label(wt.kind), wt.started, now);
                        }
                        Self::record_stage(env, t, stage_before, now);
                        Self::record_op(env, t, sess.started, now);
                    }
                    if let Some(wt) = waiter {
                        out.push(Completion {
                            tag: wt.tag,
                            result,
                            started: wt.started,
                            finished: now,
                            bytes,
                        });
                    }
                }
                out
            }
            StreamStep::Fatal(err) => {
                self.stream_stage_note(env, sid, stage_before);
                if let Some(sess) = self.sessions.get_mut(&sid) {
                    let reqs: Vec<u64> = sess.outstanding.drain().collect();
                    for req in reqs {
                        self.req_index.remove(&req);
                    }
                    match &mut sess.kind {
                        SessKind::WriteStream(w) => w.failed = Some(err),
                        SessKind::ReadStream(r) => r.failed = Some(err),
                        _ => {}
                    }
                }
                vec![]
            }
        };
        env.set_trace_ctx(None);
        out
    }

    /// Close the previous stage's span if the stream just moved stages.
    fn stream_stage_note(&mut self, env: &mut dyn Env, sid: u64, stage_before: &'static str) {
        if let Some(sess) = self.sessions.get_mut(&sid) {
            if Self::stage_of(&sess.kind) != stage_before {
                if let Some(t) = sess.trace.as_mut() {
                    let now = env.now();
                    Self::record_stage(env, &*t, stage_before, now);
                    t.stage_start = now;
                }
            }
        }
    }

    /// Emit a Stage span for one stream sub-operation (the open
    /// handshake, a parked feed, the commit drain, a pull) with an
    /// explicit start time. Synchronous completions (start == end) carry
    /// no latency information and are skipped.
    fn record_stream_span(
        env: &mut dyn Env,
        t: &OpTrace,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if start == end {
            return;
        }
        let Some(sink) = env.span_sink() else { return };
        sink.record(SpanRecord {
            trace: t.ctx.trace_id,
            span: sink.next_id(),
            parent: t.ctx.span_id,
            service: "client",
            op: label,
            node: env.id().0 as u64,
            start_ns: start.as_nanos(),
            end_ns: end.as_nanos(),
            kind: SpanKind::Stage,
            class: SpanClass::Control,
            queue_ns: 0,
            xfer_ns: 0,
            wire_ns: 0,
        });
    }

    /// Queue one full-page payload for the next page slot, one send per
    /// replica. Each cut page is counted once in `unacked_bytes` until
    /// its last replica acks.
    fn wstream_enqueue(w: &mut WriteStreamSess, payload: Payload) {
        let desc = w.chunks[w.next_page as usize].clone();
        if !desc.replicas.is_empty() {
            w.page_acks.insert(desc.key.page, desc.replicas.len() as u32);
            w.unacked_bytes += desc.size;
            for replica in &desc.replicas {
                w.queued.push_back((*replica, desc.key, payload.clone()));
            }
        }
        w.next_page += 1;
    }

    /// Cut full pages off the stream's accumulator into per-replica
    /// queued sends.
    fn wstream_cut(w: &mut WriteStreamSess) {
        let page = w.page_size();
        if page == 0 {
            return;
        }
        while (w.acc.len() as u64 >= page || w.acc_sim >= page)
            && (w.next_page as usize) < w.chunks.len()
        {
            let payload = if w.acc.len() as u64 >= page {
                Payload::Data(w.acc.split_to(page as usize).freeze())
            } else {
                w.acc_sim -= page;
                Payload::Sim(page)
            };
            Self::wstream_enqueue(w, payload);
        }
    }

    /// Issue queued chunk sends while the in-flight window has room. One
    /// issue takes every queued item headed for the same provider — the
    /// same per-provider batching as the whole-buffer write path.
    fn wstream_pump(
        client: ClientId,
        cfg: ClientConfig,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        w: &mut WriteStreamSess,
        env: &mut dyn Env,
    ) {
        let window = if cfg.chunk_window == 0 { usize::MAX } else { cfg.chunk_window };
        while outstanding.len() < window && !w.queued.is_empty() {
            let target = w.queued.front().expect("non-empty").0;
            let mut items: Vec<(ChunkKey, Payload)> = Vec::new();
            let mut rest = std::collections::VecDeque::new();
            for (t, key, data) in w.queued.drain(..) {
                if t == target {
                    items.push((key, data));
                } else {
                    rest.push_back((t, key, data));
                }
            }
            w.queued = rest;
            Self::issue_chunk_put(client, cfg.retry, fresh, outstanding, target, items, env);
        }
    }

    /// The metadata/commit tail of a draining write stream: build (or
    /// keep resolving) the tree, then store nodes — the same steps as
    /// [`write_meta_step`](Self::write_meta_step), on stream state.
    fn wstream_meta_step(
        meta_providers: &[NodeId],
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        w: &mut WriteStreamSess,
        env: &mut dyn Env,
    ) -> StreamStep {
        if w.builder.is_none() {
            let ticket = w.ticket.clone().expect("ticket set");
            w.builder = Some(TreeBuilder::new(
                w.blob,
                ticket.version,
                ticket.interval(),
                ticket.page_size,
                ticket.new_size,
                ticket.base,
                ticket.pending.clone(),
            ));
        }
        let builder = w.builder.as_mut().expect("builder set");
        while !builder.is_ready() {
            let fetches = builder.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        builder.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                for (target, keys) in group_by_partition(&missing, meta_providers) {
                    let req = fresh(outstanding, ReqRole::MetaGet);
                    env.send(target, Msg::GetMeta { req, keys });
                }
                w.phase = WStreamPhase::MetaResolve;
                return StreamStep::Park;
            }
        }
        let (nodes, root) = builder.build(&w.chunks);
        w.root = Some(root);
        let mut per_provider: HashMap<NodeId, Vec<(NodeKey, MetaNode)>> = HashMap::new();
        for (k, n) in nodes {
            meta_cache.insert(k, n.clone());
            let target = meta_providers[partition(&k, meta_providers.len())];
            per_provider.entry(target).or_default().push((k, n));
        }
        let mut targets: Vec<NodeId> = per_provider.keys().copied().collect();
        targets.sort();
        for target in targets {
            let nodes = per_provider.remove(&target).expect("present");
            let req = fresh(outstanding, ReqRole::Plain);
            env.send(target, Msg::PutMeta { req, nodes });
        }
        w.phase = WStreamPhase::MetaPut;
        StreamStep::Park
    }

    /// One write-stream protocol step. Static to sidestep split borrows.
    #[allow(clippy::too_many_arguments)]
    fn wstream_step(
        client: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        next_req: &mut u64,
        req_index: &mut HashMap<u64, (u64, ReqRole)>,
        sid: u64,
        sess: &mut Session,
        role: ReqRole,
        msg: Msg,
        env: &mut dyn Env,
    ) -> StreamStep {
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };
        let SessKind::WriteStream(w) = &mut sess.kind else {
            unreachable!("write-stream session")
        };
        w.last_activity = env.now();
        match (w.phase, msg) {
            (WStreamPhase::Ticket, Msg::TicketOk { ticket, .. }) => {
                let pages = ticket.interval().len;
                let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                env.send(
                    pman,
                    Msg::Alloc {
                        req,
                        client,
                        chunks: pages as u32,
                        replication: ticket.replication,
                        chunk_size: ticket.page_size,
                    },
                );
                w.ticket = Some(ticket);
                w.phase = WStreamPhase::Alloc;
                StreamStep::Park
            }
            (WStreamPhase::Ticket, Msg::TicketErr { err, .. }) => StreamStep::Finish(Err(err), 0),

            (WStreamPhase::Alloc, Msg::AllocOk { placement, .. }) => {
                let ticket = w.ticket.as_ref().expect("ticket set");
                let interval = ticket.interval();
                debug_assert_eq!(placement.len() as u64, interval.len);
                let page = ticket.page_size;
                w.chunks = placement
                    .iter()
                    .enumerate()
                    .map(|(i, replicas)| ChunkDescriptor {
                        key: ChunkKey {
                            blob: w.blob,
                            version: ticket.version,
                            page: interval.start + i as u64,
                        },
                        replicas: replicas.clone(),
                        size: page,
                    })
                    .collect();
                w.phase = WStreamPhase::Streaming;
                StreamStep::Complete(
                    Ok(OpOutput::WriteStreamOpened {
                        stream: sid,
                        version: ticket.version,
                        offset: ticket.offset,
                        len: ticket.len,
                        page_size: page,
                    }),
                    0,
                )
            }
            (WStreamPhase::Alloc, Msg::AllocErr { available, .. }) => {
                let requested =
                    w.ticket.as_ref().map(|t| t.interval().len as u32).unwrap_or(0);
                StreamStep::Finish(Err(BlobError::AllocationFailed { requested, available }), 0)
            }

            (WStreamPhase::Streaming | WStreamPhase::Draining, Msg::PutChunkOk { .. }) => {
                if let ReqRole::ChunkPut { items, .. } = role {
                    for (key, data) in &items {
                        if let Some(n) = w.page_acks.get_mut(&key.page) {
                            *n -= 1;
                            if *n == 0 {
                                w.page_acks.remove(&key.page);
                                w.unacked_bytes = w.unacked_bytes.saturating_sub(data.len());
                            }
                        }
                    }
                }
                Self::wstream_pump(client, cfg, &mut fresh, &mut sess.outstanding, w, env);
                if w.phase == WStreamPhase::Draining && sess.outstanding.is_empty() {
                    return Self::wstream_meta_step(
                        meta_providers,
                        meta_cache,
                        &mut fresh,
                        &mut sess.outstanding,
                        w,
                        env,
                    );
                }
                if let Some(waiter) = &w.waiter {
                    if waiter.kind == WaiterKind::Feed && w.feed_ready(cfg.chunk_window) {
                        let bytes = waiter.bytes;
                        return StreamStep::Complete(Ok(OpOutput::Fed { stream: sid }), bytes);
                    }
                }
                StreamStep::Park
            }
            (WStreamPhase::Streaming | WStreamPhase::Draining, Msg::PutChunkErr { err, .. }) => {
                if err == ChunkErr::Blocked {
                    return wfail(w, BlobError::Blocked(client));
                }
                let ReqRole::ChunkPut { target, items, attempts } = role else {
                    return wfail(w, chunk_err(err, client));
                };
                if !cfg.retry.enabled() {
                    return wfail(w, chunk_err(err, client));
                }
                if err != ChunkErr::Full && attempts < cfg.retry.max_attempts {
                    env.incr("client.rpc_retries", 1);
                    let delay = cfg.retry.backoff(attempts);
                    let req = fresh(
                        &mut sess.outstanding,
                        ReqRole::ChunkPut { target, items, attempts: attempts + 1 },
                    );
                    env.set_timer(delay, CLIENT_TIMER_BIT | RETRY_TIMER_BIT | req);
                    return StreamStep::Park;
                }
                if w.reallocs < cfg.retry.max_reallocs {
                    w.reallocs += 1;
                    env.incr("client.reallocs", 1);
                    let page = w.page_size();
                    let chunks = items.len() as u32;
                    let req = fresh(
                        &mut sess.outstanding,
                        ReqRole::ReAlloc { failed: target, items },
                    );
                    env.send(
                        pman,
                        Msg::Alloc { req, client, chunks, replication: 1, chunk_size: page },
                    );
                    return StreamStep::Park;
                }
                match items.first() {
                    Some((key, _)) => wfail(w, BlobError::ChunkUnavailable(*key)),
                    None => wfail(w, chunk_err(err, client)),
                }
            }
            (WStreamPhase::Streaming | WStreamPhase::Draining, Msg::AllocOk { placement, .. }) => {
                // Replacement placements for chunk stores whose target
                // died: patch the descriptor table, re-send each chunk.
                let ReqRole::ReAlloc { failed, items } = role else {
                    return wfail(w, BlobError::Protocol("unexpected write-stream reply"));
                };
                debug_assert_eq!(placement.len(), items.len());
                let mut jobs: Vec<(NodeId, Vec<(ChunkKey, Payload)>)> = Vec::new();
                for ((key, data), replicas) in items.into_iter().zip(placement) {
                    let Some(&new_target) = replicas.first() else {
                        return wfail(w, BlobError::ChunkUnavailable(key));
                    };
                    if let Some(desc) = w.chunks.iter_mut().find(|d| d.key == key) {
                        for r in &mut desc.replicas {
                            if *r == failed {
                                *r = new_target;
                            }
                        }
                    }
                    match jobs.iter_mut().find(|(t, _)| *t == new_target) {
                        Some((_, batch)) => batch.push((key, data)),
                        None => jobs.push((new_target, vec![(key, data)])),
                    }
                }
                for (target, batch) in jobs {
                    Self::issue_chunk_put(
                        client,
                        cfg.retry,
                        &mut fresh,
                        &mut sess.outstanding,
                        target,
                        batch,
                        env,
                    );
                }
                StreamStep::Park
            }
            (WStreamPhase::Streaming | WStreamPhase::Draining, Msg::AllocErr { available, .. }) => {
                if let ReqRole::ReAlloc { items, .. } = role {
                    if let Some((key, _)) = items.first() {
                        return wfail(w, BlobError::ChunkUnavailable(*key));
                    }
                }
                wfail(w, BlobError::AllocationFailed { requested: 0, available })
            }

            (WStreamPhase::MetaResolve, Msg::GetMetaOk { nodes, .. }) => {
                let builder = w.builder.as_mut().expect("builder set");
                for (k, n) in nodes {
                    match n {
                        Some(node) => {
                            builder.supply(k, &node);
                            meta_cache.insert(k, node);
                        }
                        None => return StreamStep::Finish(Err(BlobError::MetaUnavailable), 0),
                    }
                }
                if !sess.outstanding.is_empty() {
                    return StreamStep::Park;
                }
                Self::wstream_meta_step(
                    meta_providers,
                    meta_cache,
                    &mut fresh,
                    &mut sess.outstanding,
                    w,
                    env,
                )
            }
            (WStreamPhase::MetaPut, Msg::PutMetaOk { .. }) => {
                if !sess.outstanding.is_empty() {
                    return StreamStep::Park;
                }
                let ticket = w.ticket.as_ref().expect("ticket set");
                let req = fresh(&mut sess.outstanding, ReqRole::Plain);
                env.send(
                    vman,
                    Msg::Commit {
                        req,
                        client,
                        blob: w.blob,
                        version: ticket.version,
                        root: w.root.expect("root set in meta phase"),
                        size: ticket.new_size,
                    },
                );
                w.phase = WStreamPhase::Commit;
                StreamStep::Park
            }
            (WStreamPhase::Commit, Msg::CommitOk { version, .. }) => {
                let ticket = w.ticket.as_ref().expect("ticket set");
                StreamStep::Finish(
                    Ok(OpOutput::Written {
                        blob: w.blob,
                        version,
                        offset: ticket.offset,
                        len: ticket.len,
                    }),
                    ticket.len,
                )
            }
            (WStreamPhase::Commit, Msg::TicketErr { err, .. }) => StreamStep::Finish(Err(err), 0),

            (_, _) => wfail(w, BlobError::Protocol("unexpected write-stream reply")),
        }
    }

    /// The open-time metadata descent of a read stream: resolve the whole
    /// chunk plan (an O(#pages) descriptor table, no data), then open.
    #[allow(clippy::too_many_arguments)]
    fn rstream_meta_step(
        cfg: ClientConfig,
        meta_providers: &[NodeId],
        meta_cache: &mut MetaCache,
        fresh: &mut dyn FnMut(&mut HashSet<u64>, ReqRole) -> u64,
        outstanding: &mut HashSet<u64>,
        sid: u64,
        r: &mut ReadStreamSess,
        env: &mut dyn Env,
    ) -> StreamStep {
        let reader = r.reader.as_mut().expect("reader set");
        while !reader.is_done() {
            let fetches = reader.needed_fetches();
            debug_assert!(!fetches.is_empty());
            let mut missing: Vec<NodeKey> = Vec::new();
            let mut hits = 0usize;
            for k in &fetches {
                match meta_cache.get(k) {
                    Some(n) => {
                        reader.supply(*k, n);
                        hits += 1;
                    }
                    None => missing.push(*k),
                }
            }
            if hits == 0 {
                if cfg.meta_range_fetch && !r.range_used {
                    r.range_used = true;
                    let (version, query) = r.range_query();
                    for target in meta_providers {
                        let req = fresh(outstanding, ReqRole::MetaRange { target: *target });
                        env.send(
                            *target,
                            Msg::GetMetaRange {
                                req,
                                blob: r.blob,
                                version,
                                query,
                                after: None,
                                max_nodes: cfg.meta_range_max_nodes,
                            },
                        );
                    }
                } else {
                    for (target, keys) in group_by_partition(&missing, meta_providers) {
                        let req = fresh(outstanding, ReqRole::MetaGet);
                        env.send(target, Msg::GetMeta { req, keys });
                    }
                }
                r.phase = RStreamPhase::Meta;
                return StreamStep::Park;
            }
        }
        let reader = r.reader.take().expect("reader set");
        r.sources = reader.into_sources();
        r.phase = RStreamPhase::Idle;
        let info = r.info.as_ref().expect("info set");
        StreamStep::Complete(
            Ok(OpOutput::ReadStreamOpened {
                stream: sid,
                version: info.version,
                len: r.len,
                page_size: info.page_size,
            }),
            0,
        )
    }

    /// Splice the current batch into one delivered chunk. Returns the
    /// output, the delivered byte count, and whether this was the final
    /// batch of the stream.
    fn rstream_assemble(
        sid: u64,
        r: &mut ReadStreamSess,
        materialize_zeros: bool,
    ) -> (Result<OpOutput, BlobError>, u64, bool) {
        let page = r.info.as_ref().expect("info set").page_size;
        let base = (r.page0 + r.batch_base as u64) * page;
        let lo = r.offset.max(base);
        let hi = (r.offset + r.len).min(base + r.parts.len() as u64 * page);
        let skip = lo - base;
        let total = hi.saturating_sub(lo);
        let eof = r.batch_base + r.parts.len() >= r.sources.len();
        let parts = std::mem::take(&mut r.parts);
        r.phase = RStreamPhase::Idle;
        // Zero-copy fast path: one real-data page serves the delivered
        // range as a refcounted sub-slice.
        if parts.len() == 1 {
            if let Some(Payload::Data(b)) = &parts[0] {
                if (skip + total) as usize <= b.len() {
                    let data = Payload::Data(b.slice(skip as usize..(skip + total) as usize));
                    return (Ok(OpOutput::ReadChunk { stream: sid, data, eof }), total, eof);
                }
            }
        }
        let any_real = parts.iter().flatten().any(|p| matches!(p, Payload::Data(_)));
        let data = if any_real || materialize_zeros {
            let mut buf = BytesMut::with_capacity(total as usize);
            let mut remaining = total;
            let mut offset_in_part = skip;
            for part in parts.iter().flatten() {
                if remaining == 0 {
                    break;
                }
                let avail = page - offset_in_part;
                let take = avail.min(remaining);
                match part {
                    Payload::Data(b) => {
                        let s = offset_in_part as usize;
                        let e = ((offset_in_part + take) as usize).min(b.len());
                        if s < b.len() {
                            buf.extend_from_slice(&b[s..e]);
                        }
                        let got = e.saturating_sub(s) as u64;
                        if got < take {
                            buf.extend(std::iter::repeat_n(0u8, (take - got) as usize));
                        }
                    }
                    Payload::Sim(_) => {
                        buf.extend(std::iter::repeat_n(0u8, take as usize));
                    }
                }
                remaining -= take;
                offset_in_part = 0;
            }
            Payload::Data(buf.freeze())
        } else {
            Payload::Sim(total)
        };
        (Ok(OpOutput::ReadChunk { stream: sid, data, eof }), total, eof)
    }

    /// One read-stream protocol step. Static to sidestep split borrows.
    #[allow(clippy::too_many_arguments)]
    fn rstream_step(
        client: ClientId,
        meta_providers: &[NodeId],
        cfg: ClientConfig,
        meta_cache: &mut MetaCache,
        next_req: &mut u64,
        req_index: &mut HashMap<u64, (u64, ReqRole)>,
        sid: u64,
        sess: &mut Session,
        role: ReqRole,
        msg: Msg,
        env: &mut dyn Env,
    ) -> StreamStep {
        let mut fresh = |outstanding: &mut HashSet<u64>, role: ReqRole| {
            let req = *next_req;
            *next_req += 1;
            req_index.insert(req, (sid, role));
            outstanding.insert(req);
            req
        };
        let SessKind::ReadStream(r) = &mut sess.kind else {
            unreachable!("read-stream session")
        };
        r.last_activity = env.now();
        match (r.phase, msg, role) {
            (RStreamPhase::Version, Msg::GetVersionOk { info, .. }, _) => {
                if r.len == 0 {
                    let (version, page_size) = (info.version, info.page_size);
                    r.info = Some(info);
                    r.phase = RStreamPhase::Idle;
                    return StreamStep::Complete(
                        Ok(OpOutput::ReadStreamOpened { stream: sid, version, len: 0, page_size }),
                        0,
                    );
                }
                if r.offset >= info.size {
                    return StreamStep::Finish(
                        Err(BlobError::OutOfBounds {
                            offset: r.offset,
                            len: r.len,
                            size: info.size,
                        }),
                        0,
                    );
                }
                let eff_len = r.len.min(info.size - r.offset);
                r.len = eff_len;
                let page = info.page_size;
                r.page0 = r.offset / page;
                let last = (r.offset + eff_len - 1) / page;
                let interval = PageInterval::new(r.page0, last - r.page0 + 1);
                let reader = TreeReader::new(r.blob, info.root, interval);
                r.info = Some(info);
                r.reader = Some(reader);
                Self::rstream_meta_step(
                    cfg,
                    meta_providers,
                    meta_cache,
                    &mut fresh,
                    &mut sess.outstanding,
                    sid,
                    r,
                    env,
                )
            }
            (RStreamPhase::Version, Msg::GetVersionErr { err, .. }, _) => {
                StreamStep::Finish(Err(err), 0)
            }

            (RStreamPhase::Meta, Msg::GetMetaOk { nodes, .. }, ReqRole::MetaGet) => {
                let reader = r.reader.as_mut().expect("reader set");
                for (k, n) in nodes {
                    match n {
                        Some(node) => {
                            reader.supply(k, &node);
                            meta_cache.insert(k, node);
                        }
                        None => return StreamStep::Finish(Err(BlobError::MetaUnavailable), 0),
                    }
                }
                if !sess.outstanding.is_empty() {
                    return StreamStep::Park;
                }
                Self::rstream_meta_step(
                    cfg,
                    meta_providers,
                    meta_cache,
                    &mut fresh,
                    &mut sess.outstanding,
                    sid,
                    r,
                    env,
                )
            }
            (
                RStreamPhase::Meta,
                Msg::GetMetaRangeOk { nodes, more, .. },
                ReqRole::MetaRange { target },
            ) => {
                let mut last = None;
                for (k, n) in nodes {
                    last = Some(k.range);
                    meta_cache.insert(k, n);
                }
                if more {
                    if let Some(after) = last {
                        let (version, query) = r.range_query();
                        let req = fresh(&mut sess.outstanding, ReqRole::MetaRange { target });
                        env.send(
                            target,
                            Msg::GetMetaRange {
                                req,
                                blob: r.blob,
                                version,
                                query,
                                after: Some(after),
                                max_nodes: cfg.meta_range_max_nodes,
                            },
                        );
                        return StreamStep::Park;
                    }
                }
                if !sess.outstanding.is_empty() {
                    return StreamStep::Park;
                }
                Self::rstream_meta_step(
                    cfg,
                    meta_providers,
                    meta_cache,
                    &mut fresh,
                    &mut sess.outstanding,
                    sid,
                    r,
                    env,
                )
            }

            (RStreamPhase::Fetching, Msg::GetChunkOk { data, .. }, ReqRole::ChunkGet { idx, .. }) => {
                r.parts[idx] = Some(data);
                let done = sess.outstanding.is_empty();
                Self::rstream_batch_done(sid, cfg.materialize_zeros, done, r)
            }
            (
                RStreamPhase::Fetching,
                Msg::GetChunkBatchOk { items, .. },
                ReqRole::ChunkGetBatch { target, items: req_items },
            ) => {
                let mut failed: Vec<(usize, ChunkDescriptor)> = Vec::new();
                for (idx, desc) in req_items {
                    match items.iter().find(|(k, _)| *k == desc.key) {
                        Some((_, Ok(data))) => r.parts[idx] = Some(data.clone()),
                        Some((_, Err(ChunkErr::Blocked))) => {
                            return rfail(r, BlobError::Blocked(client))
                        }
                        _ => failed.push((idx, desc)),
                    }
                }
                for (idx, desc) in failed {
                    let first = desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                    if let Err(key) = Self::failover_chunk_get(
                        client,
                        cfg,
                        meta_providers,
                        &mut fresh,
                        &mut sess.outstanding,
                        idx,
                        desc,
                        first,
                        1,
                        env,
                    ) {
                        return rfail(r, BlobError::ChunkUnavailable(key));
                    }
                }
                let done = sess.outstanding.is_empty();
                Self::rstream_batch_done(sid, cfg.materialize_zeros, done, r)
            }
            (
                RStreamPhase::Fetching,
                Msg::GetChunkErr { err, .. },
                ReqRole::ChunkGetBatch { target, items },
            ) => {
                if err == ChunkErr::Blocked {
                    return rfail(r, BlobError::Blocked(client));
                }
                for (idx, desc) in items {
                    let first = desc.replicas.iter().position(|t| *t == target).unwrap_or(0);
                    if let Err(key) = Self::failover_chunk_get(
                        client,
                        cfg,
                        meta_providers,
                        &mut fresh,
                        &mut sess.outstanding,
                        idx,
                        desc,
                        first,
                        1,
                        env,
                    ) {
                        return rfail(r, BlobError::ChunkUnavailable(key));
                    }
                }
                StreamStep::Park
            }
            (
                RStreamPhase::Fetching,
                Msg::GetChunkErr { err, .. },
                ReqRole::ChunkGet { idx, desc, first, attempts, refreshed },
            ) => {
                if err == ChunkErr::Blocked {
                    return rfail(r, BlobError::Blocked(client));
                }
                if !refreshed {
                    if let Err(key) = Self::failover_chunk_get(
                        client,
                        cfg,
                        meta_providers,
                        &mut fresh,
                        &mut sess.outstanding,
                        idx,
                        desc,
                        first,
                        attempts,
                        env,
                    ) {
                        return rfail(r, BlobError::ChunkUnavailable(key));
                    }
                    return StreamStep::Park;
                }
                // Post-refresh walk: no second leaf refresh.
                if attempts < desc.replicas.len() {
                    env.incr("client.replica_walks", 1);
                    let target = desc.replicas[(first + attempts) % desc.replicas.len()];
                    let key = desc.key;
                    let req = fresh(
                        &mut sess.outstanding,
                        ReqRole::ChunkGet {
                            idx,
                            desc,
                            first,
                            attempts: attempts + 1,
                            refreshed,
                        },
                    );
                    env.send(target, Msg::GetChunk { req, client, key });
                    env.set_timer(
                        cfg.chunk_timeout,
                        CLIENT_TIMER_BIT | CHUNK_TIMEOUT_BIT | req,
                    );
                    return StreamStep::Park;
                }
                rfail(r, BlobError::ChunkUnavailable(desc.key))
            }
            (
                RStreamPhase::Fetching,
                Msg::GetMetaOk { nodes, .. },
                ReqRole::LeafRefresh { idx, desc },
            ) => {
                let mut fresh_desc = None;
                for (k, n) in nodes {
                    if let Some(MetaNode::Leaf { chunk }) = &n {
                        fresh_desc = Some(chunk.clone());
                        meta_cache.insert(k, n.expect("checked Some"));
                    }
                }
                match fresh_desc {
                    Some(chunk) if !chunk.replicas.is_empty() => {
                        Self::issue_chunk_get(
                            client,
                            cfg.chunk_timeout,
                            &mut fresh,
                            &mut sess.outstanding,
                            idx,
                            chunk,
                            true,
                            env,
                        );
                        StreamStep::Park
                    }
                    _ => rfail(r, BlobError::ChunkUnavailable(desc.key)),
                }
            }

            (_, _, _) => rfail(r, BlobError::Protocol("unexpected read-stream reply")),
        }
    }

    /// After absorbing one chunk reply: deliver the batch if it is whole.
    fn rstream_batch_done(
        sid: u64,
        materialize_zeros: bool,
        outstanding_empty: bool,
        r: &mut ReadStreamSess,
    ) -> StreamStep {
        if !outstanding_empty {
            return StreamStep::Park;
        }
        let (result, bytes, eof) = Self::rstream_assemble(sid, r, materialize_zeros);
        if eof {
            StreamStep::Finish(result, bytes)
        } else {
            StreamStep::Complete(result, bytes)
        }
    }
}

enum Step {
    Continue,
    Done(Result<OpOutput, BlobError>, u64),
}

/// What a stream state machine decided after absorbing one message.
enum StreamStep {
    /// Keep waiting; nothing completes.
    Park,
    /// Complete the parked sub-operation; the stream stays open.
    Complete(Result<OpOutput, BlobError>, u64),
    /// Complete the parked sub-operation and tear the stream down
    /// (commit acknowledged, eof delivered, or a fatal error with a
    /// sub-operation waiting to receive it).
    Finish(Result<OpOutput, BlobError>, u64),
    /// Fatal error with no sub-operation parked: remember it; the next
    /// sub-operation delivers it and reaps the stream.
    Fatal(BlobError),
}

/// Route a fatal write-stream error: to the parked sub-operation if one
/// is waiting, stored for the next sub-operation otherwise.
fn wfail(w: &WriteStreamSess, err: BlobError) -> StreamStep {
    if w.waiter.is_some() {
        StreamStep::Finish(Err(err), 0)
    } else {
        StreamStep::Fatal(err)
    }
}

/// Route a fatal read-stream error (see [`wfail`]).
fn rfail(r: &ReadStreamSess, err: BlobError) -> StreamStep {
    if r.waiter.is_some() {
        StreamStep::Finish(Err(err), 0)
    } else {
        StreamStep::Fatal(err)
    }
}

/// Span label of a stream sub-operation.
fn sub_op_label(kind: WaiterKind) -> &'static str {
    match kind {
        WaiterKind::Open => "stream_open",
        WaiterKind::Feed => "stream_feed",
        WaiterKind::Commit => "stream_commit",
        WaiterKind::Next => "stream_next",
    }
}

/// Extract the correlation id of a reply message.
fn req_of(msg: &Msg) -> Option<u64> {
    Some(match msg {
        Msg::AllocOk { req, .. }
        | Msg::AllocErr { req, .. }
        | Msg::Directory { req, .. }
        | Msg::PutChunkOk { req }
        | Msg::PutChunkErr { req, .. }
        | Msg::GetChunkOk { req, .. }
        | Msg::GetChunkErr { req, .. }
        | Msg::GetChunkBatchOk { req, .. }
        | Msg::GetMetaRangeOk { req, .. }
        | Msg::DeleteChunkOk { req, .. }
        | Msg::PutMetaOk { req }
        | Msg::GetMetaOk { req, .. }
        | Msg::DeleteMetaOk { req, .. }
        | Msg::CreateBlobOk { req, .. }
        | Msg::SnapshotVersionOk { req, .. }
        | Msg::SnapshotVersionErr { req, .. }
        | Msg::DecommissionBlobOk { req, .. }
        | Msg::TicketOk { req, .. }
        | Msg::TicketErr { req, .. }
        | Msg::CommitOk { req, .. }
        | Msg::GetVersionOk { req, .. }
        | Msg::GetVersionErr { req, .. } => *req,
        _ => return None,
    })
}

fn chunk_err(err: ChunkErr, client: ClientId) -> BlobError {
    match err {
        ChunkErr::Blocked => BlobError::Blocked(client),
        ChunkErr::Full => BlobError::ProviderFull,
        ChunkErr::NotFound => BlobError::Protocol("put got NotFound"),
        ChunkErr::Unreachable => BlobError::Timeout,
    }
}

/// Group metadata keys by their owning provider.
fn group_by_partition(
    keys: &[NodeKey],
    meta_providers: &[NodeId],
) -> Vec<(NodeId, Vec<NodeKey>)> {
    let mut map: HashMap<NodeId, Vec<NodeKey>> = HashMap::new();
    for k in keys {
        let target = meta_providers[partition(k, meta_providers.len())];
        map.entry(target).or_default().push(*k);
    }
    let mut out: Vec<(NodeId, Vec<NodeKey>)> = map.into_iter().collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Number of chunks a write of `len` bytes needs at the given page size.
pub fn chunks_for_write(len: u64, page_size: u64) -> u64 {
    pages_for(len, page_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{MetaNode, NodeRange, NodeRef};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct TestEnv {
        now: SimTime,
        sent: Vec<(NodeId, Msg)>,
        timers: Vec<(SimDuration, u64)>,
        rng: SmallRng,
    }

    impl TestEnv {
        fn new() -> Self {
            TestEnv {
                now: SimTime::ZERO,
                sent: vec![],
                timers: vec![],
                rng: SmallRng::seed_from_u64(0),
            }
        }
        fn take_sent(&mut self) -> Vec<(NodeId, Msg)> {
            std::mem::take(&mut self.sent)
        }
    }

    impl Env for TestEnv {
        fn id(&self) -> NodeId {
            NodeId(0)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: NodeId, msg: Msg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, delay: SimDuration, token: u64) {
            self.timers.push((delay, token));
        }
        fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    const VMAN: NodeId = NodeId(1);
    const PMAN: NodeId = NodeId(2);
    const META: NodeId = NodeId(3);
    const PROV_A: NodeId = NodeId(10);
    const PROV_B: NodeId = NodeId(11);

    fn core() -> ClientCore {
        ClientCore::new(ClientId(7), VMAN, PMAN, vec![META], ClientConfig::default())
    }

    #[test]
    fn create_roundtrip() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(&mut env, ClientOp::Create { spec: BlobSpec::default() }, 42);
        let (to, msg) = env.take_sent().pop().expect("create sent");
        assert_eq!(to, VMAN);
        let Msg::CreateBlob { req, .. } = msg else { panic!("wrong msg {msg:?}") };
        let done = c.handle_msg(&mut env, VMAN, Msg::CreateBlobOk { req, blob: BlobId(5) });
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 42);
        assert_eq!(done[0].result.as_ref().unwrap(), &OpOutput::Created(BlobId(5)));
        assert_eq!(c.active_ops(), 0);
    }

    #[test]
    fn snapshot_and_decommission_round_trips() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(&mut env, ClientOp::Snapshot { blob: BlobId(5), version: None }, 1);
        let (to, msg) = env.take_sent().pop().expect("snapshot sent");
        assert_eq!(to, VMAN);
        let Msg::SnapshotVersion { req, version: None, .. } = msg else { panic!("{msg:?}") };
        let done =
            c.handle_msg(&mut env, VMAN, Msg::SnapshotVersionOk { req, version: VersionId(3) });
        assert_eq!(
            done[0].result.as_ref().unwrap(),
            &OpOutput::Snapshotted { blob: BlobId(5), version: VersionId(3) }
        );

        c.start_op(&mut env, ClientOp::Decommission { blob: BlobId(5) }, 2);
        let (to, msg) = env.take_sent().pop().expect("decommission sent");
        assert_eq!(to, VMAN);
        let Msg::DecommissionBlob { req, .. } = msg else { panic!("{msg:?}") };
        let done = c.handle_msg(&mut env, VMAN, Msg::DecommissionBlobOk { req, ok: true });
        assert_eq!(
            done[0].result.as_ref().unwrap(),
            &OpOutput::Decommissioned { blob: BlobId(5), ok: true }
        );
        assert_eq!(c.active_ops(), 0);
    }

    #[test]
    fn snapshot_of_unknown_version_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Snapshot { blob: BlobId(5), version: Some(VersionId(9)) },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::SnapshotVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::SnapshotVersionErr {
                req,
                err: BlobError::UnknownVersion(BlobId(5), VersionId(9)),
            },
        );
        assert!(matches!(done[0].result, Err(BlobError::UnknownVersion(..))));
    }

    #[test]
    fn ticket_error_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Write {
                blob: BlobId(5),
                kind: WriteKind::Append,
                data: Payload::Sim(16),
            },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::Ticket { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::TicketErr { req, err: BlobError::Blocked(ClientId(7)) },
        );
        assert!(matches!(done[0].result, Err(BlobError::Blocked(_))));
    }

    #[test]
    fn allocation_failure_fails_the_op() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Write { blob: BlobId(5), kind: WriteKind::At(0), data: Payload::Sim(16) },
            1,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::Ticket { req, .. } = msg else { panic!() };
        let ticket = WriteTicket {
            blob: BlobId(5),
            version: VersionId(1),
            offset: 0,
            len: 16,
            page_size: 8,
            replication: 3,
            new_size: 16,
            base: crate::meta::BaseSnapshot { version: VersionId(0), size: 0, root: None },
            pending: vec![],
        };
        assert!(c.handle_msg(&mut env, VMAN, Msg::TicketOk { req, ticket }).is_empty());
        let (to, msg) = env.take_sent().pop().unwrap();
        assert_eq!(to, PMAN);
        let Msg::Alloc { req, chunks, replication, .. } = msg else { panic!() };
        assert_eq!((chunks, replication), (2, 3));
        let done = c.handle_msg(&mut env, PMAN, Msg::AllocErr { req, available: 2 });
        assert!(matches!(done[0].result, Err(BlobError::AllocationFailed { available: 2, .. })));
    }

    #[test]
    fn op_timeout_fires_and_completes_with_error() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 8 },
            9,
        );
        // The op-deadline timer was armed.
        let (delay, token) = env.timers[0];
        assert_eq!(delay, ClientConfig::default().op_timeout);
        assert!(ClientCore::owns_timer(token));
        env.now = SimTime(1);
        let done = c.handle_timer(&mut env, token);
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0].result, Err(BlobError::Timeout)));
        assert_eq!(c.active_ops(), 0);
        // A stale reply afterwards is ignored.
        assert!(c.handle_msg(&mut env, VMAN, Msg::GetVersionErr {
            req: 1,
            err: BlobError::UnknownBlob(BlobId(5)),
        })
        .is_empty());
    }

    #[test]
    fn read_fails_over_to_next_replica_on_chunk_timeout() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 8 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        // One-page blob whose root is a leaf with two replicas.
        let root = NodeRef::Node { version: VersionId(1), range: NodeRange::new(0, 1) };
        assert!(c
            .handle_msg(
                &mut env,
                VMAN,
                Msg::GetVersionOk {
                    req,
                    info: VersionInfo {
                        version: VersionId(1),
                        size: 8,
                        page_size: 8,
                        root: Some(root),
                    },
                },
            )
            .is_empty());
        // Cold cache: one bulk range query replaces the per-level fetch.
        let (to, msg) = env.take_sent().pop().unwrap();
        assert_eq!(to, META);
        let Msg::GetMetaRange { req, .. } = msg else { panic!("{msg:?}") };
        let leaf = MetaNode::Leaf {
            chunk: ChunkDescriptor {
                key: ChunkKey { blob: BlobId(5), version: VersionId(1), page: 0 },
                replicas: vec![PROV_A, PROV_B],
                size: 8,
            },
        };
        let leaf_key = NodeKey {
            blob: BlobId(5),
            version: VersionId(1),
            range: NodeRange::new(0, 1),
        };
        assert!(c
            .handle_msg(
                &mut env,
                META,
                Msg::GetMetaRangeOk { req, nodes: vec![(leaf_key, leaf)], more: false },
            )
            .is_empty());
        // A chunk fetch went out to one replica, with a failover timer.
        let (first_target, msg) = env.take_sent().pop().unwrap();
        assert!(first_target == PROV_A || first_target == PROV_B);
        let Msg::GetChunk { .. } = msg else { panic!("{msg:?}") };
        let (_, token) = *env.timers.last().unwrap();
        assert!(ClientCore::owns_timer(token));
        // The replica never answers: the chunk timer fires and the client
        // retries another replica.
        assert!(c.handle_timer(&mut env, token).is_empty());
        let (second_target, msg) = env.take_sent().pop().unwrap();
        let Msg::GetChunk { req, .. } = msg else { panic!("{msg:?}") };
        assert_ne!(second_target, first_target, "failover goes to the other replica");
        // That one answers: the read completes.
        let done =
            c.handle_msg(&mut env, second_target, Msg::GetChunkOk { req, data: Payload::Sim(8) });
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, version }) = &done[0].result else {
            panic!("{:?}", done[0].result)
        };
        assert_eq!(data.len(), 8);
        assert_eq!(*version, VersionId(1));
    }

    /// Build (locally) the stored tree of a `pages`-page blob at version
    /// 1, every chunk placed on `replicas` — exactly the node set a
    /// writer would have put to the metadata providers.
    fn stored_tree(
        pages: u64,
        page: u64,
        replicas: Vec<NodeId>,
    ) -> (Vec<(NodeKey, MetaNode)>, NodeRef) {
        let chunks: Vec<ChunkDescriptor> = (0..pages)
            .map(|p| ChunkDescriptor {
                key: ChunkKey { blob: BlobId(5), version: VersionId(1), page: p },
                replicas: replicas.clone(),
                size: page,
            })
            .collect();
        let builder = crate::meta::TreeBuilder::new(
            BlobId(5),
            VersionId(1),
            PageInterval::new(0, pages),
            page,
            pages * page,
            crate::meta::BaseSnapshot { version: VersionId(0), size: 0, root: None },
            vec![],
        );
        assert!(builder.is_ready(), "no base tree to resolve");
        builder.build(&chunks)
    }

    /// Drive a fresh read op through GetVersion and the cold-cache bulk
    /// metadata exchange; returns with the chunk fetches just sent.
    fn open_read(
        c: &mut ClientCore,
        env: &mut TestEnv,
        pages: u64,
        page: u64,
        nodes: Vec<(NodeKey, MetaNode)>,
        root: NodeRef,
    ) {
        c.start_op(
            env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: pages * page },
            9,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        assert!(c
            .handle_msg(
                env,
                VMAN,
                Msg::GetVersionOk {
                    req,
                    info: VersionInfo {
                        version: VersionId(1),
                        size: pages * page,
                        page_size: page,
                        root: Some(root),
                    },
                },
            )
            .is_empty());
        // Cold cache: exactly one bulk range query per metadata provider
        // (the test ring has one) and no per-node GetMeta at all.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "one logical metadata round trip: {sent:?}");
        let (to, msg) = sent.into_iter().next().unwrap();
        assert_eq!(to, META);
        let Msg::GetMetaRange { req, query, .. } = msg else { panic!("{msg:?}") };
        assert_eq!(query, PageInterval::new(0, pages));
        assert!(c
            .handle_msg(env, META, Msg::GetMetaRangeOk { req, nodes, more: false })
            .is_empty());
    }

    #[test]
    fn cold_read_uses_one_meta_round_trip_and_one_chunk_batch() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (16u64, 8u64);
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        // All 16 chunks live on one provider: a single batched fetch
        // replaces 16 per-chunk round trips.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "one batched chunk round trip: {sent:?}");
        let (to, msg) = sent.into_iter().next().unwrap();
        assert_eq!(to, PROV_A);
        let Msg::GetChunkBatch { req, keys, .. } = msg else { panic!("{msg:?}") };
        assert_eq!(keys.len(), pages as usize);
        let items = keys.iter().map(|k| (*k, Ok(Payload::Sim(page)))).collect();
        let done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkBatchOk { req, items });
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, version }) = &done[0].result else {
            panic!("{:?}", done[0].result)
        };
        assert_eq!(data.len(), pages * page);
        assert_eq!(*version, VersionId(1));
    }

    #[test]
    fn batch_timeout_resubmits_each_item_individually() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (2u64, 8u64);
        // Both replicas on the same provider: the batch has one possible
        // target, and the per-item walk still has somewhere to go.
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A, PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        // One batch, guarded by one shared deadline.
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "{sent:?}");
        let Msg::GetChunkBatch { keys, .. } = &sent[0].1 else { panic!("{:?}", sent[0].1) };
        assert_eq!(keys.len(), 2);
        let timers_before = env.timers.len();
        let (_, token) = *env.timers.last().unwrap();
        assert!(ClientCore::owns_timer(token));
        // The provider never answers: the batch deadline fires once and
        // every item re-enters the per-chunk replica walk on its own.
        assert!(c.handle_timer(&mut env, token).is_empty());
        let sent = env.take_sent();
        assert_eq!(sent.len(), 2, "per-item resubmission: {sent:?}");
        let reqs: Vec<u64> = sent
            .iter()
            .map(|(to, m)| {
                assert_eq!(*to, PROV_A);
                let Msg::GetChunk { req, .. } = m else { panic!("{m:?}") };
                *req
            })
            .collect();
        assert_eq!(
            env.timers.len(),
            timers_before + 2,
            "each resubmission arms its own deadline"
        );
        let mut done = vec![];
        for req in reqs {
            done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkOk { req, data: Payload::Sim(page) });
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].result.is_ok(), "{:?}", done[0].result);
    }

    #[test]
    fn partial_batch_failure_retries_only_the_missing_item() {
        let mut env = TestEnv::new();
        let mut c = core();
        let (pages, page) = (2u64, 8u64);
        let (nodes, root) = stored_tree(pages, page, vec![PROV_A, PROV_A]);
        open_read(&mut c, &mut env, pages, page, nodes, root);
        let sent = env.take_sent();
        let (_, Msg::GetChunkBatch { req, keys, .. }) = sent.into_iter().next().unwrap() else {
            panic!()
        };
        // One hit, one per-item miss: only the miss is retried.
        let items = vec![
            (keys[0], Ok(Payload::Sim(page))),
            (keys[1], Err(ChunkErr::NotFound)),
        ];
        assert!(c.handle_msg(&mut env, PROV_A, Msg::GetChunkBatchOk { req, items }).is_empty());
        let sent = env.take_sent();
        assert_eq!(sent.len(), 1, "{sent:?}");
        let (to, Msg::GetChunk { req, key, .. }) = sent.into_iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(to, PROV_A);
        assert_eq!(key, keys[1]);
        let done = c.handle_msg(&mut env, PROV_A, Msg::GetChunkOk { req, data: Payload::Sim(page) });
        assert_eq!(done.len(), 1);
        assert!(done[0].result.is_ok(), "{:?}", done[0].result);
    }

    #[test]
    fn read_of_out_of_bounds_offset_errors() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 100, len: 8 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::GetVersionOk {
                req,
                info: VersionInfo {
                    version: VersionId(1),
                    size: 8,
                    page_size: 8,
                    root: None,
                },
            },
        );
        assert!(matches!(done[0].result, Err(BlobError::OutOfBounds { .. })));
    }

    #[test]
    fn zero_length_read_completes_immediately() {
        let mut env = TestEnv::new();
        let mut c = core();
        c.start_op(
            &mut env,
            ClientOp::Read { blob: BlobId(5), version: None, offset: 0, len: 0 },
            3,
        );
        let (_, msg) = env.take_sent().pop().unwrap();
        let Msg::GetVersion { req, .. } = msg else { panic!() };
        let done = c.handle_msg(
            &mut env,
            VMAN,
            Msg::GetVersionOk {
                req,
                info: VersionInfo {
                    version: VersionId(2),
                    size: 8,
                    page_size: 8,
                    root: None,
                },
            },
        );
        assert_eq!(done.len(), 1);
        let Ok(OpOutput::Read { data, .. }) = &done[0].result else { panic!() };
        assert_eq!(data.len(), 0);
    }

    #[test]
    fn replies_from_unknown_requests_are_ignored() {
        let mut env = TestEnv::new();
        let mut c = core();
        assert!(c.handle_msg(&mut env, VMAN, Msg::PutChunkOk { req: 999 }).is_empty());
        assert!(c
            .handle_msg(&mut env, VMAN, Msg::CreateBlobOk { req: 1, blob: BlobId(1) })
            .is_empty());
    }
}
