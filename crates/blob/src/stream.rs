//! Streaming write/read handles with bounded per-connection memory.
//!
//! A whole-buffer [`write`](crate::runtime::threaded::ClientHandle::write)
//! materializes the full object in the caller *and* in the client cell; a
//! multi-GB object through a gateway connection is a non-starter for the
//! millions-of-users target. The handles here move the same bytes
//! chunk-at-a-time:
//!
//! * [`BlobWriteHandle`] — [`feed`](BlobWriteHandle::feed) accepts byte
//!   slices of any size; the client cell cuts full pages as enough bytes
//!   accumulate and ships them through the pipelined/batched write path
//!   under `chunk_window`. A feed blocks only while the window is full
//!   (backpressure), so the cell never buffers more than
//!   `chunk_window × page_size` bytes — asserted live by the
//!   `client.stream_buffered_bytes` high-water gauge.
//!   [`commit`](BlobWriteHandle::commit) publishes the version.
//! * [`BlobReadHandle`] — the chunk plan for the whole range is resolved
//!   once at open (the one-round-trip `GetMetaRange` descent), then
//!   [`next`](BlobReadHandle::next) pulls at most `chunk_window` pages per
//!   call via batched chunk fetches: O(window) memory for any object size.
//!
//! Both handles are thin blocking adapters over the threaded runtime's
//! op-ticket machinery: every sub-operation (`feed`, `commit`, `next`) is
//! one [`ClientOp`] injected into the client cell's mailbox, completing
//! synchronously when the stream has headroom. Dropping a handle without
//! committing/closing aborts the stream fire-and-forget, so the cell's
//! session is reclaimed without blocking the dropping thread.

use bytes::Bytes;
use sads_sim::TraceCtx;

use crate::client::{ClientOp, OpOutput};
use crate::model::{BlobError, BlobId, Payload, VersionId};
use crate::runtime::threaded::ClientHandle;
use crate::vmanager::WriteKind;

/// An open write stream: push bytes with [`feed`](Self::feed), publish
/// with [`commit`](Self::commit). Created by
/// [`ClientHandle::open_write_stream`].
///
/// The declared length is fixed at open (the ticket and chunk placement
/// cover exactly that many bytes); feeding past it or committing short is
/// a protocol error that aborts the stream.
pub struct BlobWriteHandle {
    client: ClientHandle,
    stream: u64,
    version: VersionId,
    offset: u64,
    declared: u64,
    page_size: u64,
    fed: u64,
    trace: Option<TraceCtx>,
    done: bool,
}

impl BlobWriteHandle {
    pub(crate) fn new(
        client: ClientHandle,
        stream: u64,
        version: VersionId,
        offset: u64,
        declared: u64,
        page_size: u64,
        trace: Option<TraceCtx>,
    ) -> Self {
        BlobWriteHandle {
            client,
            stream,
            version,
            offset,
            declared,
            page_size,
            fed: 0,
            trace,
            done: false,
        }
    }

    /// The version this stream will publish on commit.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Byte offset the stream writes at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Declared stream length in bytes.
    pub fn declared_len(&self) -> u64 {
        self.declared
    }

    /// The BLOB's page size (the streaming chunk granularity).
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Bytes fed so far.
    pub fn fed(&self) -> u64 {
        self.fed
    }

    /// Bytes still owed before [`commit`](Self::commit) is legal.
    pub fn remaining(&self) -> u64 {
        self.declared - self.fed
    }

    /// Push bytes into the stream. Slices of any size are accepted; the
    /// handle forwards at most one page per sub-operation (zero-copy
    /// sub-slices of `data`), which is what keeps the client cell's
    /// buffered bytes under `chunk_window × page_size`: a feed only
    /// blocks while the pipeline window is full.
    pub fn feed(&mut self, data: Bytes) -> Result<(), BlobError> {
        let total = data.len();
        let mut at = 0usize;
        while at < total {
            let take = (self.page_size as usize).max(1).min(total - at);
            let piece = if at == 0 && take == total {
                data.clone()
            } else {
                data.slice(at..at + take)
            };
            match self.sub_op(ClientOp::FeedWriteStream {
                stream: self.stream,
                data: Payload::Data(piece),
            })? {
                OpOutput::Fed { .. } => {}
                _ => return Err(BlobError::Protocol("wrong output for feed")),
            }
            at += take;
            self.fed += take as u64;
        }
        Ok(())
    }

    /// Publish the stream's version. Every declared byte must have been
    /// fed. On success the handle is consumed and the new version id
    /// returned.
    pub fn commit(mut self) -> Result<VersionId, BlobError> {
        self.done = true;
        match self.sub_op(ClientOp::CommitWriteStream { stream: self.stream })? {
            OpOutput::Written { version, .. } => Ok(version),
            _ => Err(BlobError::Protocol("wrong output for commit")),
        }
    }

    /// Abandon the stream without publishing. The allocated version
    /// never becomes visible.
    pub fn abort(mut self) -> Result<(), BlobError> {
        self.done = true;
        match self.sub_op(ClientOp::AbortWriteStream { stream: self.stream })? {
            OpOutput::StreamClosed { .. } => Ok(()),
            _ => Err(BlobError::Protocol("wrong output for abort")),
        }
    }

    fn sub_op(&self, op: ClientOp) -> Result<OpOutput, BlobError> {
        self.client.submit(op, self.trace).wait()
    }
}

impl Drop for BlobWriteHandle {
    fn drop(&mut self) {
        if !self.done {
            // Fire-and-forget: reclaim the cell's session without
            // blocking the dropping thread on the reply.
            let _ = self
                .client
                .submit(ClientOp::AbortWriteStream { stream: self.stream }, self.trace);
        }
    }
}

impl std::fmt::Debug for BlobWriteHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobWriteHandle")
            .field("stream", &self.stream)
            .field("version", &self.version)
            .field("offset", &self.offset)
            .field("declared", &self.declared)
            .field("fed", &self.fed)
            .finish()
    }
}

/// An open read stream: pull successive chunks with
/// [`next`](Self::next) until it returns `None`. Created by
/// [`ClientHandle::open_read_stream`].
pub struct BlobReadHandle {
    client: ClientHandle,
    stream: u64,
    version: VersionId,
    len: u64,
    page_size: u64,
    delivered: u64,
    trace: Option<TraceCtx>,
    done: bool,
}

impl BlobReadHandle {
    pub(crate) fn new(
        client: ClientHandle,
        stream: u64,
        version: VersionId,
        len: u64,
        page_size: u64,
        trace: Option<TraceCtx>,
    ) -> Self {
        BlobReadHandle { client, stream, version, len, page_size, delivered: 0, trace, done: false }
    }

    /// The version being read.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Total bytes this stream will deliver (the requested range clamped
    /// to the version's size).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the stream delivers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The BLOB's page size (the streaming chunk granularity).
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Pull the next chunk — at most `chunk_window × page_size` bytes —
    /// or `None` once the range is exhausted (the stream closes itself
    /// on the final chunk).
    // Not `Iterator`: delivery is fallible and an `Item = Result<_>`
    // iterator would let `for` loops silently drop stream errors.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Bytes>, BlobError> {
        if self.done {
            return Ok(None);
        }
        match self
            .client
            .submit(ClientOp::ReadStreamNext { stream: self.stream }, self.trace)
            .wait()?
        {
            OpOutput::ReadChunk { data, eof, .. } => {
                if eof {
                    self.done = true;
                }
                let b = match data {
                    Payload::Data(b) => b,
                    Payload::Sim(n) => Bytes::from(vec![0u8; n as usize]),
                };
                if b.is_empty() && eof {
                    return Ok(None);
                }
                self.delivered += b.len() as u64;
                Ok(Some(b))
            }
            _ => Err(BlobError::Protocol("wrong output for next")),
        }
    }

    /// Close the stream early (before eof). Idempotent.
    pub fn close(mut self) -> Result<(), BlobError> {
        if self.done {
            return Ok(());
        }
        self.done = true;
        match self
            .client
            .submit(ClientOp::CloseReadStream { stream: self.stream }, self.trace)
            .wait()?
        {
            OpOutput::StreamClosed { .. } => Ok(()),
            _ => Err(BlobError::Protocol("wrong output for close")),
        }
    }
}

impl Drop for BlobReadHandle {
    fn drop(&mut self) {
        if !self.done {
            let _ = self
                .client
                .submit(ClientOp::CloseReadStream { stream: self.stream }, self.trace);
        }
    }
}

impl std::fmt::Debug for BlobReadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlobReadHandle")
            .field("stream", &self.stream)
            .field("version", &self.version)
            .field("len", &self.len)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl ClientHandle {
    /// Open a streaming write of `len` bytes (`kind` picks append vs.
    /// write-at-offset). The returned handle owns one long-lived session
    /// in the client cell: chunk placement is allocated up front, pages
    /// ship as they are fed, and nothing is published until
    /// [`commit`](BlobWriteHandle::commit).
    pub fn open_write_stream(
        &self,
        blob: BlobId,
        kind: WriteKind,
        len: u64,
        trace: Option<TraceCtx>,
    ) -> Result<BlobWriteHandle, BlobError> {
        match self.submit(ClientOp::OpenWriteStream { blob, kind, len }, trace).wait()? {
            OpOutput::WriteStreamOpened { stream, version, offset, len, page_size } => Ok(
                BlobWriteHandle::new(self.clone(), stream, version, offset, len, page_size, trace),
            ),
            _ => Err(BlobError::Protocol("wrong output for open_write_stream")),
        }
    }

    /// Open a streaming read of `len` bytes at `offset` (latest version
    /// when `version` is `None`). The whole chunk plan is resolved at
    /// open — O(#pages) descriptors, no data — and each
    /// [`next`](BlobReadHandle::next) fetches at most `chunk_window`
    /// pages.
    pub fn open_read_stream(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
        trace: Option<TraceCtx>,
    ) -> Result<BlobReadHandle, BlobError> {
        match self.submit(ClientOp::OpenReadStream { blob, version, offset, len }, trace).wait()? {
            OpOutput::ReadStreamOpened { stream, version, len, page_size } => {
                Ok(BlobReadHandle::new(self.clone(), stream, version, len, page_size, trace))
            }
            _ => Err(BlobError::Protocol("wrong output for open_read_stream")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlobSpec, ClientId};
    use crate::runtime::threaded::{Cluster, ClusterBuilder};

    const PAGE: u64 = 64 * 1024;

    fn small_cluster() -> Cluster {
        ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .start()
    }

    fn patterned(len: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn streamed_write_matches_whole_buffer_read() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(1));
        let blob = client.create(BlobSpec { page_size: PAGE, replication: 2 }).expect("create");
        let data = patterned(5 * PAGE as usize, 3);
        let mut h = client
            .open_write_stream(blob, WriteKind::At(0), data.len() as u64, None)
            .expect("open");
        assert_eq!(h.page_size(), PAGE);
        // Feed in awkward pieces: tiny, page-crossing, the big rest.
        h.feed(data.slice(0..100)).expect("feed 1");
        h.feed(data.slice(100..PAGE as usize + 1)).expect("feed 2");
        h.feed(data.slice(PAGE as usize + 1..data.len())).expect("feed 3");
        let v = h.commit().expect("commit");
        let got = client.read(blob, Some(v), 0, data.len() as u64).expect("read");
        assert_eq!(got, data);
        cluster.shutdown();
    }

    #[test]
    fn streamed_read_reassembles_range() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(2));
        let blob = client.create(BlobSpec { page_size: PAGE, replication: 1 }).expect("create");
        let data = patterned(8 * PAGE as usize, 7);
        client.write(blob, 0, data.clone()).expect("write");
        // Unaligned sub-range crossing several window boundaries.
        let (off, len) = (1000u64, 6 * PAGE + 500);
        let mut h = client.open_read_stream(blob, None, off, len, None).expect("open");
        assert_eq!(h.len(), len);
        let mut got = Vec::new();
        while let Some(chunk) = h.next().expect("next") {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got[..], &data[off as usize..(off + len) as usize]);
        cluster.shutdown();
    }

    #[test]
    fn stream_misuse_is_rejected() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(3));
        let blob = client.create(BlobSpec { page_size: PAGE, replication: 1 }).expect("create");
        // Commit before the declared length was fed aborts the stream.
        let mut h = client
            .open_write_stream(blob, WriteKind::At(0), 2 * PAGE, None)
            .expect("open");
        h.feed(patterned(PAGE as usize, 1)).expect("feed");
        let err = h.commit().expect_err("short commit must fail");
        assert!(matches!(err, BlobError::Protocol(_)), "got {err}");
        // Aborted stream published nothing: latest is still the empty v0.
        let err = client.read(blob, None, 0, PAGE).expect_err("no version");
        assert!(
            matches!(err, BlobError::OutOfBounds { size: 0, .. } | BlobError::UnknownVersion(..)),
            "got {err}"
        );
        // Feeding more than declared aborts too.
        let mut h = client
            .open_write_stream(blob, WriteKind::At(0), PAGE, None)
            .expect("open 2");
        let err = h.feed(patterned(PAGE as usize + 1, 2)).expect_err("overfeed");
        assert!(matches!(err, BlobError::Protocol(_)), "got {err}");
        cluster.shutdown();
    }

    #[test]
    fn streamed_write_bounded_buffering_gauge() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(4));
        let blob = client.create(BlobSpec { page_size: PAGE, replication: 1 }).expect("create");
        let pages = 64u64;
        let data = patterned((pages * PAGE) as usize, 5);
        let mut h = client
            .open_write_stream(blob, WriteKind::At(0), data.len() as u64, None)
            .expect("open");
        h.feed(data.clone()).expect("feed");
        h.commit().expect("commit");
        let window = crate::client::ClientConfig::default().chunk_window as u64;
        let cap = window.max(2) * PAGE;
        let metrics = cluster.metrics();
        let peak = metrics
            .series("client.stream_buffered_bytes")
            .iter()
            .fold(0f64, |a, s| a.max(s.value));
        assert!(peak > 0.0, "gauge must record");
        assert!(peak <= cap as f64, "peak {peak} must stay under cap {cap}");
        cluster.shutdown();
    }
}
