//! Durable chunk backends: the persistence layer beneath
//! [`crate::provider::ChunkStore`].
//!
//! A [`ChunkBackend`] is a write-ahead record of a provider's chunk set.
//! The store keeps serving every payload from its in-memory shards — the
//! backend is consulted only on mutation (append a record) and on open
//! (recover the surviving chunk set). Two implementations:
//!
//! * [`MemoryBackend`] — the historical behavior: nothing survives a
//!   crash, a restarted provider comes back empty and re-replication is
//!   the only recovery path.
//! * [`DiskBackend`] — a log-structured local-disk store in the SPDK
//!   BlobStore / Bitcask idiom: a `SUPERBLOCK` file plus append-only
//!   `seg-NNNNNN.log` segment files of CRC32-framed put/delete records.
//!   Opening a directory scans the segments in order, truncates a torn
//!   tail (a frame cut short by the crash), quarantines any complete
//!   frame whose CRC32 does not match, and rebuilds the live chunk set.
//!   Dead bytes (overwritten, deleted or quarantined frames) are
//!   reclaimed by background compaction of whole segments.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   SUPERBLOCK        magic ─ format version ─ segment_bytes ─ CRC32
//!   seg-000000.log    [record][record][record]...
//!   seg-000001.log    ...
//!
//! record := magic:u32 kind:u8 flavor:u8 blob:u64 version:u64 page:u64
//!           len:u64 payload:[u8; len if flavor = data] crc32:u32
//! ```
//!
//! All integers are little-endian. The CRC covers everything between the
//! magic and the checksum itself. `kind` is put (1) or delete (2);
//! `flavor` records whether the payload is real bytes
//! ([`Payload::Data`]) or a size-only simulation stand-in
//! ([`Payload::Sim`], no payload bytes on disk).
//!
//! ## Recovery invariants
//!
//! * A record is applied only if its frame is complete **and** its CRC
//!   matches: the recovered chunk set is always a prefix of the
//!   acknowledged record sequence, never a superset.
//! * A short or unparsable tail means the process died mid-append; the
//!   tail is truncated and the log stays appendable.
//! * A complete frame with a CRC mismatch means media corruption, not a
//!   torn write; the record is quarantined (skipped and counted) and the
//!   scan continues behind it.
//!
//! # Example: a write → crash → recover round trip
//!
//! ```
//! use sads_blob::storage::{ChunkBackend, DiskBackend, DiskConfig};
//! use sads_blob::{BlobId, ChunkKey, Payload, VersionId};
//!
//! let dir = std::env::temp_dir().join(format!("sads-doctest-{}", std::process::id()));
//! let key = ChunkKey { blob: BlobId(1), version: VersionId(1), page: 7 };
//!
//! // A provider writes a chunk, then crashes (drop without shutdown).
//! let mut backend = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
//! backend.append_put(&key, &Payload::Data(bytes::Bytes::from_static(b"hello"))).unwrap();
//! drop(backend);
//!
//! // The restarted provider re-opens the same directory and recovers.
//! let mut backend = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
//! let report = backend.recover();
//! assert_eq!(report.chunks.len(), 1);
//! assert_eq!(report.chunks[0].0, key);
//! assert_eq!(report.chunks[0].1.len(), 5);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::model::{BlobId, ChunkKey, Payload, VersionId};

// ---------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------

const CRC32_SLICES: usize = 16;

/// Reflected CRC-32C (Castagnoli) polynomial — the one the x86 `crc32`
/// instruction implements, so the hardware and software paths agree.
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn crc32c_tables() -> [[u32; 256]; CRC32_SLICES] {
    let mut tables = [[0u32; 256]; CRC32_SLICES];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32C_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[n] advances the register by n extra zero bytes, so a
    // 16-byte block folds with one lookup per byte and no carry chain.
    let mut n = 1;
    while n < CRC32_SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[n - 1][i];
            tables[n][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        n += 1;
    }
    tables
}

static CRC32C_TABLES: [[u32; 256]; CRC32_SLICES] = crc32c_tables();

/// Software CRC-32C: slicing-by-16 with const-generated tables. The
/// fallback on machines without SSE4.2, and the reference the hardware
/// path is tested against.
fn crc32c_sw(data: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(CRC32_SLICES);
    for b in &mut chunks {
        let q = c ^ u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        c = t[15][(q & 0xFF) as usize]
            ^ t[14][((q >> 8) & 0xFF) as usize]
            ^ t[13][((q >> 16) & 0xFF) as usize]
            ^ t[12][(q >> 24) as usize]
            ^ t[11][b[4] as usize]
            ^ t[10][b[5] as usize]
            ^ t[9][b[6] as usize]
            ^ t[8][b[7] as usize]
            ^ t[7][b[8] as usize]
            ^ t[6][b[9] as usize]
            ^ t[5][b[10] as usize]
            ^ t[4][b[11] as usize]
            ^ t[3][b[12] as usize]
            ^ t[2][b[13] as usize]
            ^ t[1][b[14] as usize]
            ^ t[0][b[15] as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Hardware CRC-32C via the SSE4.2 `crc32` instruction, 8 bytes per
/// fold. Callers must have verified `sse4.2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = 0xFFFF_FFFFu64;
    let mut chunks = data.chunks_exact(8);
    for b in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(b.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32C (Castagnoli) over a byte slice — hardware-accelerated on
/// x86-64 with SSE4.2, slicing-by-16 software otherwise; both paths
/// produce identical digests, so logs move between machines. Every
/// frame and the superblock carry one of these, and the data providers
/// checksum every chunk at put time — this sits on the hot write path,
/// hence the hardware fast path (format v2; v1 logs used CRC-32/IEEE
/// and are rejected as incompatible at open).
pub fn crc32c(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        return unsafe { crc32c_hw(data) };
    }
    crc32c_sw(data)
}

/// CRC-32C of a payload as the provider records it at put time: real
/// bytes hash their contents, size-only simulation stand-ins hash the
/// length. The integrity scrub recomputes this and compares it against
/// the checksum stored in the chunk's metadata.
pub fn payload_crc(p: &Payload) -> u32 {
    match p {
        Payload::Data(b) => crc32c(b),
        Payload::Sim(n) => crc32c(&n.to_le_bytes()),
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

const RECORD_MAGIC: u32 = 0x5341_4453; // "SADS"
const SUPER_MAGIC: u32 = 0x5342_4C4B; // "SBLK"
// v2: frame and superblock checksums switched from CRC-32/IEEE to
// CRC-32C (Castagnoli) for the SSE4.2 hardware path; v1 logs are
// rejected as incompatible at open.
const FORMAT_VERSION: u32 = 2;
const SUPERBLOCK: &str = "SUPERBLOCK";
/// magic + kind + flavor + blob + version + page + len.
const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 8 + 8;
const TRAILER_LEN: usize = 4; // crc32
const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const FLAVOR_SIM: u8 = 0;
const FLAVOR_DATA: u8 = 1;

fn segment_name(id: u64) -> String {
    format!("seg-{id:06}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".log")?.parse().ok()
}

fn encode_record(kind: u8, key: &ChunkKey, data: Option<&Payload>) -> Vec<u8> {
    let (flavor, len, bytes): (u8, u64, Option<&[u8]>) = match data {
        Some(Payload::Data(b)) => (FLAVOR_DATA, b.len() as u64, Some(b.as_ref())),
        Some(Payload::Sim(n)) => (FLAVOR_SIM, *n, None),
        None => (FLAVOR_SIM, 0, None),
    };
    let mut buf =
        Vec::with_capacity(HEADER_LEN + bytes.map_or(0, <[u8]>::len) + TRAILER_LEN);
    buf.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    buf.push(kind);
    buf.push(flavor);
    buf.extend_from_slice(&key.blob.0.to_le_bytes());
    buf.extend_from_slice(&key.version.0.to_le_bytes());
    buf.extend_from_slice(&key.page.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    if let Some(b) = bytes {
        buf.extend_from_slice(b);
    }
    let crc = crc32c(&buf[4..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Outcome of parsing one frame out of a segment buffer.
enum FrameParse {
    /// Clean end of segment.
    Eof,
    /// Incomplete or unparsable tail: truncate the segment here.
    Torn,
    /// Complete frame, CRC mismatch: quarantine and step over it.
    Corrupt { frame_len: usize },
    /// A valid record.
    Record { kind: u8, flavor: u8, key: ChunkKey, len: u64, payload: (usize, usize), frame_len: usize },
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn parse_frame(buf: &[u8], offset: usize) -> FrameParse {
    if offset == buf.len() {
        return FrameParse::Eof;
    }
    if buf.len() - offset < HEADER_LEN + TRAILER_LEN {
        return FrameParse::Torn;
    }
    let h = &buf[offset..];
    let magic = u32::from_le_bytes(h[0..4].try_into().unwrap());
    if magic != RECORD_MAGIC {
        return FrameParse::Torn;
    }
    let kind = h[4];
    let flavor = h[5];
    let key = ChunkKey {
        blob: BlobId(u64_at(h, 6)),
        version: VersionId(u64_at(h, 14)),
        page: u64_at(h, 22),
    };
    let len = u64_at(h, 30);
    let payload_len = if flavor == FLAVOR_DATA { len as usize } else { 0 };
    let frame_len = HEADER_LEN + payload_len + TRAILER_LEN;
    if buf.len() - offset < frame_len {
        return FrameParse::Torn;
    }
    let body = &buf[offset + 4..offset + HEADER_LEN + payload_len];
    let stored = u32::from_le_bytes(
        buf[offset + frame_len - TRAILER_LEN..offset + frame_len].try_into().unwrap(),
    );
    if crc32c(body) != stored || !matches!(kind, KIND_PUT | KIND_DELETE) {
        return FrameParse::Corrupt { frame_len };
    }
    FrameParse::Record {
        kind,
        flavor,
        key,
        len,
        payload: (offset + HEADER_LEN, offset + HEADER_LEN + payload_len),
        frame_len,
    }
}

fn payload_of(buf: &[u8], flavor: u8, len: u64, payload: (usize, usize)) -> Payload {
    if flavor == FLAVOR_DATA {
        Payload::Data(Bytes::from(buf[payload.0..payload.1].to_vec()))
    } else {
        Payload::Sim(len)
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Tuning for one [`DiskBackend`] directory.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Directory holding the superblock and segment files. Created on
    /// open if missing; re-opening an existing directory recovers it.
    pub dir: PathBuf,
    /// Roll to a new segment file once the active one reaches this size.
    pub segment_bytes: u64,
    /// Compact a sealed segment once this fraction of its bytes is dead
    /// (overwritten, deleted or quarantined). `> 1.0` disables
    /// compaction.
    pub compact_min_dead_ratio: f64,
}

impl DiskConfig {
    /// Defaults: 64 MiB segments, compaction at 50% dead bytes.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskConfig { dir: dir.into(), segment_bytes: 64 << 20, compact_min_dead_ratio: 0.5 }
    }
}

/// Which backend one provider's [`crate::provider::ChunkStore`] persists
/// through. Carried by [`crate::services::ServiceConfig`].
#[derive(Debug, Clone, Default, PartialEq)]
pub enum BackendConfig {
    /// No durability: a crash loses every chunk (the pre-durable
    /// behavior, and still the right choice for simulation sweeps that
    /// model crash-loss deliberately).
    #[default]
    Memory,
    /// Log-structured local-disk store; survives crash + restart.
    Disk(DiskConfig),
}

impl BackendConfig {
    /// Instantiate the backend (opening + scanning the directory for the
    /// disk flavor).
    pub fn build(&self) -> io::Result<Box<dyn ChunkBackend>> {
        match self {
            BackendConfig::Memory => Ok(Box::new(MemoryBackend)),
            BackendConfig::Disk(cfg) => Ok(Box::new(DiskBackend::open(cfg.clone())?)),
        }
    }
}

/// Deployment-level backend selection: one spec fans out to a
/// per-provider [`BackendConfig`], giving each data provider its own
/// subdirectory under a common root. Both runtimes record the assigned
/// directory per node so a restart re-opens the same one.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum BackendSpec {
    /// All providers in-memory (the default).
    #[default]
    Memory,
    /// All providers on disk under `root/provider-NNNN/`.
    Disk {
        /// Root directory; per-provider subdirectories are created
        /// beneath it.
        root: PathBuf,
        /// See [`DiskConfig::segment_bytes`].
        segment_bytes: u64,
        /// See [`DiskConfig::compact_min_dead_ratio`].
        compact_min_dead_ratio: f64,
    },
}

impl BackendSpec {
    /// A disk spec with default tuning under `root`.
    pub fn disk(root: impl Into<PathBuf>) -> Self {
        BackendSpec::Disk {
            root: root.into(),
            segment_bytes: 64 << 20,
            compact_min_dead_ratio: 0.5,
        }
    }

    /// The per-provider config for the `ordinal`-th data provider.
    pub fn for_provider(&self, ordinal: usize) -> BackendConfig {
        match self {
            BackendSpec::Memory => BackendConfig::Memory,
            BackendSpec::Disk { root, segment_bytes, compact_min_dead_ratio } => {
                BackendConfig::Disk(DiskConfig {
                    dir: root.join(format!("provider-{ordinal:04}")),
                    segment_bytes: *segment_bytes,
                    compact_min_dead_ratio: *compact_min_dead_ratio,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------
// Trait + reports
// ---------------------------------------------------------------------

/// What a durable backend hands back when a re-opened store recovers.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Surviving chunks, sorted by key (deterministic re-announcement
    /// order).
    pub chunks: Vec<(ChunkKey, Payload)>,
    /// Total payload bytes recovered.
    pub bytes: u64,
    /// Complete frames discarded for a CRC mismatch.
    pub quarantined: u64,
    /// Torn tails truncated (at most one per segment).
    pub torn_discarded: u64,
}

/// Occupancy and maintenance counters for a backend.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Segment files currently on disk.
    pub segments: u64,
    /// Frame bytes still referenced by the live chunk set.
    pub live_bytes: u64,
    /// Frame bytes awaiting compaction (overwritten/deleted/corrupt).
    pub dead_bytes: u64,
    /// Records quarantined for CRC mismatches (recovery + compaction).
    pub quarantined: u64,
    /// Torn tails truncated at recovery.
    pub torn_discarded: u64,
    /// Segments rewritten by compaction.
    pub compactions: u64,
    /// Bytes reclaimed by compaction.
    pub reclaimed_bytes: u64,
}

/// The durable log beneath a [`crate::provider::ChunkStore`].
///
/// The store calls [`ChunkBackend::append_put`] / [`append_delete`]
/// under the owning shard lock (so the log order matches the
/// acknowledgment order per key) and [`recover`] exactly once at open.
/// Backend I/O failures are fail-stop for the provider: the store
/// panics rather than acknowledge a write it did not persist.
///
/// [`append_delete`]: ChunkBackend::append_delete
/// [`recover`]: ChunkBackend::recover
pub trait ChunkBackend: Send + std::fmt::Debug {
    /// Persist a stored chunk.
    fn append_put(&mut self, key: &ChunkKey, data: &Payload) -> io::Result<()>;
    /// Persist a deletion.
    fn append_delete(&mut self, key: &ChunkKey) -> io::Result<()>;
    /// Take the chunk set that survived the last crash (meaningful once,
    /// right after open; later calls return an empty report).
    fn recover(&mut self) -> RecoveryReport;
    /// Run compaction if any sealed segment crossed its dead-byte
    /// threshold; returns the bytes reclaimed.
    fn maybe_compact(&mut self) -> io::Result<u64>;
    /// Current occupancy / maintenance counters.
    fn stats(&self) -> BackendStats;
    /// Re-verify the durable record for `key`: re-read its frame and
    /// check the on-media checksum. `Ok(true)` means clean — or that
    /// there is no durable record to damage (the memory backend, or a
    /// key the log never saw). `Ok(false)` means the record rotted.
    fn verify(&mut self, key: &ChunkKey) -> io::Result<bool> {
        let _ = key;
        Ok(true)
    }
    /// Fault injection for tests and experiments: damage the durable
    /// record for `key` in place. No-op for backends with no durable
    /// state.
    fn corrupt(&mut self, key: &ChunkKey) -> io::Result<()> {
        let _ = key;
        Ok(())
    }
}

/// The no-durability backend: appends are no-ops and nothing ever
/// recovers.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryBackend;

impl ChunkBackend for MemoryBackend {
    fn append_put(&mut self, _key: &ChunkKey, _data: &Payload) -> io::Result<()> {
        Ok(())
    }
    fn append_delete(&mut self, _key: &ChunkKey) -> io::Result<()> {
        Ok(())
    }
    fn recover(&mut self) -> RecoveryReport {
        RecoveryReport::default()
    }
    fn maybe_compact(&mut self) -> io::Result<u64> {
        Ok(0)
    }
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

// ---------------------------------------------------------------------
// Disk backend
// ---------------------------------------------------------------------

/// Where a live record sits on disk.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    seg: u64,
    offset: u64,
    frame_len: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct SegUsage {
    live: u64,
    dead: u64,
}

/// Log-structured local-disk chunk backend. See the [module docs]
/// (self) for the on-disk format and recovery invariants.
#[derive(Debug)]
pub struct DiskBackend {
    cfg: DiskConfig,
    active: File,
    active_id: u64,
    active_len: u64,
    keydir: HashMap<ChunkKey, RecordLoc>,
    segs: BTreeMap<u64, SegUsage>,
    pending: Option<RecoveryReport>,
    quarantined: u64,
    torn: u64,
    compactions: u64,
    reclaimed: u64,
}

impl DiskBackend {
    /// Open (or create) a backend directory, scanning every segment to
    /// rebuild the live chunk set. Torn tails are truncated in place;
    /// CRC-mismatched records are quarantined. The recovered chunks are
    /// buffered until the first [`ChunkBackend::recover`] call.
    pub fn open(cfg: DiskConfig) -> io::Result<DiskBackend> {
        fs::create_dir_all(&cfg.dir)?;
        check_or_write_superblock(&cfg)?;

        let mut ids: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_name(&e.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();

        let mut keydir = HashMap::new();
        let mut segs = BTreeMap::new();
        let mut recovered: HashMap<ChunkKey, Payload> = HashMap::new();
        let mut quarantined = 0u64;
        let mut torn = 0u64;
        for &id in &ids {
            scan_segment(
                &cfg.dir.join(segment_name(id)),
                id,
                &mut keydir,
                &mut segs,
                &mut recovered,
                &mut quarantined,
                &mut torn,
            )?;
        }

        let active_id = ids.last().copied().unwrap_or(0);
        let path = cfg.dir.join(segment_name(active_id));
        let active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.metadata()?.len();
        segs.entry(active_id).or_default();

        let mut chunks: Vec<(ChunkKey, Payload)> = recovered.into_iter().collect();
        chunks.sort_by_key(|(k, _)| *k);
        let bytes = chunks.iter().map(|(_, p)| p.len()).sum();
        let pending =
            Some(RecoveryReport { chunks, bytes, quarantined, torn_discarded: torn });

        Ok(DiskBackend {
            cfg,
            active,
            active_id,
            active_len,
            keydir,
            segs,
            pending,
            quarantined,
            torn,
            compactions: 0,
            reclaimed: 0,
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    fn roll_if_needed(&mut self) -> io::Result<()> {
        if self.active_len < self.cfg.segment_bytes {
            return Ok(());
        }
        self.active.flush()?;
        self.active_id += 1;
        let path = self.cfg.dir.join(segment_name(self.active_id));
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = 0;
        self.segs.entry(self.active_id).or_default();
        Ok(())
    }

    fn append_frame(&mut self, rec: &[u8]) -> io::Result<RecordLoc> {
        self.roll_if_needed()?;
        self.active.write_all(rec)?;
        let loc = RecordLoc {
            seg: self.active_id,
            offset: self.active_len,
            frame_len: rec.len() as u64,
        };
        self.active_len += rec.len() as u64;
        Ok(loc)
    }

    fn retire(&mut self, old: RecordLoc) {
        let u = self.segs.entry(old.seg).or_default();
        u.live = u.live.saturating_sub(old.frame_len);
        u.dead += old.frame_len;
    }

    /// Rewrite the live records of one sealed segment into the active
    /// one, then delete its file. Returns the file bytes reclaimed.
    fn compact_segment(&mut self, seg: u64) -> io::Result<u64> {
        let path = self.cfg.dir.join(segment_name(seg));
        let buf = fs::read(&path)?;
        let mut entries: Vec<(ChunkKey, RecordLoc)> =
            self.keydir.iter().filter(|(_, l)| l.seg == seg).map(|(k, l)| (*k, *l)).collect();
        entries.sort_by_key(|(_, l)| l.offset);
        for (key, loc) in entries {
            match parse_frame(&buf, loc.offset as usize) {
                FrameParse::Record { kind: KIND_PUT, flavor, len, payload, .. } => {
                    let data = payload_of(&buf, flavor, len, payload);
                    let rec = encode_record(KIND_PUT, &key, Some(&data));
                    let new = self.append_frame(&rec)?;
                    self.segs.entry(new.seg).or_default().live += new.frame_len;
                    if let Some(old) = self.keydir.insert(key, new) {
                        self.retire(old);
                    }
                }
                _ => {
                    // The record rotted since recovery validated it:
                    // quarantine it. The in-memory copy keeps serving
                    // reads; only a future restart loses the chunk.
                    self.quarantined += 1;
                    self.keydir.remove(&key);
                    self.retire(loc);
                }
            }
        }
        fs::remove_file(&path)?;
        self.segs.remove(&seg);
        self.compactions += 1;
        self.reclaimed += buf.len() as u64;
        Ok(buf.len() as u64)
    }
}

impl ChunkBackend for DiskBackend {
    fn append_put(&mut self, key: &ChunkKey, data: &Payload) -> io::Result<()> {
        let rec = encode_record(KIND_PUT, key, Some(data));
        let loc = self.append_frame(&rec)?;
        self.segs.entry(loc.seg).or_default().live += loc.frame_len;
        if let Some(old) = self.keydir.insert(*key, loc) {
            self.retire(old);
        }
        Ok(())
    }

    fn append_delete(&mut self, key: &ChunkKey) -> io::Result<()> {
        let Some(old) = self.keydir.remove(key) else { return Ok(()) };
        let rec = encode_record(KIND_DELETE, key, None);
        let loc = self.append_frame(&rec)?;
        // The tombstone itself is dead weight the moment it lands.
        self.segs.entry(loc.seg).or_default().dead += loc.frame_len;
        self.retire(old);
        Ok(())
    }

    fn recover(&mut self) -> RecoveryReport {
        self.pending.take().unwrap_or_default()
    }

    fn maybe_compact(&mut self) -> io::Result<u64> {
        let victims: Vec<u64> = self
            .segs
            .iter()
            .filter(|(&id, u)| {
                id != self.active_id
                    && u.live + u.dead > 0
                    && u.dead as f64 / (u.live + u.dead) as f64
                        >= self.cfg.compact_min_dead_ratio
            })
            .map(|(&id, _)| id)
            .collect();
        let mut reclaimed = 0;
        for seg in victims {
            reclaimed += self.compact_segment(seg)?;
        }
        Ok(reclaimed)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            segments: self.segs.len() as u64,
            live_bytes: self.segs.values().map(|u| u.live).sum(),
            dead_bytes: self.segs.values().map(|u| u.dead).sum(),
            quarantined: self.quarantined,
            torn_discarded: self.torn,
            compactions: self.compactions,
            reclaimed_bytes: self.reclaimed,
        }
    }

    fn verify(&mut self, key: &ChunkKey) -> io::Result<bool> {
        let Some(loc) = self.keydir.get(key).copied() else { return Ok(true) };
        let mut f = File::open(self.cfg.dir.join(segment_name(loc.seg)))?;
        f.seek(io::SeekFrom::Start(loc.offset))?;
        let mut buf = vec![0u8; loc.frame_len as usize];
        f.read_exact(&mut buf)?;
        Ok(matches!(parse_frame(&buf, 0), FrameParse::Record { kind: KIND_PUT, .. }))
    }

    fn corrupt(&mut self, key: &ChunkKey) -> io::Result<()> {
        let Some(loc) = self.keydir.get(key).copied() else { return Ok(()) };
        let path = self.cfg.dir.join(segment_name(loc.seg));
        let mut f = OpenOptions::new().read(true).write(true).open(&path)?;
        // Flip the record's kind byte: the frame stays parseable but its
        // CRC no longer matches, exactly like rotted media.
        let at = loc.offset + 4;
        f.seek(io::SeekFrom::Start(at))?;
        let mut b = [0u8; 1];
        f.read_exact(&mut b)?;
        b[0] ^= 0xFF;
        f.seek(io::SeekFrom::Start(at))?;
        f.write_all(&b)
    }
}

fn scan_segment(
    path: &Path,
    seg: u64,
    keydir: &mut HashMap<ChunkKey, RecordLoc>,
    segs: &mut BTreeMap<u64, SegUsage>,
    recovered: &mut HashMap<ChunkKey, Payload>,
    quarantined: &mut u64,
    torn: &mut u64,
) -> io::Result<()> {
    let buf = fs::read(path)?;
    segs.entry(seg).or_default();
    let mut offset = 0usize;
    let valid_len = loop {
        match parse_frame(&buf, offset) {
            FrameParse::Eof => break buf.len(),
            FrameParse::Torn => {
                *torn += 1;
                break offset;
            }
            FrameParse::Corrupt { frame_len } => {
                *quarantined += 1;
                segs.entry(seg).or_default().dead += frame_len as u64;
                offset += frame_len;
            }
            FrameParse::Record { kind, flavor, key, len, payload, frame_len } => {
                let retire = |segs: &mut BTreeMap<u64, SegUsage>, old: RecordLoc| {
                    let u = segs.entry(old.seg).or_default();
                    u.live = u.live.saturating_sub(old.frame_len);
                    u.dead += old.frame_len;
                };
                if kind == KIND_PUT {
                    recovered.insert(key, payload_of(&buf, flavor, len, payload));
                    segs.entry(seg).or_default().live += frame_len as u64;
                    let loc = RecordLoc { seg, offset: offset as u64, frame_len: frame_len as u64 };
                    if let Some(old) = keydir.insert(key, loc) {
                        retire(segs, old);
                    }
                } else {
                    recovered.remove(&key);
                    segs.entry(seg).or_default().dead += frame_len as u64;
                    if let Some(old) = keydir.remove(&key) {
                        retire(segs, old);
                    }
                }
                offset += frame_len;
            }
        }
    };
    if valid_len < buf.len() {
        OpenOptions::new().write(true).open(path)?.set_len(valid_len as u64)?;
    }
    Ok(())
}

fn superblock_bytes(segment_bytes: u64) -> [u8; 20] {
    let mut b = [0u8; 20];
    b[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
    b[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    b[8..16].copy_from_slice(&segment_bytes.to_le_bytes());
    let crc = crc32c(&b[0..16]);
    b[16..20].copy_from_slice(&crc.to_le_bytes());
    b
}

fn check_or_write_superblock(cfg: &DiskConfig) -> io::Result<()> {
    let path = cfg.dir.join(SUPERBLOCK);
    match fs::read(&path) {
        Ok(b) => {
            let bad = b.len() != 20
                || u32::from_le_bytes(b[0..4].try_into().unwrap()) != SUPER_MAGIC
                || u32::from_le_bytes(b[4..8].try_into().unwrap()) != FORMAT_VERSION
                || u32::from_le_bytes(b[16..20].try_into().unwrap()) != crc32c(&b[0..16]);
            if bad {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt or incompatible superblock at {}", path.display()),
                ));
            }
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let mut f = File::create(&path)?;
            f.write_all(&superblock_bytes(cfg.segment_bytes))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIRS: AtomicU64 = AtomicU64::new(0);

    fn tmp() -> PathBuf {
        let n = DIRS.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("sads-storage-test-{}-{n}", std::process::id()))
    }

    fn key(p: u64) -> ChunkKey {
        ChunkKey { blob: BlobId(1), version: VersionId(1), page: p }
    }

    fn data(fill: u8, len: usize) -> Payload {
        Payload::Data(Bytes::from(vec![fill; len]))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 appendix B.4 check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_hw_and_sliced_match_bytewise() {
        fn reference(data: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in data {
                c = CRC32C_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        }
        let buf: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 255, 256, 1024, 4096] {
            assert_eq!(crc32c(&buf[..len]), reference(&buf[..len]), "dispatch len={len}");
            assert_eq!(crc32c_sw(&buf[..len]), reference(&buf[..len]), "sw len={len}");
        }
    }

    #[test]
    fn round_trip_data_and_sim_payloads() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        b.append_put(&key(0), &data(7, 100)).unwrap();
        b.append_put(&key(1), &Payload::Sim(5000)).unwrap();
        drop(b);

        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        let r = b.recover();
        assert_eq!(r.chunks.len(), 2);
        assert_eq!(r.torn_discarded, 0);
        assert_eq!(r.quarantined, 0);
        assert_eq!(r.bytes, 5100);
        match &r.chunks[0].1 {
            Payload::Data(bytes) => assert!(bytes.iter().all(|&x| x == 7)),
            other => panic!("expected data payload, got {other:?}"),
        }
        assert_eq!(r.chunks[1].1, Payload::Sim(5000));
        // recover() is one-shot.
        assert!(b.recover().chunks.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        for p in 0..3 {
            b.append_put(&key(p), &data(p as u8, 64)).unwrap();
        }
        drop(b);

        // Chop mid-frame: the third record loses its trailer.
        let seg = dir.join(segment_name(0));
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 10).unwrap();

        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        let r = b.recover();
        assert_eq!(r.torn_discarded, 1);
        assert_eq!(r.quarantined, 0);
        assert_eq!(
            r.chunks.iter().map(|(k, _)| k.page).collect::<Vec<_>>(),
            vec![0, 1],
            "recovered set is the acknowledged prefix"
        );
        // The truncated log accepts new appends and they survive.
        b.append_put(&key(9), &data(9, 64)).unwrap();
        drop(b);
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        assert_eq!(b.recover().chunks.len(), 3);
    }

    #[test]
    fn crc_mismatch_quarantines_record_and_scan_continues() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        for p in 0..3 {
            b.append_put(&key(p), &data(p as u8, 64)).unwrap();
        }
        drop(b);

        // Flip one payload byte inside the middle record.
        let seg = dir.join(segment_name(0));
        let mut buf = fs::read(&seg).unwrap();
        let frame = HEADER_LEN + 64 + TRAILER_LEN;
        buf[frame + HEADER_LEN + 10] ^= 0xFF;
        fs::write(&seg, &buf).unwrap();

        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        let r = b.recover();
        assert_eq!(r.quarantined, 1);
        assert_eq!(r.torn_discarded, 0);
        assert_eq!(
            r.chunks.iter().map(|(k, _)| k.page).collect::<Vec<_>>(),
            vec![0, 2],
            "records behind the corrupt one still recover"
        );
        assert_eq!(b.stats().quarantined, 1);
    }

    #[test]
    fn delete_survives_crash() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        b.append_put(&key(0), &data(1, 32)).unwrap();
        b.append_put(&key(1), &data(2, 32)).unwrap();
        b.append_delete(&key(0)).unwrap();
        drop(b);

        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        let r = b.recover();
        assert_eq!(r.chunks.iter().map(|(k, _)| k.page).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn compaction_reclaims_dead_segments_and_preserves_live_set() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut cfg = DiskConfig::new(&dir);
        cfg.segment_bytes = 256; // force frequent rolls
        let mut b = DiskBackend::open(cfg.clone()).unwrap();
        for p in 0..20 {
            b.append_put(&key(p), &data(p as u8, 100)).unwrap();
        }
        for p in 0..16 {
            b.append_delete(&key(p)).unwrap();
        }
        let before = b.stats();
        assert!(before.segments > 2, "rolling produced several segments");
        assert!(before.dead_bytes > 0);

        let reclaimed = b.maybe_compact().unwrap();
        assert!(reclaimed > 0, "compaction reclaimed dead segments");
        let after = b.stats();
        assert!(after.segments < before.segments);
        assert!(after.compactions > 0);
        drop(b);

        let mut b = DiskBackend::open(cfg).unwrap();
        let r = b.recover();
        assert_eq!(
            r.chunks.iter().map(|(k, _)| k.page).collect::<Vec<_>>(),
            (16..20).collect::<Vec<_>>(),
            "live set identical across compaction + restart"
        );
    }

    #[test]
    fn delete_accounts_dead_bytes_for_record_and_tombstone() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        b.append_put(&key(0), &data(1, 64)).unwrap();
        let live = b.stats().live_bytes;
        assert!(live > 0);
        assert_eq!(b.stats().dead_bytes, 0);
        b.append_delete(&key(0)).unwrap();
        let s = b.stats();
        assert_eq!(s.live_bytes, 0);
        assert!(
            s.dead_bytes > live,
            "both the dead record and its tombstone count toward compaction"
        );
        // A delete with no backing record appends nothing.
        let before = b.stats().dead_bytes;
        b.append_delete(&key(9)).unwrap();
        assert_eq!(b.stats().dead_bytes, before);
    }

    #[test]
    fn verify_detects_on_media_damage() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        let mut b = DiskBackend::open(DiskConfig::new(&dir)).unwrap();
        b.append_put(&key(0), &data(7, 64)).unwrap();
        b.append_put(&key(1), &Payload::Sim(64)).unwrap();
        assert!(b.verify(&key(0)).unwrap());
        assert!(b.verify(&key(1)).unwrap());
        assert!(b.verify(&key(9)).unwrap(), "no record means nothing to damage");
        b.corrupt(&key(0)).unwrap();
        b.corrupt(&key(1)).unwrap();
        assert!(!b.verify(&key(0)).unwrap(), "data record flagged");
        assert!(!b.verify(&key(1)).unwrap(), "sim record flagged");
    }

    #[test]
    fn corrupt_superblock_refuses_to_open() {
        let dir = tmp();
        let _c = Cleanup(dir.clone());
        drop(DiskBackend::open(DiskConfig::new(&dir)).unwrap());
        let sb = dir.join(SUPERBLOCK);
        let mut b = fs::read(&sb).unwrap();
        b[0] ^= 0xFF;
        fs::write(&sb, &b).unwrap();
        assert!(DiskBackend::open(DiskConfig::new(&dir)).is_err());
    }

    #[test]
    fn backend_spec_fans_out_per_provider() {
        let spec = BackendSpec::disk("/tmp/sads-x");
        match spec.for_provider(3) {
            BackendConfig::Disk(cfg) => {
                assert!(cfg.dir.ends_with("provider-0003"));
            }
            other => panic!("expected disk config, got {other:?}"),
        }
        assert_eq!(BackendSpec::Memory.for_provider(3), BackendConfig::Memory);
    }
}
