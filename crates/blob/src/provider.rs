//! Data-provider storage: a bounded chunk store with access accounting
//! (feeding the introspection layer and the data-removal strategies),
//! optionally persisted through a durable [`ChunkBackend`].
//!
//! The store is sharded: keys stripe across independently locked shards
//! so concurrent readers and writers on different shards never contend.
//! All operations take `&self`, which lets one store be shared across
//! threads behind an `Arc` (the threaded runtime's data plane) while the
//! simulated runtime drives it single-threaded with zero semantic
//! difference. Byte payloads are reference-counted [`Payload`] views, so
//! a `get` hands back the stored bytes without copying them.
//!
//! Every payload is served from memory regardless of backend: the
//! backend is a durable log consulted on mutation (put/delete append a
//! record under the owning shard lock) and at open, when
//! [`ChunkStore::open`] replays the surviving chunk set back into the
//! shards. See [`crate::storage`] for the disk format and recovery
//! semantics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use sads_sim::SimTime;

use crate::model::{BlobId, ChunkKey, Payload};
use crate::storage::{
    payload_crc, BackendConfig, BackendStats, ChunkBackend, MemoryBackend, RecoveryReport,
};

/// Number of lock stripes. A small power of two: enough to make chunk
/// operations from a handful of concurrent clients collision-free, small
/// enough that whole-store scans stay cheap.
const SHARDS: usize = 16;

/// Per-chunk bookkeeping kept alongside the payload.
#[derive(Debug, Clone, Copy)]
pub struct ChunkMeta {
    /// When the chunk was stored.
    pub stored_at: SimTime,
    /// Last read (or the store time if never read).
    pub last_access: SimTime,
    /// Number of reads served.
    pub reads: u64,
    /// CRC-32 of the payload recorded at store time — the integrity
    /// scrub's ground truth for the in-memory copy.
    pub crc: u32,
}

/// Result of verifying one stored chunk (see [`ChunkStore::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Both the in-memory payload and the durable record (when one
    /// exists) match their recorded checksums.
    Clean,
    /// A checksum mismatch — in memory or on the durable log.
    Corrupt,
}

/// Why a `put` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutError {
    /// Not enough free capacity.
    Full,
}

#[derive(Debug, Default)]
struct Shard {
    chunks: HashMap<ChunkKey, (Payload, ChunkMeta)>,
}

/// Bounded chunk store — the storage engine of one data provider.
/// Sharded and internally synchronized; see the module docs.
#[derive(Debug)]
pub struct ChunkStore {
    capacity: u64,
    used: AtomicU64,
    items: AtomicU64,
    shards: Box<[Mutex<Shard>]>,
    /// Durable log beneath the shards. Appends happen while the owning
    /// shard lock is held, so per-key log order always matches the
    /// acknowledgment order (lock order is shard → backend everywhere).
    backend: Mutex<Box<dyn ChunkBackend>>,
    total_puts: AtomicU64,
    total_gets: AtomicU64,
    total_misses: AtomicU64,
}

fn shard_of(key: &ChunkKey) -> usize {
    // Pages of one blob version spread round-robin over the stripes;
    // mix in blob and version so distinct blobs do not collide in step.
    let h = key
        .page
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(key.blob.0.wrapping_mul(0x85eb_ca6b))
        .wrapping_add(key.version.0);
    (h as usize) & (SHARDS - 1)
}

impl ChunkStore {
    /// A store that can hold up to `capacity` bytes, with no durability
    /// (in-memory backend).
    pub fn new(capacity: u64) -> Self {
        ChunkStore {
            capacity,
            used: AtomicU64::new(0),
            items: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            backend: Mutex::new(Box::new(MemoryBackend)),
            total_puts: AtomicU64::new(0),
            total_gets: AtomicU64::new(0),
            total_misses: AtomicU64::new(0),
        }
    }

    /// Open a store over the configured backend, recovering whatever
    /// survived the last crash into the in-memory shards. Recovered
    /// chunks are stamped `now` and report zero reads. Returns the store
    /// and the backend's [`RecoveryReport`] (chunk list, quarantined and
    /// torn-record counts) so the owning service can re-announce its
    /// inventory.
    ///
    /// A backend that fails to open is a deployment error (bad
    /// directory, corrupt superblock) and panics: a provider must not
    /// come up half-durable.
    pub fn open(capacity: u64, backend: &BackendConfig, now: SimTime) -> (Self, RecoveryReport) {
        let mut backend = backend
            .build()
            .unwrap_or_else(|e| panic!("chunk backend failed to open ({backend:?}): {e}"));
        let report = backend.recover();
        let store = ChunkStore {
            capacity,
            used: AtomicU64::new(0),
            items: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            backend: Mutex::new(backend),
            total_puts: AtomicU64::new(0),
            total_gets: AtomicU64::new(0),
            total_misses: AtomicU64::new(0),
        };
        for (key, data) in &report.chunks {
            let size = data.len();
            let mut shard = store.shards[shard_of(key)].lock();
            if store.used.load(Ordering::Relaxed) + size > capacity {
                // A shrunk capacity cannot re-admit everything; keep the
                // prefix that fits. (The log still holds the rest.)
                break;
            }
            store.used.fetch_add(size, Ordering::Relaxed);
            store.items.fetch_add(1, Ordering::Relaxed);
            let meta =
                ChunkMeta { stored_at: now, last_access: now, reads: 0, crc: payload_crc(data) };
            shard.chunks.insert(*key, (data.clone(), meta));
        }
        (store, report)
    }

    /// Store a chunk. Idempotent for retransmissions (an existing key is
    /// kept, counted as success, and not double-charged).
    pub fn put(&self, key: ChunkKey, data: Payload, now: SimTime) -> Result<(), PutError> {
        let mut shard = self.shards[shard_of(&key)].lock();
        if shard.chunks.contains_key(&key) {
            self.total_puts.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let size = data.len();
        let crc = payload_crc(&data);
        // Reserve capacity optimistically; roll back on overflow. The
        // shard lock is held, so the same key cannot double-reserve.
        let prev = self.used.fetch_add(size, Ordering::Relaxed);
        if prev + size > self.capacity {
            self.used.fetch_sub(size, Ordering::Relaxed);
            return Err(PutError::Full);
        }
        // Persist before acknowledging; a backend that cannot write is
        // fail-stop (better a dead provider than a lying one).
        self.backend
            .lock()
            .append_put(&key, &data)
            .expect("chunk backend append failed; provider is fail-stop");
        self.items.fetch_add(1, Ordering::Relaxed);
        self.total_puts.fetch_add(1, Ordering::Relaxed);
        shard
            .chunks
            .insert(key, (data, ChunkMeta { stored_at: now, last_access: now, reads: 0, crc }));
        Ok(())
    }

    /// Fetch a chunk, updating access accounting. The returned payload is
    /// a reference-counted view of the stored bytes — no copy.
    pub fn get(&self, key: &ChunkKey, now: SimTime) -> Option<Payload> {
        self.total_gets.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[shard_of(key)].lock();
        match shard.chunks.get_mut(key) {
            Some((data, meta)) => {
                meta.last_access = now;
                meta.reads += 1;
                Some(data.clone())
            }
            None => {
                self.total_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Peek a chunk's payload without touching accounting (replication
    /// repair reads use this so repair traffic does not look like heat).
    pub fn peek(&self, key: &ChunkKey) -> Option<Payload> {
        self.shards[shard_of(key)].lock().chunks.get(key).map(|(d, _)| d.clone())
    }

    /// Record a read served from a front cache: update the chunk's access
    /// accounting exactly as [`ChunkStore::get`] would, without fetching
    /// the payload. Keeps the heat signal the introspection layer and the
    /// removal strategies see identical whether a GET hit the cache or
    /// the store. Returns whether the chunk exists.
    pub fn touch(&self, key: &ChunkKey, now: SimTime) -> bool {
        self.total_gets.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[shard_of(key)].lock();
        match shard.chunks.get_mut(key) {
            Some((_, meta)) => {
                meta.last_access = now;
                meta.reads += 1;
                true
            }
            None => {
                self.total_misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Accounting for one chunk.
    pub fn meta(&self, key: &ChunkKey) -> Option<ChunkMeta> {
        self.shards[shard_of(key)].lock().chunks.get(key).map(|(_, m)| *m)
    }

    /// Delete a chunk; returns the freed bytes. The in-memory removal
    /// and the backend tombstone happen under the same shard lock, so no
    /// interleaved put/recovery can observe one without the other.
    pub fn delete(&self, key: &ChunkKey) -> Option<u64> {
        let mut shard = self.shards[shard_of(key)].lock();
        match shard.chunks.remove(key) {
            Some((d, _)) => {
                self.backend
                    .lock()
                    .append_delete(key)
                    .expect("chunk backend delete failed; provider is fail-stop");
                let n = d.len();
                self.used.fetch_sub(n, Ordering::Relaxed);
                self.items.fetch_sub(1, Ordering::Relaxed);
                Some(n)
            }
            None => {
                // No memory copy, but the durable log may still hold the
                // record: capacity-bounded recovery re-admits only a
                // prefix of what survived. Tombstone it anyway — GC
                // sweeps hit exactly these cold chunks, and without the
                // tombstone the dead bytes never accrue, compaction
                // never triggers, and the chunk resurrects on restart.
                // (A backend with no record for the key appends nothing.)
                self.backend
                    .lock()
                    .append_delete(key)
                    .expect("chunk backend delete failed; provider is fail-stop");
                None
            }
        }
    }

    /// Verify one chunk's integrity: recompute the in-memory payload's
    /// CRC against the checksum recorded at store time, then ask the
    /// durable backend to re-verify its own record (a disk backend
    /// re-reads the frame and checks the on-disk CRC; the memory
    /// backend has nothing durable to check). Returns `None` when the
    /// chunk is not stored here — the scrubber treats that as a miss,
    /// not corruption, since GC may race ahead of the cursor.
    pub fn verify(&self, key: &ChunkKey) -> Option<VerifyOutcome> {
        let shard = self.shards[shard_of(key)].lock();
        let (data, meta) = shard.chunks.get(key)?;
        if payload_crc(data) != meta.crc {
            return Some(VerifyOutcome::Corrupt);
        }
        // An unreadable durable record is exactly the damage the scrub
        // exists to find, so an I/O error verifies as corrupt rather
        // than tripping the fail-stop path.
        Some(match self.backend.lock().verify(key) {
            Ok(true) => VerifyOutcome::Clean,
            Ok(false) | Err(_) => VerifyOutcome::Corrupt,
        })
    }

    /// Remove a chunk that failed verification. Mechanically identical
    /// to [`ChunkStore::delete`] (tombstone included), kept distinct so
    /// callers account scrub-driven removals separately from GC.
    pub fn quarantine(&self, key: &ChunkKey) -> Option<u64> {
        self.delete(key)
    }

    /// Fault injection for tests and experiments: silently damage the
    /// stored copy of `key` — flip a byte of a real payload, or skew
    /// the recorded checksum of a simulated one — and damage the
    /// durable record too. No accounting changes; the next
    /// [`ChunkStore::verify`] must be what notices. Returns whether the
    /// chunk existed.
    pub fn inject_corruption(&self, key: &ChunkKey) -> bool {
        let mut shard = self.shards[shard_of(key)].lock();
        let Some((data, meta)) = shard.chunks.get_mut(key) else {
            return false;
        };
        match data {
            Payload::Data(bytes) if !bytes.is_empty() => {
                let mut v = bytes.to_vec();
                v[0] ^= 0xff;
                *data = Payload::Data(bytes::Bytes::from(v));
            }
            _ => meta.crc ^= 0xdead_beef,
        }
        self.backend.lock().corrupt(key).ok();
        true
    }

    /// Keys strictly after `after` in sorted order, up to `max` — the
    /// integrity scrub's cursor walk. A `None` cursor starts from the
    /// beginning; fewer than `max` keys means the walk reached the end.
    pub fn keys_after(&self, after: Option<ChunkKey>, max: usize) -> Vec<ChunkKey> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.lock();
            out.extend(s.chunks.keys().copied().filter(|k| after.is_none_or(|a| *k > a)));
        }
        out.sort();
        out.truncate(max);
        out
    }

    /// Give the backend a compaction opportunity (called from the
    /// provider's heartbeat). Returns the bytes reclaimed, 0 when no
    /// segment crossed its dead-byte threshold.
    pub fn maybe_compact(&self) -> u64 {
        self.backend
            .lock()
            .maybe_compact()
            .expect("chunk backend compaction failed; provider is fail-stop")
    }

    /// Occupancy / maintenance counters of the durable backend (all
    /// zeros for the memory backend).
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.lock().stats()
    }

    /// Number of chunks held.
    pub fn len(&self) -> usize {
        self.items.load(Ordering::Relaxed) as usize
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Fraction of capacity in use (0..=1).
    pub fn fill_ratio(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used() as f64 / self.capacity as f64
        }
    }

    /// Total successful+idempotent puts since creation.
    pub fn total_puts(&self) -> u64 {
        self.total_puts.load(Ordering::Relaxed)
    }

    /// Total gets (hits + misses).
    pub fn total_gets(&self) -> u64 {
        self.total_gets.load(Ordering::Relaxed)
    }

    /// Gets that found nothing.
    pub fn total_misses(&self) -> u64 {
        self.total_misses.load(Ordering::Relaxed)
    }

    /// Snapshot of `(key, meta)` pairs, sorted by key — removal
    /// strategies scan this. (Sorted so strategy decisions are
    /// deterministic regardless of hash order.)
    pub fn iter_meta(&self) -> Vec<(ChunkKey, ChunkMeta)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let s = shard.lock();
            out.extend(s.chunks.iter().map(|(k, (_, m))| (*k, *m)));
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// All keys belonging to one blob, sorted (decommission / GC helper).
    pub fn keys_of_blob(&self, blob: BlobId) -> Vec<ChunkKey> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.lock();
            out.extend(s.chunks.keys().filter(|k| k.blob == blob).copied());
        }
        out.sort();
        out
    }

    /// All keys, sorted (drain helper for decommissioning a provider).
    pub fn all_keys(&self) -> Vec<ChunkKey> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            out.extend(shard.lock().chunks.keys().copied());
        }
        out.sort();
        out
    }
}

/// A small LRU of hot chunks fronting the [`ChunkStore`] on the GET
/// path. Chunks are immutable once written (a `(blob, version, page)` key
/// never changes content), so the cache needs no coherence protocol —
/// the only invalidation is [`ReadCache::remove`] when a chunk is deleted
/// outright (GC / decommission), purely to release the memory early.
///
/// Payloads are refcounted views, so caching costs a clone of the handle,
/// not a copy of the bytes. Recency is a monotonic sequence number per
/// entry; eviction scans for the minimum, which is deterministic and
/// cheap at the intended capacity (a few hundred entries).
#[derive(Debug)]
pub struct ReadCache {
    capacity: usize,
    seq: u64,
    entries: HashMap<ChunkKey, (Payload, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ReadCache {
    /// A cache holding up to `capacity` chunks. Zero capacity disables it.
    pub fn new(capacity: usize) -> Self {
        ReadCache { capacity, seq: 0, entries: HashMap::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up a chunk, refreshing its recency on hit.
    pub fn get(&mut self, key: &ChunkKey) -> Option<Payload> {
        if let Some((data, stamp)) = self.entries.get_mut(key) {
            self.seq += 1;
            *stamp = self.seq;
            self.hits += 1;
            Some(data.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a chunk just served from the store, evicting the least
    /// recently used entry if full.
    pub fn insert(&mut self, key: ChunkKey, data: Payload) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) =
                self.entries.iter().min_by_key(|&(k, &(_, s))| (s, *k)).map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.seq += 1;
        self.entries.insert(key, (data, self.seq));
    }

    /// Drop a deleted chunk's entry (if any).
    pub fn remove(&mut self, key: &ChunkKey) {
        self.entries.remove(key);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the store.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced to make room (capacity pressure, not deletes).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VersionId;

    fn key(p: u64) -> ChunkKey {
        ChunkKey { blob: BlobId(1), version: VersionId(1), page: p }
    }

    fn t(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    #[test]
    fn put_get_delete_with_capacity_accounting() {
        let s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(60), t(0)).unwrap();
        assert_eq!(s.used(), 60);
        assert_eq!(s.put(key(1), Payload::Sim(60), t(0)), Err(PutError::Full));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&key(0), t(1)).unwrap().len(), 60);
        assert_eq!(s.delete(&key(0)), Some(60));
        assert_eq!(s.used(), 0);
        assert!(s.is_empty());
        assert_eq!(s.delete(&key(0)), None);
    }

    #[test]
    fn idempotent_put_does_not_double_charge() {
        let s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(60), t(0)).unwrap();
        s.put(key(0), Payload::Sim(60), t(5)).unwrap();
        assert_eq!(s.used(), 60);
        assert_eq!(s.total_puts(), 2);
    }

    #[test]
    fn access_accounting_tracks_reads() {
        let s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(10), t(0)).unwrap();
        assert!(s.get(&key(0), t(3)).is_some());
        assert!(s.get(&key(0), t(7)).is_some());
        assert!(s.get(&key(9), t(8)).is_none());
        let m = s.meta(&key(0)).unwrap();
        assert_eq!(m.reads, 2);
        assert_eq!(m.last_access, t(7));
        assert_eq!(m.stored_at, t(0));
        assert_eq!(s.total_gets(), 3);
        assert_eq!(s.total_misses(), 1);
        // peek must not disturb accounting
        assert!(s.peek(&key(0)).is_some());
        assert_eq!(s.meta(&key(0)).unwrap().reads, 2);
    }

    #[test]
    fn fill_ratio_and_blob_scan() {
        let s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(25), t(0)).unwrap();
        s.put(
            ChunkKey { blob: BlobId(2), version: VersionId(1), page: 0 },
            Payload::Sim(25),
            t(0),
        )
        .unwrap();
        assert!((s.fill_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(s.keys_of_blob(BlobId(1)).len(), 1);
        assert_eq!(s.all_keys().len(), 2);
        assert_eq!(ChunkStore::new(0).fill_ratio(), 0.0);
    }

    #[test]
    fn scans_are_sorted_across_shards() {
        let s = ChunkStore::new(1 << 20);
        // Enough pages to land in every stripe.
        for p in (0..64).rev() {
            s.put(key(p), Payload::Sim(8), t(0)).unwrap();
        }
        let keys = s.all_keys();
        assert_eq!(keys.len(), 64);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys sorted");
        let meta = s.iter_meta();
        assert!(meta.windows(2).all(|w| w[0].0 < w[1].0), "meta sorted");
    }

    #[test]
    fn zero_copy_get_shares_the_stored_allocation() {
        let s = ChunkStore::new(1 << 20);
        let data = bytes::Bytes::from(vec![7u8; 4096]);
        s.put(key(0), Payload::Data(data.slice(..)), t(0)).unwrap();
        let got = s.get(&key(0), t(1)).unwrap();
        match got {
            Payload::Data(b) => {
                assert_eq!(b.len(), 4096);
                assert_eq!(b.as_ref().as_ptr(), data.as_ref().as_ptr(), "no copy on get");
            }
            Payload::Sim(_) => panic!("expected real bytes"),
        }
    }

    #[test]
    fn touch_matches_get_accounting() {
        let s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(10), t(0)).unwrap();
        assert!(s.get(&key(0), t(3)).is_some());
        assert!(s.touch(&key(0), t(7)));
        let m = s.meta(&key(0)).unwrap();
        assert_eq!(m.reads, 2, "cache hit counts as a read");
        assert_eq!(m.last_access, t(7));
        assert_eq!(s.total_gets(), 2);
        assert!(!s.touch(&key(9), t(8)), "absent chunk");
        assert_eq!(s.total_misses(), 1);
    }

    #[test]
    fn verify_is_clean_until_corruption_is_injected() {
        let s = ChunkStore::new(1 << 20);
        s.put(key(0), Payload::Data(bytes::Bytes::from(vec![5u8; 128])), t(0)).unwrap();
        s.put(key(1), Payload::Sim(64), t(0)).unwrap();
        assert_eq!(s.verify(&key(0)), Some(VerifyOutcome::Clean));
        assert_eq!(s.verify(&key(1)), Some(VerifyOutcome::Clean));
        assert_eq!(s.verify(&key(9)), None, "absent chunk is a miss, not corruption");
        assert!(s.inject_corruption(&key(0)), "real bytes: payload flip");
        assert!(s.inject_corruption(&key(1)), "sim payload: checksum skew");
        assert!(!s.inject_corruption(&key(9)));
        assert_eq!(s.verify(&key(0)), Some(VerifyOutcome::Corrupt));
        assert_eq!(s.verify(&key(1)), Some(VerifyOutcome::Corrupt));
        // Quarantine behaves like delete: frees bytes, leaves a tombstone.
        assert_eq!(s.quarantine(&key(0)), Some(128));
        assert_eq!(s.verify(&key(0)), None);
        assert_eq!(s.used(), 64);
    }

    #[test]
    fn verify_catches_disk_level_damage() {
        let (cfg, dir) = disk_cfg("verify");
        let (s, _) = ChunkStore::open(1 << 20, &cfg, t(0));
        s.put(key(0), Payload::Data(bytes::Bytes::from(vec![9u8; 256])), t(0)).unwrap();
        assert_eq!(s.verify(&key(0)), Some(VerifyOutcome::Clean));
        assert!(s.inject_corruption(&key(0)));
        assert_eq!(s.verify(&key(0)), Some(VerifyOutcome::Corrupt));
        // Quarantine, then reopen: the tombstone keeps the damaged
        // record from resurrecting.
        assert_eq!(s.quarantine(&key(0)), Some(256));
        drop(s);
        let (s, r) = ChunkStore::open(1 << 20, &cfg, t(5));
        assert!(r.chunks.is_empty());
        assert!(s.get(&key(0), t(6)).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_delete_tombstones_disk_only_chunks() {
        let (cfg, dir) = disk_cfg("gc-dead");
        {
            let (s, _) = ChunkStore::open(1 << 20, &cfg, t(0));
            s.put(key(0), Payload::Sim(400), t(0)).unwrap();
            s.put(key(1), Payload::Sim(400), t(0)).unwrap();
        }
        // Reopen with room for only one chunk: key(1) stays disk-only.
        let (s, _) = ChunkStore::open(500, &cfg, t(1));
        assert_eq!(s.len(), 1);
        let before = s.backend_stats().dead_bytes;
        assert_eq!(s.delete(&key(1)), None, "no memory copy to free");
        assert!(
            s.backend_stats().dead_bytes > before,
            "the disk-only record still turns into dead bytes for compaction"
        );
        drop(s);
        let (s, r) = ChunkStore::open(1 << 20, &cfg, t(2));
        assert_eq!(r.chunks.len(), 1);
        assert!(s.get(&key(1), t(3)).is_none(), "GC-deleted chunk must not resurrect");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_after_pages_through_the_store() {
        let s = ChunkStore::new(1 << 20);
        for p in 0..10 {
            s.put(key(p), Payload::Sim(8), t(0)).unwrap();
        }
        let first = s.keys_after(None, 4);
        assert_eq!(first.iter().map(|k| k.page).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let second = s.keys_after(Some(first[3]), 4);
        assert_eq!(second.iter().map(|k| k.page).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        let tail = s.keys_after(Some(second[3]), 4);
        assert_eq!(tail.len(), 2, "short page signals the end of the walk");
    }

    #[test]
    fn read_cache_evicts_least_recently_used() {
        let mut c = ReadCache::new(2);
        c.insert(key(0), Payload::Sim(1));
        c.insert(key(1), Payload::Sim(2));
        assert!(c.get(&key(0)).is_some()); // refresh 0; 1 becomes LRU
        c.insert(key(2), Payload::Sim(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(1)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn read_cache_zero_capacity_is_disabled() {
        let mut c = ReadCache::new(0);
        c.insert(key(0), Payload::Sim(1));
        assert!(c.is_empty());
        assert!(c.get(&key(0)).is_none());
    }

    #[test]
    fn read_cache_remove_invalidates() {
        let mut c = ReadCache::new(4);
        c.insert(key(0), Payload::Sim(1));
        c.remove(&key(0));
        assert!(c.get(&key(0)).is_none());
    }

    fn disk_cfg(name: &str) -> (BackendConfig, std::path::PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("sads-provider-test-{}-{name}", std::process::id()));
        (BackendConfig::Disk(crate::storage::DiskConfig::new(&dir)), dir)
    }

    #[test]
    fn open_with_disk_backend_recovers_after_crash() {
        let (cfg, dir) = disk_cfg("recover");
        {
            let (s, r) = ChunkStore::open(1 << 20, &cfg, t(0));
            assert!(r.chunks.is_empty(), "fresh dir recovers nothing");
            s.put(key(0), Payload::Data(bytes::Bytes::from(vec![3u8; 256])), t(1)).unwrap();
            s.put(key(1), Payload::Sim(512), t(1)).unwrap();
            // crash: drop without any shutdown protocol
        }
        let (s, r) = ChunkStore::open(1 << 20, &cfg, t(9));
        assert_eq!(r.chunks.len(), 2);
        assert_eq!(r.bytes, 768);
        assert_eq!(s.len(), 2);
        assert_eq!(s.used(), 768);
        assert_eq!(s.get(&key(0), t(10)).unwrap().len(), 256);
        assert_eq!(s.meta(&key(1)).unwrap().stored_at, t(9), "recovered chunks restamped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_tombstone_survives_crash() {
        let (cfg, dir) = disk_cfg("delete");
        {
            let (s, _) = ChunkStore::open(1 << 20, &cfg, t(0));
            s.put(key(0), Payload::Sim(64), t(0)).unwrap();
            s.put(key(1), Payload::Sim(64), t(0)).unwrap();
            assert_eq!(s.delete(&key(0)), Some(64));
        }
        let (s, r) = ChunkStore::open(1 << 20, &cfg, t(5));
        assert_eq!(r.chunks.len(), 1);
        assert!(s.get(&key(0), t(6)).is_none(), "deleted chunk stays gone after recovery");
        assert!(s.get(&key(1), t(6)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_backend_recovers_nothing() {
        let (s, r) = ChunkStore::open(1 << 20, &BackendConfig::Memory, t(0));
        s.put(key(0), Payload::Sim(64), t(0)).unwrap();
        assert!(r.chunks.is_empty());
        drop(s);
        let (s, r) = ChunkStore::open(1 << 20, &BackendConfig::Memory, t(1));
        assert!(r.chunks.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.backend_stats(), BackendStats::default());
    }
}
