//! Data-provider storage: a bounded in-memory chunk store with access
//! accounting (feeding the introspection layer and the data-removal
//! strategies).

use std::collections::HashMap;

use sads_sim::SimTime;

use crate::model::{BlobId, ChunkKey, Payload};

/// Per-chunk bookkeeping kept alongside the payload.
#[derive(Debug, Clone, Copy)]
pub struct ChunkMeta {
    /// When the chunk was stored.
    pub stored_at: SimTime,
    /// Last read (or the store time if never read).
    pub last_access: SimTime,
    /// Number of reads served.
    pub reads: u64,
}

/// Why a `put` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutError {
    /// Not enough free capacity.
    Full,
}

/// Bounded in-memory chunk store — the storage engine of one data
/// provider.
#[derive(Debug)]
pub struct ChunkStore {
    capacity: u64,
    used: u64,
    chunks: HashMap<ChunkKey, (Payload, ChunkMeta)>,
    total_puts: u64,
    total_gets: u64,
    total_misses: u64,
}

impl ChunkStore {
    /// A store that can hold up to `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ChunkStore {
            capacity,
            used: 0,
            chunks: HashMap::new(),
            total_puts: 0,
            total_gets: 0,
            total_misses: 0,
        }
    }

    /// Store a chunk. Idempotent for retransmissions (an existing key is
    /// kept, counted as success, and not double-charged).
    pub fn put(&mut self, key: ChunkKey, data: Payload, now: SimTime) -> Result<(), PutError> {
        if self.chunks.contains_key(&key) {
            self.total_puts += 1;
            return Ok(());
        }
        let size = data.len();
        if self.used + size > self.capacity {
            return Err(PutError::Full);
        }
        self.used += size;
        self.total_puts += 1;
        self.chunks
            .insert(key, (data, ChunkMeta { stored_at: now, last_access: now, reads: 0 }));
        Ok(())
    }

    /// Fetch a chunk, updating access accounting.
    pub fn get(&mut self, key: &ChunkKey, now: SimTime) -> Option<Payload> {
        self.total_gets += 1;
        match self.chunks.get_mut(key) {
            Some((data, meta)) => {
                meta.last_access = now;
                meta.reads += 1;
                Some(data.clone())
            }
            None => {
                self.total_misses += 1;
                None
            }
        }
    }

    /// Peek a chunk's payload without touching accounting (replication
    /// repair reads use this so repair traffic does not look like heat).
    pub fn peek(&self, key: &ChunkKey) -> Option<&Payload> {
        self.chunks.get(key).map(|(d, _)| d)
    }

    /// Accounting for one chunk.
    pub fn meta(&self, key: &ChunkKey) -> Option<&ChunkMeta> {
        self.chunks.get(key).map(|(_, m)| m)
    }

    /// Delete a chunk; returns the freed bytes.
    pub fn delete(&mut self, key: &ChunkKey) -> Option<u64> {
        self.chunks.remove(key).map(|(d, _)| {
            let n = d.len();
            self.used -= n;
            n
        })
    }

    /// Number of chunks held.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Fraction of capacity in use (0..=1).
    pub fn fill_ratio(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Total successful+idempotent puts since creation.
    pub fn total_puts(&self) -> u64 {
        self.total_puts
    }

    /// Total gets (hits + misses).
    pub fn total_gets(&self) -> u64 {
        self.total_gets
    }

    /// Gets that found nothing.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Iterate `(key, meta)` pairs — removal strategies scan this.
    pub fn iter_meta(&self) -> impl Iterator<Item = (&ChunkKey, &ChunkMeta)> {
        self.chunks.iter().map(|(k, (_, m))| (k, m))
    }

    /// All keys belonging to one blob (decommission / GC helper).
    pub fn keys_of_blob(&self, blob: BlobId) -> Vec<ChunkKey> {
        self.chunks.keys().filter(|k| k.blob == blob).copied().collect()
    }

    /// All keys (drain helper for decommissioning a provider).
    pub fn all_keys(&self) -> Vec<ChunkKey> {
        self.chunks.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VersionId;

    fn key(p: u64) -> ChunkKey {
        ChunkKey { blob: BlobId(1), version: VersionId(1), page: p }
    }

    fn t(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    #[test]
    fn put_get_delete_with_capacity_accounting() {
        let mut s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(60), t(0)).unwrap();
        assert_eq!(s.used(), 60);
        assert_eq!(s.put(key(1), Payload::Sim(60), t(0)), Err(PutError::Full));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&key(0), t(1)).unwrap().len(), 60);
        assert_eq!(s.delete(&key(0)), Some(60));
        assert_eq!(s.used(), 0);
        assert!(s.is_empty());
        assert_eq!(s.delete(&key(0)), None);
    }

    #[test]
    fn idempotent_put_does_not_double_charge() {
        let mut s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(60), t(0)).unwrap();
        s.put(key(0), Payload::Sim(60), t(5)).unwrap();
        assert_eq!(s.used(), 60);
        assert_eq!(s.total_puts(), 2);
    }

    #[test]
    fn access_accounting_tracks_reads() {
        let mut s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(10), t(0)).unwrap();
        assert!(s.get(&key(0), t(3)).is_some());
        assert!(s.get(&key(0), t(7)).is_some());
        assert!(s.get(&key(9), t(8)).is_none());
        let m = s.meta(&key(0)).unwrap();
        assert_eq!(m.reads, 2);
        assert_eq!(m.last_access, t(7));
        assert_eq!(m.stored_at, t(0));
        assert_eq!(s.total_gets(), 3);
        assert_eq!(s.total_misses(), 1);
        // peek must not disturb accounting
        assert!(s.peek(&key(0)).is_some());
        assert_eq!(s.meta(&key(0)).unwrap().reads, 2);
    }

    #[test]
    fn fill_ratio_and_blob_scan() {
        let mut s = ChunkStore::new(100);
        s.put(key(0), Payload::Sim(25), t(0)).unwrap();
        s.put(
            ChunkKey { blob: BlobId(2), version: VersionId(1), page: 0 },
            Payload::Sim(25),
            t(0),
        )
        .unwrap();
        assert!((s.fill_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(s.keys_of_blob(BlobId(1)).len(), 1);
        assert_eq!(s.all_keys().len(), 2);
        assert_eq!(ChunkStore::new(0).fill_ratio(), 0.0);
    }
}
