//! Runtime adapters: drive the runtime-agnostic services on either the
//! deterministic cluster simulator ([`sim`]) or real threads with real
//! bytes ([`threaded`]).

mod executor;
pub mod sim;
pub mod threaded;
