//! Sharded work-stealing service executor.
//!
//! The threaded runtime used to give every actor its own OS thread; past a
//! few dozen clients the deployment became a few hundred threads fighting
//! over the scheduler and throughput collapsed (see BENCH_perf.json history:
//! 49 GB/s at 4 clients down to 13.5 GB/s at 64). This module replaces that
//! with a **bounded pool of event-loop workers**:
//!
//! * every node — service or client core — is a [`Cell`]: a multiplexed
//!   state machine with its own mailbox, timer heap and RNG,
//! * cells are owned by `N ≈ cores` **shards**, each with a run queue and
//!   one worker thread,
//! * a sender marks the target cell *scheduled* (one atomic CAS) and pushes
//!   it onto its home shard's run queue; idle workers **steal** ready cells
//!   from the back of other shards' queues,
//! * a worker drains a cell's mailbox in **batches** (up to
//!   [`DRAIN_BATCH`] envelopes per mailbox lock, at most [`MAX_PER_RUN`]
//!   per scheduling turn) so one hot service cannot starve its shard — the
//!   cell is simply re-queued at the back and the worker moves on.
//!
//! Lifecycle guarantees the rest of the repo relies on:
//!
//! * **Panic isolation** — a handler panic poisons only its own cell: the
//!   cell is marked dead, its mailbox dropped, its routing slot cleared and
//!   `runtime.service_panics` incremented; the worker (and every other cell
//!   on the shard) keeps running.
//! * **Observability survives multiplexing** — envelopes still carry
//!   `sent_ns`, so `Net` spans keep attributing mailbox wait as `queue_ns`,
//!   and [`Env::queue_depth_seconds`] reports the age of the oldest queued
//!   envelope of *this* cell (not of the whole shard).

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sads_sim::{
    Counter, FlightEvent, FlightRecorder, FlightRing, Gauge, Histogram, MetricSink, NodeId,
    Registry as TelemetryRegistry, SimDuration, SimTime, SpanKind, SpanRecord, SpanSink, TraceCtx,
};

use crate::client::{ClientConfig, ClientCore, ClientOp, Completion};
use crate::model::ClientId;
use crate::rpc::Msg;
use crate::services::{Env, Service};

/// Envelopes drained per mailbox lock acquisition.
const DRAIN_BATCH: usize = 64;
/// Envelopes handled per scheduling turn before the cell yields its worker.
const MAX_PER_RUN: usize = 256;
/// Idle park cap so workers notice `running == false` and freshly
/// registered cross-shard work even without a notification.
const PARK_CAP: Duration = Duration::from_millis(100);

/// What travels between cells.
pub(crate) enum Envelope {
    Msg {
        from: NodeId,
        msg: Msg,
        /// Causal context of the sender's operation, if tracing is on.
        trace: Option<TraceCtx>,
        /// Wall-clock send time (ns since cluster start), so the receiver
        /// can attribute mailbox queueing delay to the trace.
        sent_ns: u64,
    },
    Op {
        op: ClientOp,
        reply: Sender<Completion>,
        /// Ambient context the operation should nest under (e.g. the S3
        /// gateway's per-request span), if tracing is on.
        trace: Option<TraceCtx>,
    },
}

/// What a cell multiplexes: a service, or a client core with its
/// outstanding-op reply routes.
pub(crate) enum NodeKind {
    Service(Box<dyn Service>),
    Client {
        core: Box<ClientCore>,
        pending: HashMap<u64, Sender<Completion>>,
        next_tag: u64,
    },
}

impl NodeKind {
    pub(crate) fn client(
        client_id: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta: Vec<NodeId>,
        cfg: ClientConfig,
    ) -> Self {
        NodeKind::Client {
            core: Box::new(ClientCore::new(client_id, vman, pman, meta, cfg)),
            pending: HashMap::new(),
            next_tag: 1,
        }
    }
}

/// Per-cell mutable state, touched only by the worker currently running
/// the cell (guarded by the `scheduled` flag plus this mutex).
struct NodeState {
    kind: NodeKind,
    timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: SmallRng,
    started: bool,
}

/// One multiplexed node: mailbox + state machine + scheduling flag.
pub(crate) struct Cell {
    id: NodeId,
    /// True while the cell sits in a run queue or is being run. The
    /// transition false→true is the only way into a run queue, so a cell
    /// is never queued twice.
    scheduled: AtomicBool,
    /// Dead cells (killed or panicked) drop their mail and never run again.
    dead: AtomicBool,
    /// Earliest deadline currently registered in a shard timer heap
    /// (`u64::MAX` = none): hot cells run thousands of turns between timer
    /// fires, and without this watermark each turn would push a duplicate
    /// heap entry.
    timer_registered: std::sync::atomic::AtomicU64,
    /// Shard the cell last ran on; senders enqueue it there (locality),
    /// thieves migrate it.
    home: AtomicUsize,
    /// Deepest mailbox ever observed on this cell. The paired gauge
    /// (`runtime.mailbox_hwm{node=…}`) is only written when the watermark
    /// actually rises, so the steady-state send cost is one `fetch_max`.
    mail_hwm: std::sync::atomic::AtomicU64,
    hwm_gauge: Gauge,
    /// Flight-recorder ring for this cell's service family, resolved once
    /// at creation so a recorded turn is a single `Ring::record`.
    ring: Option<Arc<FlightRing>>,
    mailbox: Mutex<VecDeque<Envelope>>,
    node: Mutex<NodeState>,
}

/// Timer registration on a shard: wake at `deadline` and reschedule the
/// cell (stale entries — cell already ran, or died — are skipped).
struct ShardTimer {
    deadline: u64,
    seq: u64,
    cell: Weak<Cell>,
}

impl PartialEq for ShardTimer {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for ShardTimer {}
impl PartialOrd for ShardTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ShardTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// One executor shard: a run queue, its worker's parking lot, and the
/// timers registered by cells that last ran here.
struct Shard {
    runq: StdMutex<VecDeque<Arc<Cell>>>,
    cv: Condvar,
    timers: Mutex<BinaryHeap<std::cmp::Reverse<ShardTimer>>>,
    timer_seq: AtomicUsize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            runq: StdMutex::new(VecDeque::new()),
            cv: Condvar::new(),
            timers: Mutex::new(BinaryHeap::new()),
            timer_seq: AtomicUsize::new(0),
        }
    }
}

/// Bucket bounds for `runtime.dispatch_batch` (envelopes per scheduling
/// turn): powers of two up to the [`MAX_PER_RUN`] fairness cap.
const DISPATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Pre-interned per-shard `runtime.*` handles, so the scheduler hot paths
/// pay one atomic op per update instead of a registry lookup.
struct ShardStats {
    /// `runtime.runq_depth{shard}` — cells queued on the shard right now.
    runq_depth: Gauge,
    /// `runtime.steals{shard}` — cells this shard's worker stole.
    steals: Counter,
    /// `runtime.parks{shard}` / `runtime.unparks{shard}` — idle waits.
    parks: Counter,
    unparks: Counter,
    /// `runtime.dispatch_batch{shard}` — envelopes handled per turn.
    dispatch_batch: Histogram,
    /// `runtime.timer_lag_seconds{shard}` — how late shard timers fire.
    timer_lag: Histogram,
}

impl ShardStats {
    fn new(telem: &TelemetryRegistry, shard: usize) -> Self {
        let s = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", s.as_str())];
        ShardStats {
            runq_depth: telem.gauge("runtime.runq_depth", labels),
            steals: telem.counter("runtime.steals", labels),
            parks: telem.counter("runtime.parks", labels),
            unparks: telem.counter("runtime.unparks", labels),
            dispatch_batch: telem.histogram_with_bounds(
                "runtime.dispatch_batch",
                labels,
                DISPATCH_BOUNDS,
            ),
            timer_lag: telem.histogram("runtime.timer_lag_seconds", labels),
        }
    }
}

/// State shared by workers, senders and the cluster handle.
pub(crate) struct ExecShared {
    /// Grow-only routing table: `NodeId` → live cell.
    slots: RwLock<Vec<Option<Arc<Cell>>>>,
    shards: Vec<Shard>,
    /// Per-shard telemetry handles, parallel to `shards`.
    stats: Vec<ShardStats>,
    running: AtomicBool,
    start: Instant,
    metrics: Arc<Mutex<MetricSink>>,
    telem: Arc<TelemetryRegistry>,
    sink: Option<Arc<SpanSink>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl ExecShared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Route an envelope; returns `false` if the slot is dead or unknown.
    pub(crate) fn send_to(&self, to: NodeId, env: Envelope) -> bool {
        let cell = {
            let slots = self.slots.read();
            match slots.get(to.index()) {
                Some(Some(c)) => Arc::clone(c),
                _ => return false,
            }
        };
        let depth = {
            let mut mb = cell.mailbox.lock();
            mb.push_back(env);
            mb.len() as u64
        };
        if depth > cell.mail_hwm.fetch_max(depth, Ordering::Relaxed) {
            cell.hwm_gauge.set(depth as f64);
        }
        self.schedule(&cell);
        true
    }

    /// Mark `cell` runnable and hand it to its home shard. No-op if it is
    /// already queued or running (the final mailbox re-check in
    /// [`Executor::run_cell`] covers that race).
    fn schedule(&self, cell: &Arc<Cell>) {
        if cell.dead.load(Ordering::Acquire) {
            return;
        }
        if cell.scheduled.swap(true, Ordering::AcqRel) {
            return;
        }
        let home = cell.home.load(Ordering::Relaxed) % self.shards.len();
        let depth = {
            let mut q = self.shards[home].runq.lock().expect("runq");
            q.push_back(Arc::clone(cell));
            q.len()
        };
        self.stats[home].runq_depth.set(depth as f64);
        self.shards[home].cv.notify_one();
    }

    /// Stop routing to `node`, drop its queued mail, and make sure it
    /// never runs again. Its `NodeId` slot can later be re-occupied by
    /// [`Executor::reinstall`].
    pub(crate) fn kill(&self, node: NodeId) {
        let cell = {
            let mut slots = self.slots.write();
            match slots.get_mut(node.index()) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        if let Some(cell) = cell {
            cell.dead.store(true, Ordering::Release);
            cell.mailbox.lock().clear();
        }
    }
}

/// The executor: shared state plus the worker pool.
pub(crate) struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawn `shards` workers (0 = one per available core).
    pub(crate) fn start(
        shards: usize,
        start: Instant,
        metrics: Arc<Mutex<MetricSink>>,
        telem: Arc<TelemetryRegistry>,
        sink: Option<Arc<SpanSink>>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Executor {
        let n = if shards == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).clamp(1, 16)
        } else {
            shards.min(64)
        };
        let shared = Arc::new(ExecShared {
            slots: RwLock::new(Vec::new()),
            shards: (0..n).map(|_| Shard::new()).collect(),
            stats: (0..n).map(|w| ShardStats::new(&telem, w)).collect(),
            running: AtomicBool::new(true),
            start,
            metrics,
            telem,
            sink,
            recorder,
        });
        let workers = (0..n)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sads-exec-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    pub(crate) fn shared(&self) -> &Arc<ExecShared> {
        &self.shared
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Register a new node and schedule its `on_start`.
    pub(crate) fn add_node(&self, kind: NodeKind, seed: u64) -> NodeId {
        let id = {
            let mut slots = self.shared.slots.write();
            slots.push(None);
            NodeId(slots.len() as u32 - 1)
        };
        let cell = self.new_cell(id, kind, seed);
        self.shared.slots.write()[id.index()] = Some(Arc::clone(&cell));
        self.shared.schedule(&cell);
        id
    }

    /// Re-occupy a previously killed slot with a fresh node at the
    /// **same** [`NodeId`]. Fails if the slot is live or never existed.
    pub(crate) fn reinstall(&self, node: NodeId, kind: NodeKind, seed: u64) -> bool {
        let cell = self.new_cell(node, kind, seed);
        {
            let mut slots = self.shared.slots.write();
            match slots.get_mut(node.index()) {
                Some(slot @ None) => *slot = Some(Arc::clone(&cell)),
                _ => return false,
            }
        }
        self.shared.schedule(&cell);
        true
    }

    fn new_cell(&self, id: NodeId, kind: NodeKind, seed: u64) -> Arc<Cell> {
        let family = match &kind {
            NodeKind::Service(s) => s.name(),
            NodeKind::Client { .. } => "client",
        };
        let node_label = id.0.to_string();
        Arc::new(Cell {
            id,
            scheduled: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            timer_registered: std::sync::atomic::AtomicU64::new(u64::MAX),
            home: AtomicUsize::new(id.index() % self.shared.shards.len()),
            mail_hwm: std::sync::atomic::AtomicU64::new(0),
            hwm_gauge: self
                .shared
                .telem
                .gauge("runtime.mailbox_hwm", &[("node", node_label.as_str())]),
            ring: self.shared.recorder.as_ref().map(|r| r.ring(family)),
            mailbox: Mutex::new(VecDeque::new()),
            node: Mutex::new(NodeState {
                kind,
                timers: BinaryHeap::new(),
                rng: SmallRng::seed_from_u64(seed),
                started: false,
            }),
        })
    }

    /// Stop the workers and join them. Queued envelopes are dropped —
    /// blocked [`ClientHandle`](super::threaded::ClientHandle) callers see
    /// their reply channel disconnect.
    pub(crate) fn shutdown(&mut self) {
        self.shared.running.store(false, Ordering::Release);
        for shard in &self.shared.shards {
            let _g = shard.runq.lock().expect("runq");
            shard.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Unroute every cell and drop its mailbox: queued `Op` envelopes
        // hold the caller's reply `Sender`, so dropping them here is what
        // turns a blocked `run()` into an immediate disconnect instead of
        // a full op-timeout wait. Run queues pin cells with strong `Arc`s
        // (a scheduled-but-never-run cell would otherwise outlive the
        // routing table), so both must be cleared. Must happen only after
        // the join above — workers may still be mid-turn until then.
        self.shared.slots.write().clear();
        for shard in &self.shared.shards {
            shard.runq.lock().expect("runq").clear();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The [`Env`] a multiplexed node sees during one callback.
struct ExecEnv<'a> {
    id: NodeId,
    shared: &'a ExecShared,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: &'a mut SmallRng,
    /// This cell's own mailbox, for per-node backlog depth.
    mailbox: &'a Mutex<VecDeque<Envelope>>,
    /// Causal context of the callback being handled; outgoing messages
    /// carry it so replies land in the same trace.
    current: Option<TraceCtx>,
}

impl Env for ExecEnv<'_> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn now(&self) -> SimTime {
        SimTime(self.shared.now_ns())
    }
    fn send(&mut self, to: NodeId, msg: Msg) {
        let sent_ns = self.shared.now_ns();
        self.shared.send_to(
            to,
            Envelope::Msg { from: self.id, msg, trace: self.current, sent_ns },
        );
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let deadline = self.shared.now_ns() + delay.as_nanos();
        self.timers.push(std::cmp::Reverse((deadline, token)));
    }
    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
    fn record(&mut self, name: &str, value: f64) {
        let now = self.now();
        self.shared.metrics.lock().record(name, now, value);
        // Mirror into the live registry as a node-labeled gauge, so the
        // existing call sites feed the telemetry plane with no churn.
        self.shared.telem.set(name, &[("node", self.id.0.to_string().as_str())], value);
    }
    fn incr(&mut self, name: &str, delta: u64) {
        self.shared.metrics.lock().incr(name, delta);
        self.shared.telem.inc(name, &[("node", self.id.0.to_string().as_str())], delta);
    }
    fn span_sink(&self) -> Option<Arc<SpanSink>> {
        self.shared.sink.clone()
    }
    fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        Some(Arc::clone(&self.shared.telem))
    }
    fn trace_ctx(&self) -> Option<TraceCtx> {
        self.current
    }
    fn set_trace_ctx(&mut self, trace: Option<TraceCtx>) {
        self.current = trace;
    }
    fn queue_depth_seconds(&self) -> f64 {
        // Age of the oldest envelope still queued for *this* cell: the
        // multiplexed equivalent of "how far behind is my inbox".
        let mb = self.mailbox.lock();
        match mb.front() {
            Some(Envelope::Msg { sent_ns, .. }) => {
                self.shared.now_ns().saturating_sub(*sent_ns) as f64 / 1e9
            }
            _ => 0.0,
        }
    }
}

/// Record the mailbox-queueing delay of a traced envelope as a `Net`
/// span: in the threaded runtime there is no modeled wire, so the whole
/// delivery delay is queueing (send → drain on the target cell).
fn record_net_span(
    sink: &SpanSink,
    tc: TraceCtx,
    msg: &Msg,
    node: NodeId,
    sent_ns: u64,
    recv_ns: u64,
) {
    sink.record(SpanRecord {
        trace: tc.trace_id,
        span: sink.next_id(),
        parent: tc.span_id,
        service: "net",
        op: sads_sim::Message::op_name(msg),
        node: node.0 as u64,
        start_ns: sent_ns,
        end_ns: recv_ns,
        kind: SpanKind::Net,
        class: sads_sim::Message::span_class(msg),
        queue_ns: recv_ns.saturating_sub(sent_ns),
        xfer_ns: 0,
        wire_ns: 0,
    });
}

fn worker_loop(shared: &ExecShared, w: usize) {
    while shared.running.load(Ordering::Acquire) {
        // Wake cells whose registered timers are due.
        let now = shared.now_ns();
        loop {
            let due = {
                let mut th = shared.shards[w].timers.lock();
                match th.peek() {
                    Some(std::cmp::Reverse(t)) if t.deadline <= now => th.pop(),
                    _ => None,
                }
            };
            match due {
                Some(std::cmp::Reverse(t)) => {
                    // How far past its deadline the heap let this timer
                    // drift — queueing lag of the timer plane itself.
                    shared.stats[w]
                        .timer_lag
                        .observe(now.saturating_sub(t.deadline) as f64 / 1e9);
                    if let Some(cell) = t.cell.upgrade() {
                        cell.timer_registered.store(u64::MAX, Ordering::Release);
                        shared.schedule(&cell);
                    }
                }
                None => break,
            }
        }

        // Own queue first, then steal from the back of a busier shard.
        let next = pop_front(shared, w).or_else(|| steal(shared, w));
        if let Some(cell) = next {
            run_cell(shared, w, &cell);
            continue;
        }

        // Park until the next registered timer, a notification, or the cap.
        let wait = {
            let th = shared.shards[w].timers.lock();
            th.peek()
                .map(|std::cmp::Reverse(t)| {
                    Duration::from_nanos(t.deadline.saturating_sub(now))
                })
                .unwrap_or(PARK_CAP)
                .min(PARK_CAP)
        };
        let g = shared.shards[w].runq.lock().expect("runq");
        if g.is_empty() && shared.running.load(Ordering::Acquire) {
            shared.stats[w].parks.inc(1);
            let _ = shared.shards[w].cv.wait_timeout(g, wait);
            shared.stats[w].unparks.inc(1);
        }
    }
}

fn pop_front(shared: &ExecShared, w: usize) -> Option<Arc<Cell>> {
    let (cell, depth) = {
        let mut q = shared.shards[w].runq.lock().expect("runq");
        let cell = q.pop_front();
        (cell, q.len())
    };
    if cell.is_some() {
        shared.stats[w].runq_depth.set(depth as f64);
    }
    cell
}

fn steal(shared: &ExecShared, w: usize) -> Option<Arc<Cell>> {
    let n = shared.shards.len();
    for i in 1..n {
        let v = (w + i) % n;
        let (cell, depth) = {
            let mut q = shared.shards[v].runq.lock().expect("runq");
            let cell = q.pop_back();
            (cell, q.len())
        };
        if cell.is_some() {
            shared.stats[v].runq_depth.set(depth as f64);
            shared.stats[w].steals.inc(1);
            return cell;
        }
    }
    None
}

/// Run one scheduling turn of `cell` on worker `w`: lazy `on_start`, due
/// timers, then batched mailbox drain up to the fairness cap.
fn run_cell(shared: &ExecShared, w: usize, cell: &Arc<Cell>) {
    cell.home.store(w, Ordering::Relaxed);
    if cell.dead.load(Ordering::Acquire) {
        cell.scheduled.store(false, Ordering::Release);
        return;
    }

    let turn_start = shared.now_ns();
    let mut node = cell.node.lock();
    let outcome = catch_unwind(AssertUnwindSafe(|| drive(shared, cell, &mut node)));
    let next_deadline = node.timers.peek().map(|std::cmp::Reverse((d, _))| *d);
    drop(node);
    let panicked = outcome.is_err();
    let handled = outcome.unwrap_or(0);
    shared.stats[w].dispatch_batch.observe(handled as f64);
    if handled > 0 {
        if let Some(ring) = &cell.ring {
            ring.record(FlightEvent {
                at_ns: turn_start,
                dur_ns: shared.now_ns().saturating_sub(turn_start),
                label: "turn",
                node: cell.id.0 as u64,
                a: handled as u64,
                b: cell.mail_hwm.load(Ordering::Relaxed),
            });
        }
    }

    if panicked {
        // Poison only this cell: unroute it, drop its mail, count it. The
        // worker and every other cell on the shard keep going.
        shared.kill(cell.id);
        shared.metrics.lock().incr("runtime.service_panics", 1);
        shared.telem.inc(
            "runtime.service_panics",
            &[("node", cell.id.0.to_string().as_str())],
            1,
        );
        cell.scheduled.store(false, Ordering::Release);
        return;
    }

    if let Some(deadline) = next_deadline {
        if deadline < cell.timer_registered.load(Ordering::Acquire) {
            cell.timer_registered.store(deadline, Ordering::Release);
            let shard = &shared.shards[w];
            let seq = shard.timer_seq.fetch_add(1, Ordering::Relaxed) as u64;
            shard.timers.lock().push(std::cmp::Reverse(ShardTimer {
                deadline,
                seq,
                cell: Arc::downgrade(cell),
            }));
        }
    }

    cell.scheduled.store(false, Ordering::SeqCst);
    // Re-check after clearing the flag: a sender that pushed while we were
    // draining (and saw `scheduled == true`) relies on this to not lose
    // its wakeup.
    if !cell.mailbox.lock().is_empty() {
        shared.schedule(cell);
    }
}

/// Returns the number of envelopes handled this turn.
fn drive(shared: &ExecShared, cell: &Arc<Cell>, node: &mut NodeState) -> usize {
    let NodeState { kind, timers, rng, started } = node;
    if !*started {
        *started = true;
        if let NodeKind::Service(service) = kind {
            let mut env = ExecEnv {
                id: cell.id,
                shared,
                timers,
                rng,
                mailbox: &cell.mailbox,
                current: None,
            };
            service.on_start(&mut env);
        }
    }

    fire_due_timers(shared, cell, kind, timers, rng);

    let mut handled = 0usize;
    loop {
        let batch: Vec<Envelope> = {
            let mut mb = cell.mailbox.lock();
            let n = mb.len().min(DRAIN_BATCH);
            mb.drain(..n).collect()
        };
        if batch.is_empty() {
            break;
        }
        handled += batch.len();
        for env in batch {
            handle_envelope(shared, cell, kind, timers, rng, env);
        }
        // Time advanced while handling; fire anything that came due.
        fire_due_timers(shared, cell, kind, timers, rng);
        if handled >= MAX_PER_RUN {
            break; // Yield the worker; run_cell re-queues us at the back.
        }
    }
    handled
}

fn fire_due_timers(
    shared: &ExecShared,
    cell: &Arc<Cell>,
    kind: &mut NodeKind,
    timers: &mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: &mut SmallRng,
) {
    loop {
        let now = shared.now_ns();
        let token = match timers.peek() {
            Some(std::cmp::Reverse((deadline, token))) if *deadline <= now => *token,
            _ => break,
        };
        timers.pop();
        let mut env = ExecEnv {
            id: cell.id,
            shared,
            timers,
            rng,
            mailbox: &cell.mailbox,
            current: None,
        };
        match kind {
            NodeKind::Service(service) => service.on_timer(&mut env, token),
            NodeKind::Client { core, pending, .. } => {
                if ClientCore::owns_timer(token) {
                    let completions = core.handle_timer(&mut env, token);
                    deliver(pending, completions);
                }
            }
        }
    }
}

fn deliver(pending: &mut HashMap<u64, Sender<Completion>>, completions: Vec<Completion>) {
    for c in completions {
        if let Some(tx) = pending.remove(&c.tag) {
            let _ = tx.send(c);
        }
    }
}

fn handle_envelope(
    shared: &ExecShared,
    cell: &Arc<Cell>,
    kind: &mut NodeKind,
    timers: &mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: &mut SmallRng,
    envelope: Envelope,
) {
    match envelope {
        Envelope::Msg { from, msg, trace, sent_ns } => {
            let recv_ns = shared.now_ns();
            let traced = match (&shared.sink, trace) {
                (Some(s), Some(tc)) => {
                    record_net_span(s, tc, &msg, cell.id, sent_ns, recv_ns);
                    Some((Arc::clone(s), tc, sads_sim::Message::op_name(&msg)))
                }
                _ => None,
            };
            let mut env = ExecEnv {
                id: cell.id,
                shared,
                timers,
                rng,
                mailbox: &cell.mailbox,
                current: trace,
            };
            match kind {
                NodeKind::Service(service) => {
                    service.on_msg(&mut env, from, msg);
                    if let Some((s, tc, op)) = traced {
                        let end_ns = shared.now_ns();
                        s.record(SpanRecord {
                            trace: tc.trace_id,
                            span: s.next_id(),
                            parent: tc.span_id,
                            service: service.name(),
                            op,
                            node: cell.id.0 as u64,
                            start_ns: recv_ns,
                            end_ns,
                            kind: SpanKind::Handle,
                            class: sads_sim::SpanClass::Control,
                            queue_ns: 0,
                            xfer_ns: 0,
                            wire_ns: 0,
                        });
                    }
                }
                NodeKind::Client { core, pending, .. } => {
                    let completions = core.handle_msg(&mut env, from, msg);
                    deliver(pending, completions);
                }
            }
        }
        Envelope::Op { op, reply, trace } => {
            if let NodeKind::Client { core, pending, next_tag } = kind {
                let tag = *next_tag;
                *next_tag += 1;
                pending.insert(tag, reply);
                let mut env = ExecEnv {
                    id: cell.id,
                    shared,
                    timers,
                    rng,
                    mailbox: &cell.mailbox,
                    current: trace,
                };
                // Stream sub-operations (a feed with headroom, a close)
                // can complete synchronously.
                let completions = core.start_op(&mut env, op, tag);
                deliver(pending, completions);
            }
        }
    }
}
