//! Threaded runtime: each BlobSeer actor runs on its own OS thread,
//! exchanging messages over crossbeam channels and storing **real bytes**.
//! This is the runtime a downstream user embeds; the examples and the S3
//! gateway run on it.
//!
//! Time is wall-clock nanoseconds since cluster start, surfaced as
//! [`SimTime`] so the same service code runs unchanged.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sads_sim::{
    MetricSink, NodeId, Registry as TelemetryRegistry, SimDuration, SimTime, SpanKind,
    SpanRecord, SpanSink, TraceCtx,
};

use crate::client::{ClientConfig, ClientCore, ClientOp, Completion, OpOutput};
use crate::model::{BlobError, BlobId, BlobSpec, ClientId, Payload, VersionId};
use crate::pmanager::AllocationStrategy;
use crate::rpc::Msg;
use crate::services::{
    DataProviderService, Env, MetaProviderService, ProviderManagerService, Service,
    ServiceConfig, VersionManagerService,
};
use crate::vmanager::WriteKind;

/// What travels between node threads.
enum Envelope {
    Msg {
        from: NodeId,
        msg: Msg,
        /// Causal context of the sender's operation, if tracing is on.
        trace: Option<TraceCtx>,
        /// Wall-clock send time (ns since cluster start), so the receiver
        /// can attribute channel queueing delay to the trace.
        sent_ns: u64,
    },
    Op {
        op: ClientOp,
        reply: Sender<Completion>,
        /// Ambient context the operation should nest under (e.g. the S3
        /// gateway's per-request span), if tracing is on.
        trace: Option<TraceCtx>,
    },
    Stop,
}

/// Grow-only routing table shared by every node thread.
#[derive(Default)]
struct Registry {
    senders: RwLock<Vec<Option<Sender<Envelope>>>>,
}

impl Registry {
    fn add(&self, tx: Sender<Envelope>) -> NodeId {
        let mut s = self.senders.write();
        s.push(Some(tx));
        NodeId(s.len() as u32 - 1)
    }

    fn send(&self, to: NodeId, env: Envelope) {
        let s = self.senders.read();
        if let Some(Some(tx)) = s.get(to.index()) {
            let _ = tx.send(env);
        }
    }

    fn remove(&self, node: NodeId) {
        let mut s = self.senders.write();
        if let Some(slot) = s.get_mut(node.index()) {
            *slot = None;
        }
    }

    /// Re-occupy a previously removed slot. Fails if the slot is live
    /// (the node was never killed) or the address was never allocated.
    fn reinstall(&self, node: NodeId, tx: Sender<Envelope>) -> bool {
        let mut s = self.senders.write();
        match s.get_mut(node.index()) {
            Some(slot @ None) => {
                *slot = Some(tx);
                true
            }
            _ => false,
        }
    }

    fn all(&self) -> Vec<NodeId> {
        let s = self.senders.read();
        (0..s.len() as u32).filter(|i| s[*i as usize].is_some()).map(NodeId).collect()
    }
}

/// The [`Env`] a threaded service sees during one callback.
struct ThreadedEnv<'a> {
    id: NodeId,
    registry: &'a Registry,
    start: Instant,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: &'a mut SmallRng,
    metrics: &'a Mutex<MetricSink>,
    /// Span sink when tracing is on for this cluster.
    sink: Option<Arc<SpanSink>>,
    /// The cluster's live telemetry registry (always on: registry cells
    /// are plain atomics, cheap enough to keep unconditionally).
    telem: &'a Arc<TelemetryRegistry>,
    /// Causal context of the callback being handled; outgoing messages
    /// carry it so replies land in the same trace.
    current: Option<TraceCtx>,
}

impl Env for ThreadedEnv<'_> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }
    fn send(&mut self, to: NodeId, msg: Msg) {
        let sent_ns = self.start.elapsed().as_nanos() as u64;
        self.registry.send(
            to,
            Envelope::Msg { from: self.id, msg, trace: self.current, sent_ns },
        );
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let deadline = self.start.elapsed().as_nanos() as u64 + delay.as_nanos();
        self.timers.push(std::cmp::Reverse((deadline, token)));
    }
    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
    fn record(&mut self, name: &str, value: f64) {
        let now = self.now();
        self.metrics.lock().record(name, now, value);
        // Mirror into the live registry as a node-labeled gauge, so the
        // existing call sites feed the telemetry plane with no churn.
        self.telem.set(name, &[("node", self.id.0.to_string().as_str())], value);
    }
    fn incr(&mut self, name: &str, delta: u64) {
        self.metrics.lock().incr(name, delta);
        self.telem.inc(name, &[("node", self.id.0.to_string().as_str())], delta);
    }
    fn span_sink(&self) -> Option<Arc<SpanSink>> {
        self.sink.clone()
    }
    fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        Some(Arc::clone(self.telem))
    }
    fn trace_ctx(&self) -> Option<TraceCtx> {
        self.current
    }
    fn set_trace_ctx(&mut self, trace: Option<TraceCtx>) {
        self.current = trace;
    }
}

/// Record the channel-queueing delay of a traced envelope as a `Net`
/// span: in the threaded runtime there is no modeled wire, so the whole
/// delivery delay is queueing (send → receive on the node's inbox).
fn record_net_span(
    sink: &SpanSink,
    tc: TraceCtx,
    msg: &Msg,
    node: NodeId,
    sent_ns: u64,
    recv_ns: u64,
) {
    sink.record(SpanRecord {
        trace: tc.trace_id,
        span: sink.next_id(),
        parent: tc.span_id,
        service: "net",
        op: sads_sim::Message::op_name(msg),
        node: node.0 as u64,
        start_ns: sent_ns,
        end_ns: recv_ns,
        kind: SpanKind::Net,
        class: sads_sim::Message::span_class(msg),
        queue_ns: recv_ns.saturating_sub(sent_ns),
        xfer_ns: 0,
        wire_ns: 0,
    });
}

#[allow(clippy::too_many_arguments)]
fn run_service_thread(
    id: NodeId,
    mut service: Box<dyn Service>,
    rx: Receiver<Envelope>,
    registry: Arc<Registry>,
    start: Instant,
    metrics: Arc<Mutex<MetricSink>>,
    running: Arc<AtomicBool>,
    seed: u64,
    sink: Option<Arc<SpanSink>>,
    telem: Arc<TelemetryRegistry>,
) {
    let mut timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    {
        let mut env = ThreadedEnv {
            id,
            registry: &registry,
            start,
            timers: &mut timers,
            rng: &mut rng,
            metrics: &metrics,
            sink: sink.clone(),
            telem: &telem,
            current: None,
        };
        service.on_start(&mut env);
    }
    loop {
        if !running.load(Ordering::Relaxed) {
            break;
        }
        // Fire due timers.
        let now = start.elapsed().as_nanos() as u64;
        while let Some(std::cmp::Reverse((deadline, token))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            let mut env = ThreadedEnv {
                id,
                registry: &registry,
                start,
                timers: &mut timers,
                rng: &mut rng,
                metrics: &metrics,
                sink: sink.clone(),
                telem: &telem,
                current: None,
            };
            service.on_timer(&mut env, token);
        }
        // Idle threads park until the next timer deadline, capped so the
        // `running` flag is still noticed without a Stop envelope. The cap
        // is generous: shutdown paths send Stop, which wakes recv at once,
        // and a shorter cap just burns context switches across the whole
        // cluster's threads.
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((deadline, _))| {
                Duration::from_nanos(deadline.saturating_sub(now))
            })
            .unwrap_or(Duration::from_millis(500));
        match rx.recv_timeout(wait.min(Duration::from_millis(500))) {
            Ok(Envelope::Msg { from, msg, trace, sent_ns }) => {
                let recv_ns = start.elapsed().as_nanos() as u64;
                let traced = match (&sink, trace) {
                    (Some(s), Some(tc)) => {
                        record_net_span(s, tc, &msg, id, sent_ns, recv_ns);
                        Some((Arc::clone(s), tc, sads_sim::Message::op_name(&msg)))
                    }
                    _ => None,
                };
                let mut env = ThreadedEnv {
                    id,
                    registry: &registry,
                    start,
                    timers: &mut timers,
                    rng: &mut rng,
                    metrics: &metrics,
                    sink: sink.clone(),
                    telem: &telem,
                    current: trace,
                };
                service.on_msg(&mut env, from, msg);
                if let Some((s, tc, op)) = traced {
                    let end_ns = start.elapsed().as_nanos() as u64;
                    s.record(SpanRecord {
                        trace: tc.trace_id,
                        span: s.next_id(),
                        parent: tc.span_id,
                        service: service.name(),
                        op,
                        node: id.0 as u64,
                        start_ns: recv_ns,
                        end_ns,
                        kind: SpanKind::Handle,
                        class: sads_sim::SpanClass::Control,
                        queue_ns: 0,
                        xfer_ns: 0,
                        wire_ns: 0,
                    });
                }
            }
            Ok(Envelope::Op { .. }) => { /* services do not take client ops */ }
            Ok(Envelope::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Client thread: wraps a [`ClientCore`], mapping injected ops to reply
/// channels.
#[allow(clippy::too_many_arguments)]
fn run_client_thread(
    id: NodeId,
    client_id: ClientId,
    vman: NodeId,
    pman: NodeId,
    meta: Vec<NodeId>,
    cfg: ClientConfig,
    rx: Receiver<Envelope>,
    registry: Arc<Registry>,
    start: Instant,
    metrics: Arc<Mutex<MetricSink>>,
    running: Arc<AtomicBool>,
    seed: u64,
    sink: Option<Arc<SpanSink>>,
    telem: Arc<TelemetryRegistry>,
) {
    let mut core = ClientCore::new(client_id, vman, pman, meta, cfg);
    let mut timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pending: std::collections::HashMap<u64, Sender<Completion>> =
        std::collections::HashMap::new();
    let mut next_tag = 1u64;

    let deliver = |completions: Vec<Completion>,
                       pending: &mut std::collections::HashMap<u64, Sender<Completion>>| {
        for c in completions {
            if let Some(tx) = pending.remove(&c.tag) {
                let _ = tx.send(c);
            }
        }
    };

    loop {
        if !running.load(Ordering::Relaxed) {
            break;
        }
        let now = start.elapsed().as_nanos() as u64;
        while let Some(std::cmp::Reverse((deadline, token))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            if ClientCore::owns_timer(token) {
                let completions = {
                    let mut env = ThreadedEnv {
                        id,
                        registry: &registry,
                        start,
                        timers: &mut timers,
                        rng: &mut rng,
                        metrics: &metrics,
                        sink: sink.clone(),
                        telem: &telem,
                        current: None,
                    };
                    core.handle_timer(&mut env, token)
                };
                deliver(completions, &mut pending);
            }
        }
        // Same parking policy as service threads (see above).
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((deadline, _))| {
                Duration::from_nanos(deadline.saturating_sub(now))
            })
            .unwrap_or(Duration::from_millis(500));
        match rx.recv_timeout(wait.min(Duration::from_millis(500))) {
            Ok(Envelope::Msg { from, msg, trace, sent_ns }) => {
                let recv_ns = start.elapsed().as_nanos() as u64;
                if let (Some(s), Some(tc)) = (&sink, trace) {
                    record_net_span(s, tc, &msg, id, sent_ns, recv_ns);
                }
                let completions = {
                    let mut env = ThreadedEnv {
                        id,
                        registry: &registry,
                        start,
                        timers: &mut timers,
                        rng: &mut rng,
                        metrics: &metrics,
                        sink: sink.clone(),
                        telem: &telem,
                        current: trace,
                    };
                    core.handle_msg(&mut env, from, msg)
                };
                deliver(completions, &mut pending);
            }
            Ok(Envelope::Op { op, reply, trace }) => {
                let tag = next_tag;
                next_tag += 1;
                pending.insert(tag, reply);
                let mut env = ThreadedEnv {
                    id,
                    registry: &registry,
                    start,
                    timers: &mut timers,
                    rng: &mut rng,
                    metrics: &metrics,
                    sink: sink.clone(),
                    telem: &telem,
                    current: trace,
                };
                core.start_op(&mut env, op, tag);
            }
            Ok(Envelope::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Handle to a client thread: a blocking BlobSeer API over real bytes.
#[derive(Clone)]
pub struct ClientHandle {
    node: NodeId,
    client_id: ClientId,
    tx: Sender<Envelope>,
    op_timeout: Duration,
}

impl ClientHandle {
    /// This client's node address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This client's principal id.
    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    fn run(&self, op: ClientOp, trace: Option<TraceCtx>) -> Result<OpOutput, BlobError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(Envelope::Op { op, reply: tx, trace })
            .map_err(|_| BlobError::Protocol("client thread gone"))?;
        match rx.recv_timeout(self.op_timeout) {
            Ok(c) => c.result,
            Err(_) => Err(BlobError::Timeout),
        }
    }

    /// Create a BLOB.
    pub fn create(&self, spec: BlobSpec) -> Result<BlobId, BlobError> {
        self.create_traced(spec, None)
    }

    /// [`create`](ClientHandle::create), nesting the op under `trace`.
    pub fn create_traced(
        &self,
        spec: BlobSpec,
        trace: Option<TraceCtx>,
    ) -> Result<BlobId, BlobError> {
        match self.run(ClientOp::Create { spec }, trace)? {
            OpOutput::Created(b) => Ok(b),
            _ => Err(BlobError::Protocol("wrong output for create")),
        }
    }

    /// Write real bytes at an offset (page-aligned, page-multiple length).
    pub fn write(&self, blob: BlobId, offset: u64, data: Bytes) -> Result<VersionId, BlobError> {
        self.write_traced(blob, offset, data, None)
    }

    /// [`write`](ClientHandle::write), nesting the op under `trace`.
    pub fn write_traced(
        &self,
        blob: BlobId,
        offset: u64,
        data: Bytes,
        trace: Option<TraceCtx>,
    ) -> Result<VersionId, BlobError> {
        match self.run(
            ClientOp::Write { blob, kind: WriteKind::At(offset), data: Payload::Data(data) },
            trace,
        )? {
            OpOutput::Written { version, .. } => Ok(version),
            _ => Err(BlobError::Protocol("wrong output for write")),
        }
    }

    /// Append real bytes; returns `(version, offset_written_at)`.
    pub fn append(&self, blob: BlobId, data: Bytes) -> Result<(VersionId, u64), BlobError> {
        match self.run(
            ClientOp::Write { blob, kind: WriteKind::Append, data: Payload::Data(data) },
            None,
        )? {
            OpOutput::Written { version, offset, .. } => Ok((version, offset)),
            _ => Err(BlobError::Protocol("wrong output for append")),
        }
    }

    /// Read a byte range of a version (latest when `version` is `None`).
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, BlobError> {
        self.read_traced(blob, version, offset, len, None)
    }

    /// [`read`](ClientHandle::read), nesting the op under `trace`.
    pub fn read_traced(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
        trace: Option<TraceCtx>,
    ) -> Result<Bytes, BlobError> {
        match self.run(ClientOp::Read { blob, version, offset, len }, trace)? {
            OpOutput::Read { data: Payload::Data(b), .. } => Ok(b),
            OpOutput::Read { data: Payload::Sim(n), .. } => {
                // Holes-only read in a deployment without materialization.
                Ok(Bytes::from(vec![0u8; n as usize]))
            }
            _ => Err(BlobError::Protocol("wrong output for read")),
        }
    }
}

/// Builder for a threaded BlobSeer deployment.
pub struct ClusterBuilder {
    data_providers: usize,
    meta_providers: usize,
    provider_capacity: u64,
    strategy: Box<dyn AllocationStrategy>,
    service_cfg: ServiceConfig,
    client_cfg: ClientConfig,
    span_sink: Option<Arc<SpanSink>>,
    telemetry: Option<Arc<TelemetryRegistry>>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            data_providers: 4,
            meta_providers: 2,
            provider_capacity: 4 << 30,
            strategy: Box::<crate::pmanager::RoundRobin>::default(),
            service_cfg: ServiceConfig::default(),
            client_cfg: ClientConfig { materialize_zeros: true, ..ClientConfig::default() },
            span_sink: None,
            telemetry: None,
        }
    }
}

impl ClusterBuilder {
    /// Start from defaults (4 data providers, 2 metadata providers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of data providers.
    pub fn data_providers(mut self, n: usize) -> Self {
        self.data_providers = n;
        self
    }

    /// Number of metadata providers.
    pub fn meta_providers(mut self, n: usize) -> Self {
        self.meta_providers = n;
        self
    }

    /// Per-provider storage capacity in bytes.
    pub fn provider_capacity(mut self, bytes: u64) -> Self {
        self.provider_capacity = bytes;
        self
    }

    /// Chunk allocation strategy.
    pub fn strategy(mut self, s: Box<dyn AllocationStrategy>) -> Self {
        self.strategy = s;
        self
    }

    /// Service wiring (monitor target, flush periods).
    pub fn service_config(mut self, cfg: ServiceConfig) -> Self {
        self.service_cfg = cfg;
        self
    }

    /// Client tuning.
    pub fn client_config(mut self, cfg: ClientConfig) -> Self {
        self.client_cfg = cfg;
        self
    }

    /// Enable request tracing: every node thread records `Net` and
    /// `Handle` spans into `sink`, and clients open one trace per op.
    /// Without this call (the default) no span work happens at all.
    pub fn span_sink(mut self, sink: Arc<SpanSink>) -> Self {
        self.span_sink = Some(sink);
        self
    }

    /// Share an externally created telemetry registry (e.g. one also
    /// installed on an `ObjectGateway` in `sads-gateway`) instead of the
    /// cluster's own. Telemetry is always on in the threaded runtime;
    /// this only controls *which* registry the node threads write.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Spawn every thread and return the running cluster.
    pub fn start(self) -> Cluster {
        let registry = Arc::new(Registry::default());
        let metrics = Arc::new(Mutex::new(MetricSink::new()));
        let start = Instant::now();
        let running = Arc::new(AtomicBool::new(true));
        let telemetry = self.telemetry.unwrap_or_else(|| Arc::new(TelemetryRegistry::new()));
        let mut cluster = Cluster {
            registry,
            metrics,
            start,
            running,
            handles: Vec::new(),
            pman: NodeId(0),
            vman: NodeId(0),
            meta: Vec::new(),
            data: Vec::new(),
            service_cfg: self.service_cfg,
            client_cfg: self.client_cfg,
            next_seed: 1,
            span_sink: self.span_sink,
            telemetry,
        };
        cluster.pman =
            cluster.add_service(Box::new(ProviderManagerService::new(self.strategy)));
        cluster.vman =
            cluster.add_service(Box::new(VersionManagerService::new(self.service_cfg)));
        for _ in 0..self.meta_providers {
            let n = cluster.add_service(Box::new(MetaProviderService::new(
                cluster.pman,
                self.provider_capacity,
                self.service_cfg,
            )));
            cluster.meta.push(n);
        }
        for _ in 0..self.data_providers {
            let n = cluster.add_data_provider(self.provider_capacity);
            cluster.data.push(n);
        }
        cluster
    }
}

/// A running threaded BlobSeer deployment.
pub struct Cluster {
    registry: Arc<Registry>,
    metrics: Arc<Mutex<MetricSink>>,
    start: Instant,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    /// Provider manager address.
    pub pman: NodeId,
    /// Version manager address.
    pub vman: NodeId,
    /// Metadata providers, in partition order.
    pub meta: Vec<NodeId>,
    /// Data providers.
    pub data: Vec<NodeId>,
    service_cfg: ServiceConfig,
    client_cfg: ClientConfig,
    next_seed: u64,
    span_sink: Option<Arc<SpanSink>>,
    telemetry: Arc<TelemetryRegistry>,
}

impl Cluster {
    /// The span sink recording this cluster's traces, when tracing is on.
    pub fn span_sink(&self) -> Option<&Arc<SpanSink>> {
        self.span_sink.as_ref()
    }

    /// The cluster's live telemetry registry — every node thread's
    /// counters, gauges and heartbeat health gauges, readable while the
    /// cluster runs.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// Change the service wiring used by nodes added from now on (e.g.
    /// point later providers at a monitoring service created after the
    /// cluster started).
    pub fn set_service_config(&mut self, cfg: ServiceConfig) {
        self.service_cfg = cfg;
    }

    /// The service wiring currently applied to new nodes.
    pub fn service_config(&self) -> ServiceConfig {
        self.service_cfg
    }

    /// Host an arbitrary service (monitoring, security, …) on its own
    /// thread; returns its address.
    pub fn add_service(&mut self, service: Box<dyn Service>) -> NodeId {
        let (tx, rx) = unbounded();
        let id = self.registry.add(tx);
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let running = Arc::clone(&self.running);
        let start = self.start;
        let seed = self.next_seed;
        self.next_seed += 1;
        let sink = self.span_sink.clone();
        let telem = Arc::clone(&self.telemetry);
        self.handles.push(std::thread::spawn(move || {
            run_service_thread(
                id, service, rx, registry, start, metrics, running, seed, sink, telem,
            );
        }));
        id
    }

    /// Add a data provider at runtime (elastic scale-up).
    pub fn add_data_provider(&mut self, capacity: u64) -> NodeId {
        let pman = self.pman;
        let cfg = self.service_cfg;
        self.add_service(Box::new(DataProviderService::new(pman, capacity, cfg)))
    }

    /// Create a client; each client runs on its own thread.
    pub fn client(&mut self, client_id: ClientId) -> ClientHandle {
        let ccfg = self.client_cfg;
        self.client_with_config(client_id, ccfg)
    }

    /// Create a client with its own [`ClientConfig`], overriding the
    /// cluster default — used to compare protocol variants (e.g. the
    /// batched read path against the sequential one) side by side in
    /// the same deployment.
    pub fn client_with_config(&mut self, client_id: ClientId, ccfg: ClientConfig) -> ClientHandle {
        let (tx, rx) = unbounded();
        let id = self.registry.add(tx.clone());
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let running = Arc::clone(&self.running);
        let start = self.start;
        let vman = self.vman;
        let pman = self.pman;
        let meta = self.meta.clone();
        let seed = self.next_seed;
        self.next_seed += 1;
        let sink = self.span_sink.clone();
        let telem = Arc::clone(&self.telemetry);
        self.handles.push(std::thread::spawn(move || {
            run_client_thread(
                id, client_id, vman, pman, meta, ccfg, rx, registry, start, metrics, running,
                seed, sink, telem,
            );
        }));
        ClientHandle { node: id, client_id, tx, op_timeout: Duration::from_secs(60) }
    }

    /// Send a raw message into the cluster (enforcement, tests).
    pub fn send(&self, to: NodeId, msg: Msg) {
        let sent_ns = self.start.elapsed().as_nanos() as u64;
        self.registry.send(
            to,
            Envelope::Msg { from: NodeId::EXTERNAL, msg, trace: None, sent_ns },
        );
    }

    /// Stop a single node (crash injection); its thread exits.
    pub fn kill(&self, node: NodeId) {
        self.registry.send(node, Envelope::Stop);
        self.registry.remove(node);
    }

    /// Restart a previously [`kill`](Cluster::kill)ed node with a fresh
    /// service at the **same** [`NodeId`]: the routing-table slot is
    /// re-occupied and a new thread spawned, so peers keep addressing the
    /// node as before while its in-memory state starts from scratch.
    /// Returns `false` if the slot is still live (never killed) or the
    /// address was never allocated.
    pub fn restart_service(&mut self, node: NodeId, service: Box<dyn Service>) -> bool {
        let (tx, rx) = unbounded();
        if !self.registry.reinstall(node, tx) {
            return false;
        }
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let running = Arc::clone(&self.running);
        let start = self.start;
        let seed = self.next_seed;
        self.next_seed += 1;
        let sink = self.span_sink.clone();
        let telem = Arc::clone(&self.telemetry);
        self.handles.push(std::thread::spawn(move || {
            run_service_thread(
                node, service, rx, registry, start, metrics, running, seed, sink, telem,
            );
        }));
        true
    }

    /// Restart a killed data provider at its old address with an empty
    /// store of `capacity` bytes (crash-recovery convenience over
    /// [`restart_service`](Cluster::restart_service)).
    pub fn restart_data_provider(&mut self, node: NodeId, capacity: u64) -> bool {
        let pman = self.pman;
        let cfg = self.service_cfg;
        self.restart_service(node, Box::new(DataProviderService::new(pman, capacity, cfg)))
    }

    /// Snapshot of cluster metrics.
    pub fn metrics(&self) -> MetricSink {
        let mut out = MetricSink::new();
        out.merge(std::mem::take(&mut *self.metrics.lock()));
        out
    }

    /// Wall-clock time since cluster start, as the cluster's `SimTime`.
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    /// Shut every thread down and join them.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::Relaxed);
        for n in self.registry.all() {
            self.registry.send(n, Envelope::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        for n in self.registry.all() {
            self.registry.send(n, Envelope::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 64 * 1024;

    fn small_cluster() -> Cluster {
        ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .start()
    }

    fn patterned(len: usize, seed: u8) -> Bytes {
        Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>())
    }

    #[test]
    fn threaded_write_read_roundtrip_real_bytes() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(1));
        let spec = BlobSpec { page_size: PAGE, replication: 2 };
        let blob = client.create(spec).expect("create");
        let data = patterned(3 * PAGE as usize, 7);
        let v = client.write(blob, 0, data.clone()).expect("write");
        assert_eq!(v, VersionId(1));
        let got = client.read(blob, None, 0, 3 * PAGE).expect("read");
        assert_eq!(got, data);
        // Sub-range read with an unaligned offset.
        let got = client.read(blob, None, 100, 1000).expect("read sub");
        assert_eq!(&got[..], &data[100..1100]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_append_versions_and_snapshots() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(2));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let a = patterned(PAGE as usize, 1);
        let b = patterned(PAGE as usize, 2);
        let (v1, off1) = client.append(blob, a.clone()).expect("append a");
        let (v2, off2) = client.append(blob, b.clone()).expect("append b");
        assert_eq!((v1, off1), (VersionId(1), 0));
        assert_eq!((v2, off2), (VersionId(2), PAGE));
        // Latest sees both; v1 snapshot sees only the first page.
        let latest = client.read(blob, None, 0, 2 * PAGE).expect("read latest");
        assert_eq!(&latest[..PAGE as usize], &a[..]);
        assert_eq!(&latest[PAGE as usize..], &b[..]);
        let old = client.read(blob, Some(VersionId(1)), 0, 2 * PAGE).expect("read v1");
        assert_eq!(old.len() as u64, PAGE, "v1 is one page long; read clamps");
        assert_eq!(&old[..], &a[..]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_holes_read_as_zeros() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(3));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let d = patterned(PAGE as usize, 3);
        // Write page 2 only; pages 0..2 are holes.
        client.write(blob, 2 * PAGE, d.clone()).expect("sparse write");
        let got = client.read(blob, None, 0, 3 * PAGE).expect("read");
        assert!(got[..2 * PAGE as usize].iter().all(|&b| b == 0), "holes are zeros");
        assert_eq!(&got[2 * PAGE as usize..], &d[..]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_misaligned_write_fails_cleanly() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(4));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let err = client.write(blob, 13, patterned(PAGE as usize, 4)).unwrap_err();
        assert!(matches!(err, BlobError::Misaligned { .. }));
        let err = client.write(blob, 0, patterned(100, 4)).unwrap_err();
        assert!(matches!(err, BlobError::Misaligned { .. }));
        cluster.shutdown();
    }

    #[test]
    fn threaded_block_enforcement_rejects_client() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(66));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        cluster.send(cluster.vman, Msg::BlockClient { client: ClientId(66) });
        // The block lands asynchronously; retry until it takes effect.
        let mut blocked = false;
        for _ in 0..50 {
            match client.write(blob, 0, patterned(PAGE as usize, 5)) {
                Err(BlobError::Blocked(_)) => {
                    blocked = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(blocked, "client must eventually be blocked");
        // Unblock restores service.
        cluster.send(cluster.vman, Msg::UnblockClient { client: ClientId(66) });
        let mut ok = false;
        for _ in 0..50 {
            if client.write(blob, 0, patterned(PAGE as usize, 6)).is_ok() {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ok, "client must be unblocked again");
        cluster.shutdown();
    }

    #[test]
    fn threaded_kill_then_restart_reuses_node_id() {
        let mut cluster = small_cluster();
        let victim = cluster.data[0];
        cluster.kill(victim);
        // The slot is free now; a second restart at the same id must fail.
        assert!(cluster.restart_data_provider(victim, 256 << 20));
        assert!(!cluster.restart_data_provider(victim, 256 << 20));
        // The revived provider serves traffic at its old address.
        let client = cluster.client(ClientId(9));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 2 })
            .expect("create");
        let data = patterned(2 * PAGE as usize, 11);
        client.write(blob, 0, data.clone()).expect("write after restart");
        let got = client.read(blob, None, 0, 2 * PAGE).expect("read after restart");
        assert_eq!(got, data);
        cluster.shutdown();
    }

    #[test]
    fn threaded_tracing_records_op_and_server_spans() {
        let sink = Arc::new(SpanSink::new());
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .span_sink(Arc::clone(&sink))
            .start();
        let client = cluster.client(ClientId(5));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 2 })
            .expect("create");
        let data = patterned(2 * PAGE as usize, 9);
        client.write(blob, 0, data.clone()).expect("write");
        let got = client.read(blob, None, 0, 2 * PAGE).expect("read");
        assert_eq!(got, data);
        cluster.shutdown();

        let spans = sink.spans();
        // One root Op span per client op (create + write + read).
        let ops: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::Op && s.service == "client").collect();
        assert_eq!(ops.len(), 3, "create, write, read roots");
        // The write trace fans out: provider handles and vmanager handles
        // must appear in the same trace as the write root.
        let write_root = ops.iter().find(|s| s.op == "write").expect("write root");
        let in_write: Vec<_> =
            spans.iter().filter(|s| s.trace == write_root.trace).collect();
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Handle && s.service == "provider"),
            "write trace covers provider handles"
        );
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Handle && s.service == "vmanager"),
            "write trace covers vmanager handles"
        );
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Net),
            "write trace records channel-queueing Net spans"
        );
        // Histograms aggregate per (service, op).
        assert!(sink
            .histograms()
            .iter()
            .any(|((svc, op), _)| *svc == "client" && *op == "write"));
    }

    #[test]
    fn threaded_concurrent_clients_roundtrip() {
        let mut cluster = ClusterBuilder::new()
            .data_providers(6)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .start();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let client = cluster.client(ClientId(10 + i));
            handles.push(std::thread::spawn(move || {
                let blob = client
                    .create(BlobSpec { page_size: PAGE, replication: 1 })
                    .expect("create");
                let data = patterned(4 * PAGE as usize, i as u8);
                client.write(blob, 0, data.clone()).expect("write");
                let got = client.read(blob, None, 0, 4 * PAGE).expect("read");
                assert_eq!(got, data);
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        cluster.shutdown();
    }
}
