//! Threaded runtime: BlobSeer actors multiplexed onto a bounded pool of
//! sharded event-loop workers (the private `executor` module), exchanging
//! messages through per-cell mailboxes and storing **real bytes**. This is
//! the runtime a downstream user embeds; the examples and the S3 gateway
//! run on it.
//!
//! Earlier revisions ran one OS thread per actor; a 64-client sweep meant
//! ~140 threads thrashing the scheduler and throughput collapsed. Now the
//! node count is decoupled from the thread count: `N ≈ cores` workers own
//! every service and client core, so 256–1024-client sweeps scale.
//!
//! Time is wall-clock nanoseconds since cluster start, surfaced as
//! [`SimTime`] so the same service code runs unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use sads_sim::{
    FlightRecorder, MetricSink, NodeId, ProcSampler, Registry as TelemetryRegistry, SimDuration,
    SimTime, SpanSink, TraceCtx,
};

use super::executor::{Envelope, ExecShared, Executor, NodeKind};
use crate::client::{ClientConfig, ClientOp, OpOutput};
use crate::model::{BlobError, BlobId, BlobSpec, ClientId, Payload, VersionId};
use crate::pmanager::AllocationStrategy;
use crate::rpc::Msg;
use crate::services::{
    DataProviderService, Env, MetaProviderService, ProviderManagerService, Service, ServiceConfig,
    VersionManagerService,
};
use crate::storage::{BackendConfig, BackendSpec};
use crate::vmanager::WriteKind;

/// Timer token of the process-telemetry sampler cell.
pub const TOKEN_PROC_SAMPLE: u64 = u64::MAX - 60;

/// One cell per cluster that reads `/proc/self` on a heartbeat cadence and
/// exports the `proc.*` gauge family (RSS + high-water, page faults,
/// mapped bytes) into the cluster's registry. Threaded-runtime only: in
/// the simulator the hosting process's memory says nothing about the
/// simulated deployment.
struct ProcSamplerService {
    sampler: ProcSampler,
    every: SimDuration,
}

impl Service for ProcSamplerService {
    fn name(&self) -> &'static str {
        "procsampler"
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        if let Some(reg) = env.telemetry() {
            self.sampler.sample_into(&reg);
        }
        env.set_timer(self.every, TOKEN_PROC_SAMPLE);
    }

    fn on_msg(&mut self, _env: &mut dyn Env, _from: NodeId, _msg: Msg) {}

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        if token == TOKEN_PROC_SAMPLE {
            if let Some(reg) = env.telemetry() {
                self.sampler.sample_into(&reg);
            }
            env.set_timer(self.every, TOKEN_PROC_SAMPLE);
        }
    }
}

/// Handle to a client cell: a blocking BlobSeer API over real bytes.
///
/// The handle itself is not a thread — `run` injects the op into the
/// client's mailbox and parks the *calling* thread on a one-shot reply
/// channel, so any number of driver threads can block cheaply while the
/// executor's few workers do the protocol work.
#[derive(Clone)]
pub struct ClientHandle {
    node: NodeId,
    client_id: ClientId,
    exec: Arc<ExecShared>,
    op_timeout: Duration,
}

/// One in-flight client op submitted with [`ClientHandle::submit`]: a
/// one-shot completion channel plus the op deadline.
pub struct OpTicket {
    rx: crossbeam::channel::Receiver<crate::client::Completion>,
    timeout: Duration,
    routed: bool,
    submitted: Instant,
}

impl OpTicket {
    /// Block until the op completes (or its deadline passes) and return
    /// the protocol result.
    pub fn wait(self) -> Result<OpOutput, BlobError> {
        if !self.routed {
            return Err(BlobError::Protocol("client node gone"));
        }
        match self.rx.recv_timeout(self.timeout) {
            Ok(c) => c.result,
            Err(_) => Err(BlobError::Timeout),
        }
    }

    /// Time since the op was injected into the client cell's mailbox.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// [`wait`](OpTicket::wait), also returning the elapsed time from
    /// submission to the wait returning (the closed-loop op latency).
    pub fn wait_timed(self) -> (Result<OpOutput, BlobError>, Duration) {
        let submitted = self.submitted;
        let out = self.wait();
        (out, submitted.elapsed())
    }
}

impl ClientHandle {
    /// This client's node address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This client's principal id.
    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    fn run(&self, op: ClientOp, trace: Option<TraceCtx>) -> Result<OpOutput, BlobError> {
        self.submit(op, trace).wait()
    }

    /// Inject `op` into the client cell's mailbox and return immediately;
    /// the returned [`OpTicket`] resolves when the protocol completes.
    ///
    /// This is the non-blocking submission path: a single driver thread
    /// can keep an op in flight on hundreds of client cells at once
    /// (load generators and the scaling sweeps do exactly that), instead
    /// of parking one OS thread per concurrent client. One handle may
    /// have any number of tickets outstanding; completions are matched by
    /// tag inside the cell, not by submission order.
    pub fn submit(&self, op: ClientOp, trace: Option<TraceCtx>) -> OpTicket {
        let (tx, rx) = bounded(1);
        let routed = self.exec.send_to(self.node, Envelope::Op { op, reply: tx, trace });
        OpTicket { rx, timeout: self.op_timeout, routed, submitted: Instant::now() }
    }

    /// [`append`](ClientHandle::append) without blocking: returns a
    /// ticket that resolves to `OpOutput::Written`.
    pub fn submit_append(&self, blob: BlobId, data: Bytes) -> OpTicket {
        self.submit(
            ClientOp::Write { blob, kind: WriteKind::Append, data: Payload::Data(data) },
            None,
        )
    }

    /// [`read`](ClientHandle::read) without blocking: returns a ticket
    /// that resolves to `OpOutput::Read`.
    pub fn submit_read(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
    ) -> OpTicket {
        self.submit(ClientOp::Read { blob, version, offset, len }, None)
    }

    /// Create a BLOB.
    pub fn create(&self, spec: BlobSpec) -> Result<BlobId, BlobError> {
        self.create_traced(spec, None)
    }

    /// [`create`](ClientHandle::create), nesting the op under `trace`.
    pub fn create_traced(
        &self,
        spec: BlobSpec,
        trace: Option<TraceCtx>,
    ) -> Result<BlobId, BlobError> {
        match self.run(ClientOp::Create { spec }, trace)? {
            OpOutput::Created(b) => Ok(b),
            _ => Err(BlobError::Protocol("wrong output for create")),
        }
    }

    /// Write real bytes at an offset (page-aligned, page-multiple length).
    pub fn write(&self, blob: BlobId, offset: u64, data: Bytes) -> Result<VersionId, BlobError> {
        self.write_traced(blob, offset, data, None)
    }

    /// [`write`](ClientHandle::write), nesting the op under `trace`.
    pub fn write_traced(
        &self,
        blob: BlobId,
        offset: u64,
        data: Bytes,
        trace: Option<TraceCtx>,
    ) -> Result<VersionId, BlobError> {
        match self.run(
            ClientOp::Write { blob, kind: WriteKind::At(offset), data: Payload::Data(data) },
            trace,
        )? {
            OpOutput::Written { version, .. } => Ok(version),
            _ => Err(BlobError::Protocol("wrong output for write")),
        }
    }

    /// Append real bytes; returns `(version, offset_written_at)`.
    pub fn append(&self, blob: BlobId, data: Bytes) -> Result<(VersionId, u64), BlobError> {
        match self.run(
            ClientOp::Write { blob, kind: WriteKind::Append, data: Payload::Data(data) },
            None,
        )? {
            OpOutput::Written { version, offset, .. } => Ok((version, offset)),
            _ => Err(BlobError::Protocol("wrong output for append")),
        }
    }

    /// Read a byte range of a version (latest when `version` is `None`).
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
    ) -> Result<Bytes, BlobError> {
        self.read_traced(blob, version, offset, len, None)
    }

    /// Pin a version (latest when `None`) as a snapshot: an O(1)
    /// metadata-only operation. The pinned version stays readable — and
    /// keeps its chunks and tree nodes alive — across lifecycle GC
    /// sweeps until the BLOB is decommissioned.
    pub fn snapshot(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
    ) -> Result<VersionId, BlobError> {
        self.snapshot_traced(blob, version, None)
    }

    /// [`snapshot`](ClientHandle::snapshot), nesting the op under `trace`.
    pub fn snapshot_traced(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        trace: Option<TraceCtx>,
    ) -> Result<VersionId, BlobError> {
        match self.run(ClientOp::Snapshot { blob, version }, trace)? {
            OpOutput::Snapshotted { version, .. } => Ok(version),
            _ => Err(BlobError::Protocol("wrong output for snapshot")),
        }
    }

    /// Decommission a BLOB: unpin its snapshots and mark its whole
    /// version history reclaimable by the lifecycle sweeper. Returns
    /// whether the version manager accepted.
    pub fn decommission(&self, blob: BlobId) -> Result<bool, BlobError> {
        self.decommission_traced(blob, None)
    }

    /// [`decommission`](ClientHandle::decommission), nesting under `trace`.
    pub fn decommission_traced(
        &self,
        blob: BlobId,
        trace: Option<TraceCtx>,
    ) -> Result<bool, BlobError> {
        match self.run(ClientOp::Decommission { blob }, trace)? {
            OpOutput::Decommissioned { ok, .. } => Ok(ok),
            _ => Err(BlobError::Protocol("wrong output for decommission")),
        }
    }

    /// [`read`](ClientHandle::read), nesting the op under `trace`.
    pub fn read_traced(
        &self,
        blob: BlobId,
        version: Option<VersionId>,
        offset: u64,
        len: u64,
        trace: Option<TraceCtx>,
    ) -> Result<Bytes, BlobError> {
        match self.run(ClientOp::Read { blob, version, offset, len }, trace)? {
            OpOutput::Read { data: Payload::Data(b), .. } => Ok(b),
            OpOutput::Read { data: Payload::Sim(n), .. } => {
                // Holes-only read in a deployment without materialization.
                Ok(Bytes::from(vec![0u8; n as usize]))
            }
            _ => Err(BlobError::Protocol("wrong output for read")),
        }
    }
}

/// Builder for a threaded BlobSeer deployment.
pub struct ClusterBuilder {
    data_providers: usize,
    meta_providers: usize,
    provider_capacity: u64,
    strategy: Box<dyn AllocationStrategy>,
    service_cfg: ServiceConfig,
    client_cfg: ClientConfig,
    span_sink: Option<Arc<SpanSink>>,
    telemetry: Option<Arc<TelemetryRegistry>>,
    executor_shards: usize,
    backend: BackendSpec,
    flight_recorder: bool,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            data_providers: 4,
            meta_providers: 2,
            provider_capacity: 4 << 30,
            strategy: Box::<crate::pmanager::RoundRobin>::default(),
            service_cfg: ServiceConfig::default(),
            client_cfg: ClientConfig { materialize_zeros: true, ..ClientConfig::default() },
            span_sink: None,
            telemetry: None,
            executor_shards: 0,
            backend: BackendSpec::Memory,
            flight_recorder: true,
        }
    }
}

impl ClusterBuilder {
    /// Start from defaults (4 data providers, 2 metadata providers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of data providers.
    pub fn data_providers(mut self, n: usize) -> Self {
        self.data_providers = n;
        self
    }

    /// Number of metadata providers.
    pub fn meta_providers(mut self, n: usize) -> Self {
        self.meta_providers = n;
        self
    }

    /// Per-provider storage capacity in bytes.
    pub fn provider_capacity(mut self, bytes: u64) -> Self {
        self.provider_capacity = bytes;
        self
    }

    /// Chunk allocation strategy.
    pub fn strategy(mut self, s: Box<dyn AllocationStrategy>) -> Self {
        self.strategy = s;
        self
    }

    /// Service wiring (monitor target, flush periods).
    pub fn service_config(mut self, cfg: ServiceConfig) -> Self {
        self.service_cfg = cfg;
        self
    }

    /// Client tuning.
    pub fn client_config(mut self, cfg: ClientConfig) -> Self {
        self.client_cfg = cfg;
        self
    }

    /// Durable chunk backend for the data providers. Each provider gets
    /// its own subdirectory of the spec's root, and the cluster remembers
    /// the assignment so [`Cluster::restart_data_provider`] re-opens the
    /// same directory — a restarted provider recovers its chunks instead
    /// of coming back empty.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec;
        self
    }

    /// Number of executor shards (worker threads) the cluster's nodes are
    /// multiplexed onto. `0` (the default) means one per available core.
    /// Tests force small fixed counts to exercise stealing and isolation
    /// deterministically.
    pub fn executor_shards(mut self, n: usize) -> Self {
        self.executor_shards = n;
        self
    }

    /// Enable request tracing: every node records `Net` and `Handle`
    /// spans into `sink`, and clients open one trace per op. Without this
    /// call (the default) no span work happens at all.
    pub fn span_sink(mut self, sink: Arc<SpanSink>) -> Self {
        self.span_sink = Some(sink);
        self
    }

    /// Share an externally created telemetry registry (e.g. one also
    /// installed on an `ObjectGateway` in `sads-gateway`) instead of the
    /// cluster's own. Telemetry is always on in the threaded runtime;
    /// this only controls *which* registry the nodes write.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Whether the always-on flight recorder is attached (default `true`).
    /// `false` exists for the recorder-overhead A/B gate in `exp_perf`
    /// and for embedders that want the last few bytes of scheduler
    /// overhead back.
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.flight_recorder = on;
        self
    }

    /// Spawn the executor workers and return the running cluster.
    pub fn start(self) -> Cluster {
        let metrics = Arc::new(Mutex::new(MetricSink::new()));
        let start = Instant::now();
        let telemetry = self.telemetry.unwrap_or_else(|| Arc::new(TelemetryRegistry::new()));
        let flight_recorder = self.flight_recorder.then(|| Arc::new(FlightRecorder::new()));
        let exec = Executor::start(
            self.executor_shards,
            start,
            Arc::clone(&metrics),
            Arc::clone(&telemetry),
            self.span_sink.clone(),
            flight_recorder.clone(),
        );
        let mut cluster = Cluster {
            exec,
            metrics,
            start,
            pman: NodeId(0),
            vman: NodeId(0),
            meta: Vec::new(),
            data: Vec::new(),
            service_cfg: self.service_cfg.clone(),
            client_cfg: self.client_cfg,
            next_seed: 1,
            span_sink: self.span_sink,
            telemetry,
            flight_recorder,
            backend: self.backend,
            provider_backends: std::collections::HashMap::new(),
            next_backend_ordinal: 0,
        };
        cluster.pman =
            cluster.add_service(Box::new(ProviderManagerService::new(self.strategy)));
        cluster.vman =
            cluster.add_service(Box::new(VersionManagerService::new(self.service_cfg.clone())));
        for _ in 0..self.meta_providers {
            let n = cluster.add_service(Box::new(MetaProviderService::new(
                cluster.pman,
                self.provider_capacity,
                self.service_cfg.clone(),
            )));
            cluster.meta.push(n);
        }
        for _ in 0..self.data_providers {
            let n = cluster.add_data_provider(self.provider_capacity);
            cluster.data.push(n);
        }
        // Added last so manager/provider NodeIds stay where tests and
        // embedders learned to find them.
        cluster.add_service(Box::new(ProcSamplerService {
            sampler: ProcSampler::new(),
            every: cluster.service_cfg.heartbeat_every,
        }));
        cluster
    }
}

/// A running threaded BlobSeer deployment.
pub struct Cluster {
    exec: Executor,
    metrics: Arc<Mutex<MetricSink>>,
    start: Instant,
    /// Provider manager address.
    pub pman: NodeId,
    /// Version manager address.
    pub vman: NodeId,
    /// Metadata providers, in partition order.
    pub meta: Vec<NodeId>,
    /// Data providers.
    pub data: Vec<NodeId>,
    service_cfg: ServiceConfig,
    client_cfg: ClientConfig,
    next_seed: u64,
    span_sink: Option<Arc<SpanSink>>,
    telemetry: Arc<TelemetryRegistry>,
    flight_recorder: Option<Arc<FlightRecorder>>,
    /// Deployment-wide backend selection for data providers.
    backend: BackendSpec,
    /// Which backend each data provider was opened with — consulted by
    /// [`Cluster::restart_data_provider`] so a restart re-opens the same
    /// directory instead of a fresh (empty) one.
    provider_backends: std::collections::HashMap<NodeId, BackendConfig>,
    next_backend_ordinal: usize,
}

impl Cluster {
    /// The span sink recording this cluster's traces, when tracing is on.
    pub fn span_sink(&self) -> Option<&Arc<SpanSink>> {
        self.span_sink.as_ref()
    }

    /// The cluster's live telemetry registry — every node's counters,
    /// gauges and heartbeat health gauges, readable while the cluster
    /// runs.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// The always-on flight recorder, unless disabled at build time.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight_recorder.as_ref()
    }

    /// How many executor shards (worker threads) this cluster runs on.
    pub fn executor_shards(&self) -> usize {
        self.exec.shard_count()
    }

    /// Change the service wiring used by nodes added from now on (e.g.
    /// point later providers at a monitoring service created after the
    /// cluster started).
    pub fn set_service_config(&mut self, cfg: ServiceConfig) {
        self.service_cfg = cfg;
    }

    /// The service wiring currently applied to new nodes.
    pub fn service_config(&self) -> ServiceConfig {
        self.service_cfg.clone()
    }

    /// Host an arbitrary service (monitoring, security, …) as a new
    /// executor cell; returns its address.
    pub fn add_service(&mut self, service: Box<dyn Service>) -> NodeId {
        let seed = self.next_seed;
        self.next_seed += 1;
        self.exec.add_node(NodeKind::Service(service), seed)
    }

    /// Add a data provider at runtime (elastic scale-up). The provider's
    /// backend directory is assigned from the cluster's [`BackendSpec`]
    /// and remembered for restarts.
    pub fn add_data_provider(&mut self, capacity: u64) -> NodeId {
        let pman = self.pman;
        let ordinal = self.next_backend_ordinal;
        self.next_backend_ordinal += 1;
        let backend = self.backend.for_provider(ordinal);
        let mut cfg = self.service_cfg.clone();
        cfg.backend = backend.clone();
        let node = self.add_service(Box::new(DataProviderService::new(pman, capacity, cfg)));
        self.provider_backends.insert(node, backend);
        node
    }

    /// Create a client; each client is one more multiplexed cell, so
    /// thousands are cheap.
    pub fn client(&mut self, client_id: ClientId) -> ClientHandle {
        let ccfg = self.client_cfg;
        self.client_with_config(client_id, ccfg)
    }

    /// Create a client with its own [`ClientConfig`], overriding the
    /// cluster default — used to compare protocol variants (e.g. the
    /// batched read path against the sequential one) side by side in
    /// the same deployment.
    pub fn client_with_config(&mut self, client_id: ClientId, ccfg: ClientConfig) -> ClientHandle {
        let seed = self.next_seed;
        self.next_seed += 1;
        let kind =
            NodeKind::client(client_id, self.vman, self.pman, self.meta.clone(), ccfg);
        let id = self.exec.add_node(kind, seed);
        ClientHandle {
            node: id,
            client_id,
            exec: Arc::clone(self.exec.shared()),
            op_timeout: Duration::from_secs(60),
        }
    }

    /// Send a raw message into the cluster (enforcement, tests).
    pub fn send(&self, to: NodeId, msg: Msg) {
        let sent_ns = self.start.elapsed().as_nanos() as u64;
        self.exec.shared().send_to(
            to,
            Envelope::Msg { from: NodeId::EXTERNAL, msg, trace: None, sent_ns },
        );
    }

    /// Stop a single node (crash injection): it is unrouted, its queued
    /// mail dropped, and it never runs again.
    pub fn kill(&self, node: NodeId) {
        self.exec.shared().kill(node);
    }

    /// Restart a previously [`kill`](Cluster::kill)ed node with a fresh
    /// service at the **same** [`NodeId`]: the routing-table slot is
    /// re-occupied by a new cell, so peers keep addressing the node as
    /// before while its in-memory state starts from scratch. Returns
    /// `false` if the slot is still live (never killed) or the address was
    /// never allocated.
    pub fn restart_service(&mut self, node: NodeId, service: Box<dyn Service>) -> bool {
        let seed = self.next_seed;
        self.next_seed += 1;
        self.exec.reinstall(node, NodeKind::Service(service), seed)
    }

    /// Restart a killed data provider at its old address (crash-recovery
    /// convenience over [`restart_service`](Cluster::restart_service)).
    /// With the memory backend the store comes back empty; with a disk
    /// backend the provider re-opens the directory it was originally
    /// assigned, recovers its chunks and re-announces them.
    pub fn restart_data_provider(&mut self, node: NodeId, capacity: u64) -> bool {
        let pman = self.pman;
        let mut cfg = self.service_cfg.clone();
        if let Some(backend) = self.provider_backends.get(&node) {
            cfg.backend = backend.clone();
        }
        self.restart_service(node, Box::new(DataProviderService::new(pman, capacity, cfg)))
    }

    /// Snapshot of cluster metrics.
    pub fn metrics(&self) -> MetricSink {
        let mut out = MetricSink::new();
        out.merge(std::mem::take(&mut *self.metrics.lock()));
        out
    }

    /// Wall-clock time since cluster start, as the cluster's `SimTime`.
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    /// Shut the executor down and join its workers. Envelopes still
    /// queued in cell mailboxes are dropped; blocked client callers see
    /// their reply channels disconnect.
    pub fn shutdown(mut self) {
        self.exec.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sads_sim::SpanKind;

    const PAGE: u64 = 64 * 1024;

    fn small_cluster() -> Cluster {
        ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .start()
    }

    fn patterned(len: usize, seed: u8) -> Bytes {
        Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>())
    }

    #[test]
    fn threaded_write_read_roundtrip_real_bytes() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(1));
        let spec = BlobSpec { page_size: PAGE, replication: 2 };
        let blob = client.create(spec).expect("create");
        let data = patterned(3 * PAGE as usize, 7);
        let v = client.write(blob, 0, data.clone()).expect("write");
        assert_eq!(v, VersionId(1));
        let got = client.read(blob, None, 0, 3 * PAGE).expect("read");
        assert_eq!(got, data);
        // Sub-range read with an unaligned offset.
        let got = client.read(blob, None, 100, 1000).expect("read sub");
        assert_eq!(&got[..], &data[100..1100]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_append_versions_and_snapshots() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(2));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let a = patterned(PAGE as usize, 1);
        let b = patterned(PAGE as usize, 2);
        let (v1, off1) = client.append(blob, a.clone()).expect("append a");
        let (v2, off2) = client.append(blob, b.clone()).expect("append b");
        assert_eq!((v1, off1), (VersionId(1), 0));
        assert_eq!((v2, off2), (VersionId(2), PAGE));
        // Latest sees both; v1 snapshot sees only the first page.
        let latest = client.read(blob, None, 0, 2 * PAGE).expect("read latest");
        assert_eq!(&latest[..PAGE as usize], &a[..]);
        assert_eq!(&latest[PAGE as usize..], &b[..]);
        let old = client.read(blob, Some(VersionId(1)), 0, 2 * PAGE).expect("read v1");
        assert_eq!(old.len() as u64, PAGE, "v1 is one page long; read clamps");
        assert_eq!(&old[..], &a[..]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_holes_read_as_zeros() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(3));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let d = patterned(PAGE as usize, 3);
        // Write page 2 only; pages 0..2 are holes.
        client.write(blob, 2 * PAGE, d.clone()).expect("sparse write");
        let got = client.read(blob, None, 0, 3 * PAGE).expect("read");
        assert!(got[..2 * PAGE as usize].iter().all(|&b| b == 0), "holes are zeros");
        assert_eq!(&got[2 * PAGE as usize..], &d[..]);
        cluster.shutdown();
    }

    #[test]
    fn threaded_misaligned_write_fails_cleanly() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(4));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        let err = client.write(blob, 13, patterned(PAGE as usize, 4)).unwrap_err();
        assert!(matches!(err, BlobError::Misaligned { .. }));
        let err = client.write(blob, 0, patterned(100, 4)).unwrap_err();
        assert!(matches!(err, BlobError::Misaligned { .. }));
        cluster.shutdown();
    }

    #[test]
    fn threaded_block_enforcement_rejects_client() {
        let mut cluster = small_cluster();
        let client = cluster.client(ClientId(66));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 1 })
            .expect("create");
        cluster.send(cluster.vman, Msg::BlockClient { client: ClientId(66) });
        // The block lands asynchronously; retry until it takes effect.
        let mut blocked = false;
        for _ in 0..50 {
            match client.write(blob, 0, patterned(PAGE as usize, 5)) {
                Err(BlobError::Blocked(_)) => {
                    blocked = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(blocked, "client must eventually be blocked");
        // Unblock restores service.
        cluster.send(cluster.vman, Msg::UnblockClient { client: ClientId(66) });
        let mut ok = false;
        for _ in 0..50 {
            if client.write(blob, 0, patterned(PAGE as usize, 6)).is_ok() {
                ok = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ok, "client must be unblocked again");
        cluster.shutdown();
    }

    #[test]
    fn threaded_kill_then_restart_reuses_node_id() {
        let mut cluster = small_cluster();
        let victim = cluster.data[0];
        cluster.kill(victim);
        // The slot is free now; a second restart at the same id must fail.
        assert!(cluster.restart_data_provider(victim, 256 << 20));
        assert!(!cluster.restart_data_provider(victim, 256 << 20));
        // The revived provider serves traffic at its old address.
        let client = cluster.client(ClientId(9));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 2 })
            .expect("create");
        let data = patterned(2 * PAGE as usize, 11);
        client.write(blob, 0, data.clone()).expect("write after restart");
        let got = client.read(blob, None, 0, 2 * PAGE).expect("read after restart");
        assert_eq!(got, data);
        cluster.shutdown();
    }

    #[test]
    fn threaded_tracing_records_op_and_server_spans() {
        let sink = Arc::new(SpanSink::new());
        let mut cluster = ClusterBuilder::new()
            .data_providers(4)
            .meta_providers(2)
            .provider_capacity(256 << 20)
            .span_sink(Arc::clone(&sink))
            .start();
        let client = cluster.client(ClientId(5));
        let blob = client
            .create(BlobSpec { page_size: PAGE, replication: 2 })
            .expect("create");
        let data = patterned(2 * PAGE as usize, 9);
        client.write(blob, 0, data.clone()).expect("write");
        let got = client.read(blob, None, 0, 2 * PAGE).expect("read");
        assert_eq!(got, data);
        cluster.shutdown();

        let spans = sink.spans();
        // One root Op span per client op (create + write + read).
        let ops: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::Op && s.service == "client").collect();
        assert_eq!(ops.len(), 3, "create, write, read roots");
        // The write trace fans out: provider handles and vmanager handles
        // must appear in the same trace as the write root.
        let write_root = ops.iter().find(|s| s.op == "write").expect("write root");
        let in_write: Vec<_> =
            spans.iter().filter(|s| s.trace == write_root.trace).collect();
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Handle && s.service == "provider"),
            "write trace covers provider handles"
        );
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Handle && s.service == "vmanager"),
            "write trace covers vmanager handles"
        );
        assert!(
            in_write.iter().any(|s| s.kind == SpanKind::Net),
            "write trace records mailbox-queueing Net spans"
        );
        // Histograms aggregate per (service, op).
        assert!(sink
            .histograms()
            .iter()
            .any(|((svc, op), _)| *svc == "client" && *op == "write"));
    }

    #[test]
    fn threaded_concurrent_clients_roundtrip() {
        let mut cluster = ClusterBuilder::new()
            .data_providers(6)
            .meta_providers(2)
            .provider_capacity(512 << 20)
            .executor_shards(2)
            .start();
        assert_eq!(cluster.executor_shards(), 2);
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let client = cluster.client(ClientId(10 + i));
            handles.push(std::thread::spawn(move || {
                let blob = client
                    .create(BlobSpec { page_size: PAGE, replication: 1 })
                    .expect("create");
                let data = patterned(4 * PAGE as usize, i as u8);
                client.write(blob, 0, data.clone()).expect("write");
                let got = client.read(blob, None, 0, 4 * PAGE).expect("read");
                assert_eq!(got, data);
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        cluster.shutdown();
    }
}
