//! Simulated runtime: hosts BlobSeer services and scripted clients as
//! actors of a [`sads_sim::World`], with every transfer priced by the
//! bandwidth model. This is the Grid'5000 substitute all paper-shaped
//! experiments run on.

use std::collections::VecDeque;

use sads_sim::{Actor, Ctx, Message, MessageExt, NodeConfig, NodeId, SimDuration, SimTime, World};

use crate::client::{ClientConfig, ClientCore, ClientOp, Completion};
use crate::model::{BlobId, BlobSpec, ClientId, Payload, VersionId};
use crate::rpc::Msg;
use crate::services::{Env, Service};
use crate::vmanager::WriteKind;

/// Adapter: an [`Env`] view over the simulator's [`Ctx`].
pub struct SimEnv<'a, 'w> {
    ctx: &'a mut Ctx<'w>,
}

impl<'a, 'w> SimEnv<'a, 'w> {
    /// Wrap a simulator context.
    pub fn new(ctx: &'a mut Ctx<'w>) -> Self {
        SimEnv { ctx }
    }
}

impl Env for SimEnv<'_, '_> {
    fn id(&self) -> NodeId {
        self.ctx.id()
    }
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn send(&mut self, to: NodeId, msg: Msg) {
        self.ctx.send(to, Box::new(msg));
    }
    fn send_expedited(&mut self, to: NodeId, msg: Msg) {
        self.ctx.send_expedited(to, Box::new(msg));
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.ctx.set_timer(delay, token);
    }
    fn rng(&mut self) -> &mut rand::rngs::SmallRng {
        self.ctx.rng()
    }
    fn record(&mut self, name: &str, value: f64) {
        self.ctx.record(name, value);
        // Mirror into the live registry (when installed) as a node-labeled
        // gauge, so existing call sites feed the telemetry plane with no
        // churn. Registry writes are plain atomics — no schedule impact.
        if let Some(reg) = self.ctx.telemetry() {
            reg.set(name, &[("node", self.ctx.id().0.to_string().as_str())], value);
        }
    }
    fn incr(&mut self, name: &str, delta: u64) {
        self.ctx.incr(name, delta);
        if let Some(reg) = self.ctx.telemetry() {
            reg.inc(name, &[("node", self.ctx.id().0.to_string().as_str())], delta);
        }
    }
    fn span_sink(&self) -> Option<std::sync::Arc<sads_sim::SpanSink>> {
        self.ctx.span_sink()
    }
    fn trace_ctx(&self) -> Option<sads_sim::TraceCtx> {
        self.ctx.trace_ctx()
    }
    fn set_trace_ctx(&mut self, trace: Option<sads_sim::TraceCtx>) {
        self.ctx.set_trace_ctx(trace);
    }
    fn telemetry(&self) -> Option<std::sync::Arc<sads_sim::Registry>> {
        self.ctx.telemetry()
    }
    fn queue_depth_seconds(&self) -> f64 {
        self.ctx.ingress_backlog(self.ctx.id()).as_secs_f64()
    }
}

/// Wraps any [`Service`] as a simulator actor.
pub struct SimService {
    inner: Box<dyn Service>,
}

impl SimService {
    /// Host `service` in the simulator.
    pub fn new(service: Box<dyn Service>) -> Self {
        SimService { inner: service }
    }
}

impl Actor for SimService {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.on_start(&mut SimEnv::new(ctx));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Message>) {
        if let Ok(msg) = msg.downcast::<Msg>() {
            // When the delivery carries a trace, record a server-side
            // Handle span around the service logic: it proves context
            // crossed the node boundary and names who handled what.
            // (In simulation handlers take zero virtual time, so the
            // span marks a point; the threaded runtime measures real
            // handling time the same way.)
            let traced = match (ctx.span_sink(), ctx.trace_ctx()) {
                (Some(sink), Some(tc)) => {
                    Some((sink, tc, sads_sim::Message::op_name(&*msg), ctx.now()))
                }
                _ => None,
            };
            self.inner.on_msg(&mut SimEnv::new(ctx), from, *msg);
            if let Some((sink, tc, op, started)) = traced {
                sink.record(sads_sim::SpanRecord {
                    trace: tc.trace_id,
                    span: sink.next_id(),
                    parent: tc.span_id,
                    service: self.inner.name(),
                    op,
                    node: ctx.id().0 as u64,
                    start_ns: started.as_nanos(),
                    end_ns: ctx.now().as_nanos(),
                    kind: sads_sim::SpanKind::Handle,
                    class: sads_sim::SpanClass::Control,
                    queue_ns: 0,
                    xfer_ns: 0,
                    wire_ns: 0,
                });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.inner.on_timer(&mut SimEnv::new(ctx), token);
    }
}

/// Convenience: add a service node to a world.
pub fn add_service(world: &mut World, service: Box<dyn Service>, nic: NodeConfig) -> NodeId {
    world.add_node(Box::new(SimService::new(service)), nic)
}

/// Which BLOB a scripted step targets.
#[derive(Clone, Copy, Debug)]
pub enum BlobRef {
    /// A known id.
    Id(BlobId),
    /// The `i`-th BLOB this client created.
    Created(usize),
}

/// One step of a scripted client workload.
#[derive(Clone, Debug)]
pub enum ScriptStep {
    /// Create a BLOB (its id becomes `BlobRef::Created(i)`).
    Create(BlobSpec),
    /// Write `bytes` of simulated data.
    Write {
        /// Target BLOB.
        blob: BlobRef,
        /// Offset or append.
        kind: WriteKind,
        /// Bytes to write.
        bytes: u64,
    },
    /// Read a range.
    Read {
        /// Target BLOB.
        blob: BlobRef,
        /// Version, or latest.
        version: Option<VersionId>,
        /// Byte offset.
        offset: u64,
        /// Byte length.
        len: u64,
    },
    /// Sleep until an absolute simulation time before the next step.
    WaitUntil(SimTime),
    /// Sleep for a relative duration before the next step.
    Pause(SimDuration),
}

const SCRIPT_TIMER: u64 = 1;

/// A simulator actor that runs a fixed script of client operations
/// sequentially, recording completions into the world metrics:
///
/// * series `<prefix>.write_mbps` / `<prefix>.read_mbps` — per-op
///   throughput, stamped at completion time,
/// * series `op_seconds` — wall duration of every data op,
/// * counters `<prefix>.ops_ok`, `<prefix>.ops_err`.
pub struct ScriptedClient {
    core: ClientCore,
    script: VecDeque<ScriptStep>,
    created: Vec<BlobId>,
    prefix: String,
    // Metric names are fixed per client; precomputed so the per-op hot
    // path records without formatting (error slugs, being rare, still
    // format on demand).
    ops_ok_name: String,
    ops_err_name: String,
    write_mbps_name: String,
    read_mbps_name: String,
    waiting_op: bool,
}

impl ScriptedClient {
    /// Build a scripted client. `prefix` namespaces its metrics (use one
    /// shared prefix to aggregate a fleet, e.g. `"client"`).
    pub fn new(
        id: ClientId,
        vman: NodeId,
        pman: NodeId,
        meta_providers: Vec<NodeId>,
        cfg: ClientConfig,
        script: Vec<ScriptStep>,
        prefix: impl Into<String>,
    ) -> Self {
        let prefix: String = prefix.into();
        ScriptedClient {
            core: ClientCore::new(id, vman, pman, meta_providers, cfg),
            script: script.into(),
            created: Vec::new(),
            ops_ok_name: format!("{prefix}.ops_ok"),
            ops_err_name: format!("{prefix}.ops_err"),
            write_mbps_name: format!("{prefix}.write_mbps"),
            read_mbps_name: format!("{prefix}.read_mbps"),
            prefix,
            waiting_op: false,
        }
    }

    fn resolve(&self, b: BlobRef) -> Option<BlobId> {
        match b {
            BlobRef::Id(id) => Some(id),
            BlobRef::Created(i) => self.created.get(i).copied(),
        }
    }

    fn next_step(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(step) = self.script.pop_front() {
            match step {
                ScriptStep::Create(spec) => {
                    let mut env = SimEnv::new(ctx);
                    self.core.start_op(&mut env, ClientOp::Create { spec }, 0);
                    self.waiting_op = true;
                    return;
                }
                ScriptStep::Write { blob, kind, bytes } => {
                    let Some(blob) = self.resolve(blob) else {
                        ctx.incr(&self.ops_err_name, 1);
                        continue;
                    };
                    let mut env = SimEnv::new(ctx);
                    self.core.start_op(
                        &mut env,
                        ClientOp::Write { blob, kind, data: Payload::Sim(bytes) },
                        0,
                    );
                    self.waiting_op = true;
                    return;
                }
                ScriptStep::Read { blob, version, offset, len } => {
                    let Some(blob) = self.resolve(blob) else {
                        ctx.incr(&self.ops_err_name, 1);
                        continue;
                    };
                    let mut env = SimEnv::new(ctx);
                    self.core.start_op(
                        &mut env,
                        ClientOp::Read { blob, version, offset, len },
                        0,
                    );
                    self.waiting_op = true;
                    return;
                }
                ScriptStep::WaitUntil(at) => {
                    let delay = at.since(ctx.now());
                    ctx.set_timer(delay, SCRIPT_TIMER);
                    return;
                }
                ScriptStep::Pause(d) => {
                    ctx.set_timer(d, SCRIPT_TIMER);
                    return;
                }
            }
        }
    }

    fn on_completions(&mut self, ctx: &mut Ctx<'_>, completions: Vec<Completion>) {
        for c in completions {
            self.waiting_op = false;
            match &c.result {
                Ok(out) => {
                    ctx.incr(&self.ops_ok_name, 1);
                    match out {
                        crate::client::OpOutput::Created(b) => self.created.push(*b),
                        crate::client::OpOutput::Written { .. } => {
                            ctx.record(&self.write_mbps_name, c.throughput_mbps());
                            ctx.record("op_seconds", c.finished.since(c.started).as_secs_f64());
                        }
                        crate::client::OpOutput::Read { .. } => {
                            ctx.record(&self.read_mbps_name, c.throughput_mbps());
                            ctx.record("op_seconds", c.finished.since(c.started).as_secs_f64());
                        }
                        // Metadata-only lifecycle ops: counted, no
                        // throughput to record.
                        crate::client::OpOutput::Snapshotted { .. }
                        | crate::client::OpOutput::Decommissioned { .. } => {}
                        // Scripted clients drive only whole-op writes and
                        // reads; stream sub-completions are counted, no
                        // per-chunk throughput series.
                        crate::client::OpOutput::WriteStreamOpened { .. }
                        | crate::client::OpOutput::Fed { .. }
                        | crate::client::OpOutput::ReadStreamOpened { .. }
                        | crate::client::OpOutput::ReadChunk { .. }
                        | crate::client::OpOutput::StreamClosed { .. } => {}
                    }
                }
                Err(e) => {
                    ctx.incr(&self.ops_err_name, 1);
                    ctx.incr(&format!("{}.err.{}", self.prefix, err_slug(e)), 1);
                }
            }
            self.next_step(ctx);
        }
    }
}

fn err_slug(e: &crate::model::BlobError) -> &'static str {
    use crate::model::BlobError::*;
    match e {
        UnknownBlob(_) => "unknown_blob",
        UnknownVersion(..) => "unknown_version",
        Misaligned { .. } => "misaligned",
        EmptyWrite => "empty_write",
        OutOfBounds { .. } => "out_of_bounds",
        AllocationFailed { .. } => "alloc_failed",
        Blocked(_) => "blocked",
        ChunkUnavailable(_) => "chunk_unavailable",
        MetaUnavailable => "meta_unavailable",
        Timeout => "timeout",
        ProviderFull => "provider_full",
        Protocol(_) => "protocol",
    }
}

impl Actor for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.next_step(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Message>) {
        if let Ok(msg) = msg.downcast::<Msg>() {
            let completions = {
                let mut env = SimEnv::new(ctx);
                self.core.handle_msg(&mut env, from, *msg)
            };
            self.on_completions(ctx, completions);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if ClientCore::owns_timer(token) {
            let completions = {
                let mut env = SimEnv::new(ctx);
                self.core.handle_timer(&mut env, token)
            };
            self.on_completions(ctx, completions);
        } else if token == SCRIPT_TIMER && !self.waiting_op {
            self.next_step(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmanager::RoundRobin;
    use crate::services::{
        DataProviderService, MetaProviderService, ProviderManagerService, ServiceConfig,
        VersionManagerService,
    };
    use sads_sim::RunOutcome;

    /// Stand up a small simulated deployment; returns
    /// (world, vman, pman, meta_providers).
    fn deploy(
        n_data: usize,
        n_meta: usize,
        seed: u64,
    ) -> (World, NodeId, NodeId, Vec<NodeId>) {
        let mut world = World::with_seed(seed);
        let scfg = ServiceConfig::default();
        let pman = add_service(
            &mut world,
            Box::new(ProviderManagerService::new(Box::<RoundRobin>::default())),
            NodeConfig::unlimited(),
        );
        let vman = add_service(
            &mut world,
            Box::new(VersionManagerService::new(scfg.clone())),
            NodeConfig::unlimited(),
        );
        let meta: Vec<NodeId> = (0..n_meta)
            .map(|_| {
                add_service(
                    &mut world,
                    Box::new(MetaProviderService::new(pman, 1 << 30, scfg.clone())),
                    NodeConfig::default(),
                )
            })
            .collect();
        for _ in 0..n_data {
            add_service(
                &mut world,
                Box::new(DataProviderService::new(pman, 1 << 40, scfg.clone())),
                NodeConfig::default(),
            );
        }
        (world, vman, pman, meta)
    }

    const MB: u64 = 1_000_000;

    #[test]
    fn scripted_write_read_roundtrip_in_simulation() {
        let (mut world, vman, pman, meta) = deploy(8, 2, 42);
        let spec = BlobSpec { page_size: 8 * MB, replication: 1 };
        let script = vec![
            ScriptStep::Create(spec),
            ScriptStep::Write { blob: BlobRef::Created(0), kind: WriteKind::Append, bytes: 64 * MB },
            ScriptStep::Read {
                blob: BlobRef::Created(0),
                version: None,
                offset: 0,
                len: 64 * MB,
            },
        ];
        world.add_node(
            Box::new(ScriptedClient::new(
                ClientId(1),
                vman,
                pman,
                meta,
                ClientConfig::default(),
                script,
                "client",
            )),
            NodeConfig::default(),
        );
        // Providers re-arm heartbeats forever; run a bounded stretch.
        let out = world.run_for(SimDuration::from_secs(120), 2_000_000);
        assert_ne!(out, RunOutcome::EventLimit);
        assert_eq!(world.metrics().counter("client.ops_ok"), 3, "create+write+read all succeed");
        assert_eq!(world.metrics().counter("client.ops_err"), 0);
        let w = world.metrics().mean("client.write_mbps").expect("write throughput recorded");
        // 1 Gb/s NIC: a single writer must land near 125 MB/s (some
        // protocol overhead allowed).
        assert!(w > 80.0 && w <= 130.0, "write throughput {w} MB/s");
        let r = world.metrics().mean("client.read_mbps").expect("read throughput recorded");
        assert!(r > 80.0 && r <= 130.0, "read throughput {r} MB/s");
    }

    #[test]
    fn many_concurrent_clients_share_their_own_nics() {
        let (mut world, vman, pman, meta) = deploy(16, 2, 7);
        let spec = BlobSpec { page_size: 8 * MB, replication: 1 };
        for i in 0..8 {
            let script = vec![
                ScriptStep::Create(spec),
                ScriptStep::Write {
                    blob: BlobRef::Created(0),
                    kind: WriteKind::Append,
                    bytes: 64 * MB,
                },
            ];
            world.add_node(
                Box::new(ScriptedClient::new(
                    ClientId(100 + i),
                    vman,
                    pman,
                    meta.clone(),
                    ClientConfig::default(),
                    script,
                    "client",
                )),
                NodeConfig::default(),
            );
        }
        world.run_for(SimDuration::from_secs(120), 5_000_000);
        assert_eq!(world.metrics().counter("client.ops_ok"), 16);
        // With 16 providers and 8 clients, every client's own NIC is the
        // bottleneck: aggregate ≈ 8 × ~110 MB/s.
        let w = world.metrics().mean("client.write_mbps").unwrap();
        assert!(w > 70.0, "per-client write throughput under concurrency: {w} MB/s");
    }

    #[test]
    fn replication_three_writes_three_copies() {
        let (mut world, vman, pman, meta) = deploy(6, 1, 3);
        let spec = BlobSpec { page_size: MB, replication: 3 };
        let script = vec![
            ScriptStep::Create(spec),
            ScriptStep::Write { blob: BlobRef::Created(0), kind: WriteKind::Append, bytes: 4 * MB },
        ];
        world.add_node(
            Box::new(ScriptedClient::new(
                ClientId(1),
                vman,
                pman,
                meta,
                ClientConfig::default(),
                script,
                "client",
            )),
            NodeConfig::default(),
        );
        world.run_for(SimDuration::from_secs(60), 1_000_000);
        assert_eq!(world.metrics().counter("client.ops_ok"), 2);
        // 4 chunks × 3 replicas: replica puts all acknowledged.
        // (Verified indirectly: a write with replication==3 on 6 providers
        // succeeded, which requires 3 distinct providers per chunk.)
    }

    #[test]
    fn concurrent_writers_to_same_blob_serialize_versions() {
        let (mut world, vman, pman, meta) = deploy(8, 2, 11);
        let spec = BlobSpec { page_size: MB, replication: 1 };
        // Client 1 creates; clients 2 and 3 write to BlobId(1) (the first
        // created blob id is deterministic).
        world.add_node(
            Box::new(ScriptedClient::new(
                ClientId(1),
                vman,
                pman,
                meta.clone(),
                ClientConfig::default(),
                vec![ScriptStep::Create(spec)],
                "creator",
            )),
            NodeConfig::default(),
        );
        for i in 0..2 {
            let script = vec![
                ScriptStep::WaitUntil(SimTime(1_000_000_000)),
                ScriptStep::Write {
                    blob: BlobRef::Id(BlobId(1)),
                    kind: WriteKind::At(i * 4 * MB),
                    bytes: 4 * MB,
                },
                ScriptStep::Read {
                    blob: BlobRef::Id(BlobId(1)),
                    version: None,
                    offset: 0,
                    len: 4 * MB,
                },
            ];
            world.add_node(
                Box::new(ScriptedClient::new(
                    ClientId(10 + i),
                    vman,
                    pman,
                    meta.clone(),
                    ClientConfig::default(),
                    script,
                    "writer",
                )),
                NodeConfig::default(),
            );
        }
        world.run_for(SimDuration::from_secs(120), 2_000_000);
        assert_eq!(world.metrics().counter("creator.ops_ok"), 1);
        assert_eq!(world.metrics().counter("writer.ops_ok"), 4, "2 writes + 2 reads");
        assert_eq!(world.metrics().counter("writer.ops_err"), 0);
    }
}
