//! The BlobSeer RPC vocabulary: every message exchanged between clients,
//! data providers, metadata providers, the provider manager and the
//! version manager — plus the enforcement and instrumentation messages
//! that tie in the self-management layers.
//!
//! One enum keeps the simulated and threaded runtimes trivially
//! interoperable; `wire_size` drives the simulator's bandwidth model.

use sads_sim::NodeId;

use crate::meta::{MetaNode, NodeKey, NodeRef};
use crate::model::{BlobError, BlobId, BlobSpec, ClientId, Payload, VersionId, VersionInfo};
use crate::pmanager::{Placement, ProviderKind, ProviderLoad};
use crate::probe::ProbeEvent;
use crate::vmanager::{WriteKind, WriteTicket};

/// Why a chunk operation failed at a data provider.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChunkErr {
    /// Client blocked by the security framework.
    Blocked,
    /// Provider storage exhausted.
    Full,
    /// No such chunk.
    NotFound,
    /// The RPC deadline expired with no answer (provider crashed or
    /// unreachable). Never sent on the wire: the client core synthesizes
    /// it locally when a per-request timer fires, so the retry/failover
    /// paths see timeouts and explicit refusals through one code path.
    Unreachable,
}

/// All BlobSeer messages.
#[derive(Debug)]
pub enum Msg {
    // ---- provider manager ----
    /// Provider announces itself.
    Register {
        /// Data or metadata provider.
        kind: ProviderKind,
        /// Capacity in bytes.
        capacity: u64,
    },
    /// Periodic provider load report.
    Heartbeat {
        /// Current load snapshot.
        load: ProviderLoad,
    },
    /// Client asks for chunk placements.
    Alloc {
        /// Correlation id.
        req: u64,
        /// Requesting client (for enforcement/accounting).
        client: ClientId,
        /// Number of chunks.
        chunks: u32,
        /// Replicas per chunk.
        replication: u32,
        /// Bytes per chunk.
        chunk_size: u64,
    },
    /// Successful allocation.
    AllocOk {
        /// Correlation id.
        req: u64,
        /// Replica providers per chunk.
        placement: Placement,
    },
    /// Allocation failure.
    AllocErr {
        /// Correlation id.
        req: u64,
        /// Providers currently allocatable.
        available: u32,
    },
    /// Ask for the current provider directory.
    GetDirectory {
        /// Correlation id.
        req: u64,
    },
    /// Directory response.
    Directory {
        /// Correlation id.
        req: u64,
        /// Metadata providers, in partition order.
        meta_providers: Vec<NodeId>,
        /// Live data providers.
        data_providers: Vec<NodeId>,
    },
    /// Adaptive layer: stop allocating to a provider (drain for
    /// decommission) or resume.
    SetDraining {
        /// Target provider.
        provider: NodeId,
        /// Drain on/off.
        draining: bool,
    },
    /// Adaptive layer: forget a provider entirely (it was retired or
    /// crashed).
    Deregister {
        /// Target provider.
        provider: NodeId,
    },

    // ---- data provider ----
    /// Store one chunk replica.
    PutChunk {
        /// Correlation id.
        req: u64,
        /// Writing client.
        client: ClientId,
        /// Chunk identity.
        key: crate::model::ChunkKey,
        /// Payload.
        data: Payload,
    },
    /// Store several chunk replicas bound for the same provider in one
    /// round trip. Writers group a version's chunks by target provider so
    /// a multi-page write costs one request per provider instead of one
    /// per chunk. Answered with a single [`Msg::PutChunkOk`] (all stored)
    /// or [`Msg::PutChunkErr`] (first failure aborts the rest).
    PutChunkBatch {
        /// Correlation id.
        req: u64,
        /// Writing client.
        client: ClientId,
        /// The chunks, in page order.
        items: Vec<(crate::model::ChunkKey, Payload)>,
    },
    /// Chunk stored.
    PutChunkOk {
        /// Correlation id.
        req: u64,
    },
    /// Chunk refused.
    PutChunkErr {
        /// Correlation id.
        req: u64,
        /// Why.
        err: ChunkErr,
    },
    /// Fetch one chunk.
    GetChunk {
        /// Correlation id.
        req: u64,
        /// Reading client.
        client: ClientId,
        /// Chunk identity.
        key: crate::model::ChunkKey,
    },
    /// Chunk payload.
    GetChunkOk {
        /// Correlation id.
        req: u64,
        /// The data.
        data: Payload,
    },
    /// Chunk fetch failed.
    GetChunkErr {
        /// Correlation id.
        req: u64,
        /// Why.
        err: ChunkErr,
    },
    /// Fetch several chunks held by the same provider in one round trip.
    /// Readers group the open window's slots by the replica chosen for
    /// each chunk, so a multi-page read costs one request per provider
    /// instead of one per chunk (the read-side mirror of
    /// [`Msg::PutChunkBatch`]).
    GetChunkBatch {
        /// Correlation id.
        req: u64,
        /// Reading client.
        client: ClientId,
        /// Chunks wanted, in page order.
        keys: Vec<crate::model::ChunkKey>,
    },
    /// Per-item batch fetch results. Unlike the write-side batch reply,
    /// errors are reported per chunk: a missing replica must not poison
    /// the rest of the batch, so the client can keep the hits and walk
    /// the replica set only for the misses.
    GetChunkBatchOk {
        /// Correlation id.
        req: u64,
        /// Per-key result, in request order.
        items: Vec<(crate::model::ChunkKey, Result<Payload, ChunkErr>)>,
    },
    /// Remove a chunk (GC / decommission).
    DeleteChunk {
        /// Correlation id.
        req: u64,
        /// Chunk identity.
        key: crate::model::ChunkKey,
    },
    /// Removal result.
    DeleteChunkOk {
        /// Correlation id.
        req: u64,
        /// Whether it existed.
        existed: bool,
    },
    /// Replication manager → data provider: copy a chunk you hold to
    /// another provider (repair / degree increase).
    ReplicateChunk {
        /// Correlation id.
        req: u64,
        /// The chunk to copy.
        key: crate::model::ChunkKey,
        /// Destination provider.
        to: NodeId,
    },
    /// Relay outcome: `ok` is false when the source no longer holds the
    /// chunk or the destination refused it.
    ReplicateChunkOk {
        /// Correlation id.
        req: u64,
        /// Success flag.
        ok: bool,
    },

    // ---- metadata provider ----
    /// Store a batch of tree nodes (grouped per provider by the client).
    PutMeta {
        /// Correlation id.
        req: u64,
        /// The nodes.
        nodes: Vec<(NodeKey, MetaNode)>,
    },
    /// Batch stored.
    PutMetaOk {
        /// Correlation id.
        req: u64,
    },
    /// Fetch a batch of tree nodes.
    GetMeta {
        /// Correlation id.
        req: u64,
        /// Keys wanted.
        keys: Vec<NodeKey>,
    },
    /// Fetched nodes (`None` for keys not present).
    GetMetaOk {
        /// Correlation id.
        req: u64,
        /// Per-key result.
        nodes: Vec<(NodeKey, Option<MetaNode>)>,
    },
    /// Ask a metadata provider for every tree node it stores on the read
    /// path of `[query]` at `version`, in one round trip. The provider
    /// returns, for each stored range intersecting the query, the node
    /// with the greatest version ≤ `version` — exactly the node the
    /// level-by-level descent would fetch there (nodes are immutable and
    /// coverage only grows with version). Keys are hash-partitioned, so a
    /// cold reader broadcasts this to all metadata providers and merges
    /// the replies into its node cache; any gap falls back to per-node
    /// [`Msg::GetMeta`].
    GetMetaRange {
        /// Correlation id.
        req: u64,
        /// Target BLOB.
        blob: BlobId,
        /// Snapshot version being read.
        version: VersionId,
        /// Pages the read covers.
        query: crate::model::PageInterval,
        /// Resume cursor: only ranges strictly after this one (in
        /// `(start, len)` order) are returned. `None` starts from the top.
        after: Option<crate::meta::NodeRange>,
        /// Reply size cap; `more` signals a continuation is needed.
        max_nodes: u32,
    },
    /// The bulk range-descent reply.
    GetMetaRangeOk {
        /// Correlation id.
        req: u64,
        /// Matching nodes, ordered by `(range.start, range.len)`.
        nodes: Vec<(NodeKey, MetaNode)>,
        /// Whether the reply was truncated at `max_nodes` (re-request
        /// with `after` = last returned range to continue).
        more: bool,
    },
    /// Remove tree nodes (version GC).
    DeleteMeta {
        /// Correlation id.
        req: u64,
        /// Keys to remove.
        keys: Vec<NodeKey>,
    },
    /// Removal done.
    DeleteMetaOk {
        /// Correlation id.
        req: u64,
        /// How many existed.
        removed: u32,
    },
    /// Replication manager → metadata provider: update the replica set
    /// recorded in a leaf (location metadata is mutable; version data is
    /// not).
    PatchLeaf {
        /// Correlation id.
        req: u64,
        /// The leaf's key.
        key: NodeKey,
        /// The new replica set.
        replicas: Vec<NodeId>,
    },
    /// Patch result.
    PatchLeafOk {
        /// Correlation id.
        req: u64,
        /// Whether the leaf existed.
        ok: bool,
    },

    // ---- version manager ----
    /// Create a BLOB.
    CreateBlob {
        /// Correlation id.
        req: u64,
        /// Requesting client.
        client: ClientId,
        /// BLOB parameters.
        spec: BlobSpec,
    },
    /// BLOB created.
    CreateBlobOk {
        /// Correlation id.
        req: u64,
        /// New id.
        blob: BlobId,
    },
    /// Request a write ticket.
    Ticket {
        /// Correlation id.
        req: u64,
        /// Writing client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Offset or append.
        kind: WriteKind,
        /// Bytes to write.
        len: u64,
    },
    /// Ticket granted.
    TicketOk {
        /// Correlation id.
        req: u64,
        /// The ticket.
        ticket: WriteTicket,
    },
    /// Ticket refused.
    TicketErr {
        /// Correlation id.
        req: u64,
        /// Why.
        err: BlobError,
    },
    /// Writer finished storing chunks + metadata.
    Commit {
        /// Correlation id.
        req: u64,
        /// The writer.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Version being committed.
        version: VersionId,
        /// New tree root.
        root: NodeRef,
        /// BLOB size after this version.
        size: u64,
    },
    /// The version is published (sent when ordering allows).
    CommitOk {
        /// Correlation id of the original `Commit`.
        req: u64,
        /// The published version.
        version: VersionId,
    },
    /// Read version info (latest or specific).
    GetVersion {
        /// Correlation id.
        req: u64,
        /// Reading client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Specific version, or `None` for latest.
        version: Option<VersionId>,
    },
    /// Version info.
    GetVersionOk {
        /// Correlation id.
        req: u64,
        /// The info.
        info: VersionInfo,
    },
    /// Version lookup failed.
    GetVersionErr {
        /// Correlation id.
        req: u64,
        /// Why.
        err: BlobError,
    },

    /// Adaptive layer → version manager: list a BLOB's published versions.
    ListVersions {
        /// Correlation id.
        req: u64,
        /// Target BLOB.
        blob: BlobId,
    },
    /// The catalog reply.
    VersionList {
        /// Correlation id.
        req: u64,
        /// The BLOB the catalog describes.
        blob: BlobId,
        /// Page size of the BLOB.
        page_size: u64,
        /// `(version, size, interval, published_at)` per published
        /// version, in order.
        versions: Vec<crate::vmanager::VersionSummary>,
        /// Versions pinned as snapshots (GC roots), in order.
        snapshots: Vec<VersionId>,
        /// Whether the BLOB was decommissioned (no version is a root).
        decommissioned: bool,
    },
    /// Client/gateway → version manager: pin a published version (or the
    /// latest when `None`) as a **snapshot** — an O(1) metadata-only
    /// operation. Snapshotted versions are GC roots: the lifecycle
    /// sweeper never reclaims their chunks or tree nodes, and the version
    /// manager refuses to forget them.
    SnapshotVersion {
        /// Correlation id.
        req: u64,
        /// Requesting client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Version to pin, or `None` for the latest published one.
        version: Option<VersionId>,
    },
    /// Snapshot pinned.
    SnapshotVersionOk {
        /// Correlation id.
        req: u64,
        /// The pinned version.
        version: VersionId,
    },
    /// Snapshot refused (unknown BLOB/version, blocked client).
    SnapshotVersionErr {
        /// Correlation id.
        req: u64,
        /// Why.
        err: BlobError,
    },
    /// Client/gateway → version manager: mark a BLOB decommissioned. The
    /// record stays (ids are never reused) but every version — snapshots
    /// and the latest included — stops being a GC root, so the lifecycle
    /// sweeper reclaims all of its chunks and tree nodes.
    DecommissionBlob {
        /// Correlation id.
        req: u64,
        /// Requesting client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
    },
    /// Decommission result.
    DecommissionBlobOk {
        /// Correlation id.
        req: u64,
        /// Whether the BLOB existed (idempotent: re-decommissioning an
        /// already-decommissioned BLOB also reports `true`).
        ok: bool,
    },
    /// Lifecycle scrubber → data provider: verify the integrity of up to
    /// `max` stored chunks with keys after `after` (`None` starts from
    /// the beginning). The provider recomputes payload checksums against
    /// the ones recorded at store time (and asks a durable backend to
    /// re-verify its on-disk record), quarantines failures, and reports
    /// them.
    ScrubChunks {
        /// Correlation id.
        req: u64,
        /// Resume cursor: scan keys strictly greater than this.
        after: Option<crate::model::ChunkKey>,
        /// Verification budget for this request.
        max: u32,
    },
    /// Scrub batch result.
    ScrubChunksOk {
        /// Correlation id.
        req: u64,
        /// Chunks verified in this batch.
        scanned: u32,
        /// Chunks that failed verification (already quarantined locally).
        corrupt: Vec<crate::model::ChunkKey>,
        /// Cursor to resume from, or `None` when the walk wrapped.
        next: Option<crate::model::ChunkKey>,
    },
    /// Lifecycle scrubber → replication manager: `provider`'s replica of
    /// `key` failed verification and was quarantined — drop it from the
    /// placement and repair the replication degree from the surviving
    /// replicas (bypasses the deficit debounce; corruption is confirmed,
    /// not suspected).
    ReportCorrupt {
        /// The damaged chunk.
        key: crate::model::ChunkKey,
        /// The provider whose replica was quarantined.
        provider: NodeId,
    },
    /// Fault injection (tests and the E14 integrity experiment): flip a
    /// byte of the stored replica of `key`, in memory and in the durable
    /// backend's record when one exists. Never sent by production code.
    CorruptChunk {
        /// The chunk to damage.
        key: crate::model::ChunkKey,
    },
    /// Adaptive layer → version manager: forget a retired version's
    /// record (after its chunks/nodes were reclaimed).
    RetireVersion {
        /// Correlation id.
        req: u64,
        /// Target BLOB.
        blob: BlobId,
        /// Version to forget.
        version: VersionId,
    },
    /// Retire result.
    RetireVersionOk {
        /// Correlation id.
        req: u64,
        /// Whether the record existed and was removable.
        ok: bool,
    },
    /// Recovery agent → version manager: list stalled writes that are
    /// actionable (their predecessor is published, so a no-op repair can
    /// publish them).
    ListStalled {
        /// Correlation id.
        req: u64,
    },
    /// The stalled-write list.
    StalledList {
        /// Correlation id.
        req: u64,
        /// Actionable stalled writes.
        stalled: Vec<crate::vmanager::StalledWrite>,
    },
    /// Adaptive layer → version manager: list all BLOB ids.
    ListBlobs {
        /// Correlation id.
        req: u64,
    },
    /// The BLOB id list.
    BlobList {
        /// Correlation id.
        req: u64,
        /// All BLOB ids.
        blobs: Vec<BlobId>,
    },

    // ---- enforcement (security framework → BlobSeer actors) ----
    /// Refuse all service to a client.
    BlockClient {
        /// The offender.
        client: ClientId,
    },
    /// Lift a block.
    UnblockClient {
        /// The client.
        client: ClientId,
    },

    /// Extension point: higher layers (monitoring, security, adaptive)
    /// carry their own message types through the same transport.
    Ext(Box<dyn ExtPayload>),

    // ---- instrumentation (BlobSeer actors → monitoring layer) ----
    /// A batch of instrumented events.
    Probe {
        /// The instrumented node.
        origin: NodeId,
        /// When the batch was flushed at the source — monitoring records
        /// carry source timestamps, so delivery delays do not distort the
        /// observed event rates.
        at: sads_sim::SimTime,
        /// The events.
        events: Vec<ProbeEvent>,
    },
}

/// A message payload defined outside the blob crate but carried inside
/// [`Msg::Ext`] (monitoring records, security verdicts, elasticity
/// commands, …).
pub trait ExtPayload: std::any::Any + Send + std::fmt::Debug {
    /// Bytes on the wire (drives the simulated bandwidth model).
    fn wire_size(&self) -> u64 {
        0
    }
    /// Downcast support.
    fn as_any(self: Box<Self>) -> Box<dyn std::any::Any>;
    /// Borrowing downcast support.
    fn as_any_ref(&self) -> &dyn std::any::Any;
}

impl dyn ExtPayload {
    /// Downcast the boxed extension payload.
    pub fn downcast<T: ExtPayload>(self: Box<Self>) -> Result<Box<T>, Box<dyn std::any::Any>> {
        self.as_any().downcast::<T>()
    }
    /// Borrowing downcast.
    pub fn downcast_ref<T: ExtPayload>(&self) -> Option<&T> {
        self.as_any_ref().downcast_ref::<T>()
    }
}

/// Implement [`ExtPayload`] for a concrete type with an optional wire-size
/// closure.
#[macro_export]
macro_rules! impl_ext_payload {
    ($ty:ty) => {
        impl $crate::rpc::ExtPayload for $ty {
            fn as_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn as_any_ref(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
    ($ty:ty, $size:expr) => {
        impl $crate::rpc::ExtPayload for $ty {
            fn wire_size(&self) -> u64 {
                #[allow(clippy::redundant_closure_call)]
                ($size)(self)
            }
            fn as_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn as_any_ref(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
}

impl sads_sim::Message for Msg {
    fn wire_size(&self) -> u64 {
        match self {
            Msg::Ext(p) => p.wire_size(),
            Msg::PutChunk { data, .. } | Msg::GetChunkOk { data, .. } => data.len(),
            Msg::PutChunkBatch { items, .. } => {
                items.iter().map(|(_, d)| d.len() + 32).sum()
            }
            Msg::GetChunkBatch { keys, .. } => 32 * keys.len() as u64,
            Msg::GetChunkBatchOk { items, .. } => items
                .iter()
                .map(|(_, r)| 40 + r.as_ref().map(|d| d.len()).unwrap_or(0))
                .sum(),
            Msg::GetMetaRange { .. } => 64,
            Msg::ScrubChunksOk { corrupt, .. } => 48 + 32 * corrupt.len() as u64,
            Msg::VersionList { versions, snapshots, .. } => {
                40 * versions.len() as u64 + 8 * snapshots.len() as u64
            }
            Msg::GetMetaRangeOk { nodes, .. } => {
                nodes.iter().map(|(_, n)| 32 + n.wire_size()).sum()
            }
            Msg::PutMeta { nodes, .. } => nodes.iter().map(|(_, n)| n.wire_size() + 32).sum(),
            Msg::GetMetaOk { nodes, .. } => nodes
                .iter()
                .map(|(_, n)| 32 + n.as_ref().map(|n| n.wire_size()).unwrap_or(0))
                .sum(),
            Msg::GetMeta { keys, .. } | Msg::DeleteMeta { keys, .. } => 32 * keys.len() as u64,
            Msg::Probe { events, .. } => ProbeEvent::WIRE_SIZE * events.len() as u64,
            Msg::TicketOk { ticket, .. } => 128 + 32 * ticket.pending.len() as u64,
            Msg::Directory { meta_providers, data_providers, .. } => {
                8 * (meta_providers.len() + data_providers.len()) as u64
            }
            Msg::AllocOk { placement, .. } => {
                placement.iter().map(|r| 8 * r.len() as u64 + 8).sum()
            }
            _ => 0, // control messages: header overhead only
        }
    }

    fn op_name(&self) -> &'static str {
        match self {
            Msg::Register { .. } => "Register",
            Msg::Heartbeat { .. } => "Heartbeat",
            Msg::Alloc { .. } => "Alloc",
            Msg::AllocOk { .. } => "AllocOk",
            Msg::AllocErr { .. } => "AllocErr",
            Msg::GetDirectory { .. } => "GetDirectory",
            Msg::Directory { .. } => "Directory",
            Msg::SetDraining { .. } => "SetDraining",
            Msg::Deregister { .. } => "Deregister",
            Msg::PutChunk { .. } => "PutChunk",
            Msg::PutChunkBatch { .. } => "PutChunkBatch",
            Msg::PutChunkOk { .. } => "PutChunkOk",
            Msg::PutChunkErr { .. } => "PutChunkErr",
            Msg::GetChunk { .. } => "GetChunk",
            Msg::GetChunkOk { .. } => "GetChunkOk",
            Msg::GetChunkErr { .. } => "GetChunkErr",
            Msg::GetChunkBatch { .. } => "GetChunkBatch",
            Msg::GetChunkBatchOk { .. } => "GetChunkBatchOk",
            Msg::DeleteChunk { .. } => "DeleteChunk",
            Msg::DeleteChunkOk { .. } => "DeleteChunkOk",
            Msg::ReplicateChunk { .. } => "ReplicateChunk",
            Msg::ReplicateChunkOk { .. } => "ReplicateChunkOk",
            Msg::PutMeta { .. } => "PutMeta",
            Msg::PutMetaOk { .. } => "PutMetaOk",
            Msg::GetMeta { .. } => "GetMeta",
            Msg::GetMetaOk { .. } => "GetMetaOk",
            Msg::GetMetaRange { .. } => "GetMetaRange",
            Msg::GetMetaRangeOk { .. } => "GetMetaRangeOk",
            Msg::DeleteMeta { .. } => "DeleteMeta",
            Msg::DeleteMetaOk { .. } => "DeleteMetaOk",
            Msg::PatchLeaf { .. } => "PatchLeaf",
            Msg::PatchLeafOk { .. } => "PatchLeafOk",
            Msg::CreateBlob { .. } => "CreateBlob",
            Msg::CreateBlobOk { .. } => "CreateBlobOk",
            Msg::Ticket { .. } => "Ticket",
            Msg::TicketOk { .. } => "TicketOk",
            Msg::TicketErr { .. } => "TicketErr",
            Msg::Commit { .. } => "Commit",
            Msg::CommitOk { .. } => "CommitOk",
            Msg::GetVersion { .. } => "GetVersion",
            Msg::GetVersionOk { .. } => "GetVersionOk",
            Msg::GetVersionErr { .. } => "GetVersionErr",
            Msg::ListVersions { .. } => "ListVersions",
            Msg::VersionList { .. } => "VersionList",
            Msg::SnapshotVersion { .. } => "SnapshotVersion",
            Msg::SnapshotVersionOk { .. } => "SnapshotVersionOk",
            Msg::SnapshotVersionErr { .. } => "SnapshotVersionErr",
            Msg::DecommissionBlob { .. } => "DecommissionBlob",
            Msg::DecommissionBlobOk { .. } => "DecommissionBlobOk",
            Msg::ScrubChunks { .. } => "ScrubChunks",
            Msg::ScrubChunksOk { .. } => "ScrubChunksOk",
            Msg::ReportCorrupt { .. } => "ReportCorrupt",
            Msg::CorruptChunk { .. } => "CorruptChunk",
            Msg::RetireVersion { .. } => "RetireVersion",
            Msg::RetireVersionOk { .. } => "RetireVersionOk",
            Msg::ListStalled { .. } => "ListStalled",
            Msg::StalledList { .. } => "StalledList",
            Msg::ListBlobs { .. } => "ListBlobs",
            Msg::BlobList { .. } => "BlobList",
            Msg::BlockClient { .. } => "BlockClient",
            Msg::UnblockClient { .. } => "UnblockClient",
            Msg::Ext(_) => "Ext",
            Msg::Probe { .. } => "Probe",
        }
    }

    fn span_class(&self) -> sads_sim::SpanClass {
        use sads_sim::SpanClass;
        match self {
            // Bulk chunk traffic to/from data providers.
            Msg::PutChunk { .. }
            | Msg::PutChunkBatch { .. }
            | Msg::PutChunkOk { .. }
            | Msg::PutChunkErr { .. }
            | Msg::GetChunk { .. }
            | Msg::GetChunkOk { .. }
            | Msg::GetChunkErr { .. }
            | Msg::GetChunkBatch { .. }
            | Msg::GetChunkBatchOk { .. }
            | Msg::DeleteChunk { .. }
            | Msg::DeleteChunkOk { .. }
            | Msg::ReplicateChunk { .. }
            | Msg::ReplicateChunkOk { .. }
            | Msg::ScrubChunks { .. }
            | Msg::ScrubChunksOk { .. }
            | Msg::CorruptChunk { .. } => SpanClass::Store,
            // Metadata segment-tree traffic.
            Msg::PutMeta { .. }
            | Msg::PutMetaOk { .. }
            | Msg::GetMeta { .. }
            | Msg::GetMetaOk { .. }
            | Msg::GetMetaRange { .. }
            | Msg::GetMetaRangeOk { .. }
            | Msg::DeleteMeta { .. }
            | Msg::DeleteMetaOk { .. }
            | Msg::PatchLeaf { .. }
            | Msg::PatchLeafOk { .. } => SpanClass::Meta,
            // Everything else is control plane.
            _ => SpanClass::Control,
        }
    }

    fn as_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn as_any_ref(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sads_sim::Message;

    #[test]
    fn bulk_messages_report_payload_size() {
        let m = Msg::PutChunk {
            req: 1,
            client: ClientId(1),
            key: crate::model::ChunkKey {
                blob: BlobId(1),
                version: VersionId(1),
                page: 0,
            },
            data: Payload::Sim(8 << 20),
        };
        assert_eq!(m.wire_size(), 8 << 20);
        let m = Msg::Probe { origin: NodeId(1), at: sads_sim::SimTime::ZERO, events: vec![] };
        assert_eq!(m.wire_size(), 0);
        let m = Msg::PutChunkOk { req: 1 };
        assert_eq!(m.wire_size(), 0);
    }

    #[test]
    fn meta_batches_scale_with_node_count() {
        use crate::meta::{MetaNode, NodeKey, NodeRange, NodeRef};
        let key = NodeKey {
            blob: BlobId(1),
            version: VersionId(1),
            range: NodeRange::new(0, 2),
        };
        let node = MetaNode::Inner { left: NodeRef::Hole, right: NodeRef::Hole };
        let one = Msg::PutMeta { req: 1, nodes: vec![(key, node.clone())] }.wire_size();
        let two = Msg::PutMeta { req: 1, nodes: vec![(key, node.clone()), (key, node)] }
            .wire_size();
        assert_eq!(two, 2 * one);
        assert!(one > 0);
    }
}
