//! The BlobSeer server actors, written once against the runtime-agnostic
//! [`Env`] abstraction so the threaded runtime, the simulated runtime and
//! unit tests all drive identical logic.
//!
//! The five actors of the paper's §III-A:
//! * [`DataProviderService`] — stores chunk payloads,
//! * [`MetaProviderService`] — stores metadata tree nodes,
//! * [`ProviderManagerService`] — membership + allocation strategies,
//! * [`VersionManagerService`] — ticketing + ordered publication,
//! * the client (see [`crate::client`]).

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use sads_sim::{NodeId, SimDuration, SimTime};

use crate::model::{BlobId, ChunkKey, ClientId, Payload, VersionId};
use crate::pmanager::{AllocationStrategy, ProviderKind, ProviderLoad, ProviderRegistry};
use crate::probe::{Instrument, ProbeEvent, RejectReason};
use crate::provider::{ChunkStore, PutError, ReadCache, VerifyOutcome};
use crate::rpc::{ChunkErr, Msg};
use crate::storage::BackendConfig;
use crate::vmanager::VersionManagerState;

/// Everything a service may do to the outside world. Implemented by the
/// simulated runtime (over `sads_sim::Ctx`) and the threaded runtime.
pub trait Env {
    /// This node's address.
    fn id(&self) -> NodeId;
    /// Current time (virtual or wall-clock nanoseconds since start).
    fn now(&self) -> SimTime;
    /// Send a message.
    fn send(&mut self, to: NodeId, msg: Msg);
    /// Send a transport-level control reply (connection refusal) that is
    /// not subject to this node's send-buffer backlog. Defaults to a
    /// plain send; the simulated runtime gives it an expedited path.
    fn send_expedited(&mut self, to: NodeId, msg: Msg) {
        self.send(to, msg);
    }
    /// Arm a one-shot timer.
    fn set_timer(&mut self, delay: SimDuration, token: u64);
    /// Deterministic RNG.
    fn rng(&mut self) -> &mut SmallRng;
    /// Record a time-series metric observation (optional).
    fn record(&mut self, _name: &str, _value: f64) {}
    /// Increment a counter metric (optional).
    fn incr(&mut self, _name: &str, _delta: u64) {}
    /// The span sink, when tracing is enabled for this deployment
    /// (optional; `None` disables all span recording).
    fn span_sink(&self) -> Option<std::sync::Arc<sads_sim::SpanSink>> {
        None
    }
    /// Causal context of the message being handled (set by the runtime
    /// from the delivery envelope, or by protocol roots).
    fn trace_ctx(&self) -> Option<sads_sim::TraceCtx> {
        None
    }
    /// Override the ambient causal context for subsequent sends (used by
    /// operation roots and by state machines resumed from timers).
    fn set_trace_ctx(&mut self, _trace: Option<sads_sim::TraceCtx>) {}
    /// The live telemetry registry, when enabled for this deployment
    /// (optional; `None` disables direct instrumentation and the
    /// runtimes' metric-bridge mirroring).
    fn telemetry(&self) -> Option<std::sync::Arc<sads_sim::Registry>> {
        None
    }
    /// How far behind this node's ingress path is (seconds of accepted
    /// but not yet handled transfer time), when the runtime can observe
    /// it (optional). Feeds the `node.queue_depth_seconds` gauge.
    fn queue_depth_seconds(&self) -> f64 {
        0.0
    }
}

/// Refresh the runtime-agnostic per-node telemetry every service writes
/// from its periodic tick: the heartbeat gauge behind the health model
/// (staleness ⇒ Degraded/Down in both runtimes, since crashes stop the
/// timers that drive this) and the ingress queue-depth gauge the SLO
/// burn-rate rules watch.
fn telemetry_heartbeat(env: &mut dyn Env) {
    let Some(reg) = env.telemetry() else { return };
    let node = env.id().0.to_string();
    let labels = [("node", node.as_str())];
    reg.set(sads_sim::HEARTBEAT_GAUGE, &labels, env.now().as_secs_f64());
    reg.set("node.queue_depth_seconds", &labels, env.queue_depth_seconds());
}

/// A runnable BlobSeer service: the state-machine interface both runtimes
/// drive.
pub trait Service: Send {
    /// Stable service name, used as the span `service` label when the
    /// runtime traces message handling.
    fn name(&self) -> &'static str {
        "service"
    }
    /// Called once when the node starts.
    fn on_start(&mut self, _env: &mut dyn Env) {}
    /// A message arrived.
    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg);
    /// A timer fired.
    fn on_timer(&mut self, _env: &mut dyn Env, _token: u64) {}

    /// Optional post-run inspection hook (see `sads_sim::Actor::as_any`).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Timer token: provider heartbeat.
pub const TOKEN_HEARTBEAT: u64 = u64::MAX;
/// Timer token: instrumentation flush.
pub const TOKEN_INSTR: u64 = u64::MAX - 1;
/// Timer token: provider-manager registry expiry sweep.
pub const TOKEN_EXPIRE: u64 = u64::MAX - 2;
/// Timer token: version-manager stalled-ticket sweep.
pub const TOKEN_STALL: u64 = u64::MAX - 3;

/// Shared service wiring: where the managers live, whether instrumentation
/// is on, the periodic intervals, and which storage backend data
/// providers persist through.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Monitoring service receiving this node's probe batches (`None`
    /// disables the instrumentation layer).
    pub monitor: Option<NodeId>,
    /// Heartbeat period for providers.
    pub heartbeat_every: SimDuration,
    /// Instrumentation flush period.
    pub instr_flush_every: SimDuration,
    /// Nominal NIC bandwidth (bytes/s) used to normalize the provider's
    /// synthetic CPU/utilization signal.
    pub nic_bandwidth: u64,
    /// Capacity (in chunks) of the data provider's hot-chunk read cache
    /// fronting the store on the GET path. `0` disables it. Safe by
    /// construction: chunks are immutable once written, so cached entries
    /// can never go stale (see [`crate::provider::ReadCache`]).
    pub read_cache_chunks: usize,
    /// Durable chunk backend for the data provider's store. The default
    /// [`BackendConfig::Memory`] keeps the historical crash-loses-all
    /// semantics; [`BackendConfig::Disk`] makes a restarted provider
    /// recover and re-announce its chunks (see [`crate::storage`]).
    pub backend: BackendConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            monitor: None,
            heartbeat_every: SimDuration::from_secs(1),
            instr_flush_every: SimDuration::from_secs(1),
            nic_bandwidth: 125_000_000,
            read_cache_chunks: 128,
            backend: BackendConfig::Memory,
        }
    }
}

fn flush_instr(instr: &mut Instrument, cfg: &ServiceConfig, env: &mut dyn Env) {
    if instr.buffered() == 0 {
        return;
    }
    if let Some(mon) = cfg.monitor {
        let events = instr.drain();
        let origin = env.id();
        let at = env.now();
        env.send(mon, Msg::Probe { origin, at, events });
    } else {
        instr.drain();
    }
}

// ---------------------------------------------------------------------
// Data provider
// ---------------------------------------------------------------------

/// Stores chunk replicas; enforces security blocks; reports load.
pub struct DataProviderService {
    pman: NodeId,
    cfg: ServiceConfig,
    store: ChunkStore,
    /// Hot-chunk LRU fronting the store on GETs. Immutable chunks make it
    /// coherence-free; `ChunkStore::touch` keeps heat accounting intact.
    read_cache: ReadCache,
    blacklist: HashSet<ClientId>,
    instr: Instrument,
    ops_since_hb: u64,
    bytes_since_hb: u64,
    /// In-flight replication relays: our PutChunk req → (manager, its req).
    relays: HashMap<u64, (NodeId, u64)>,
    next_req: u64,
    /// Chunks recovered from the durable backend at construction,
    /// awaiting re-announcement in `on_start` (key, bytes).
    recovered: Vec<(ChunkKey, u64)>,
    /// Records the backend quarantined during recovery (CRC mismatches).
    recovery_quarantined: u64,
}

impl DataProviderService {
    /// A provider with `capacity` bytes of chunk storage, managed by
    /// `pman`. Opens the backend named by `cfg.backend`; whatever it
    /// recovers is re-announced to the monitoring plane in
    /// [`Service::on_start`].
    pub fn new(pman: NodeId, capacity: u64, cfg: ServiceConfig) -> Self {
        let (store, report) = ChunkStore::open(capacity, &cfg.backend, SimTime(0));
        let recovered = report.chunks.iter().map(|(k, p)| (*k, p.len())).collect();
        DataProviderService {
            pman,
            store,
            read_cache: ReadCache::new(cfg.read_cache_chunks),
            blacklist: HashSet::new(),
            instr: Instrument::new(cfg.monitor.is_some()),
            ops_since_hb: 0,
            bytes_since_hb: 0,
            relays: HashMap::new(),
            next_req: 1,
            recovered,
            recovery_quarantined: report.quarantined,
            cfg,
        }
    }

    /// The underlying chunk store (tests, decommission drains).
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// The read cache (tests).
    pub fn read_cache(&self) -> &ReadCache {
        &self.read_cache
    }

    /// Serve one chunk from the read cache or the store. A cache hit
    /// still updates the store's access accounting (`touch`), so the heat
    /// signal the removal strategies see is unchanged; a store hit
    /// promotes the chunk into the cache. Returns the payload and whether
    /// the cache served it.
    fn fetch_chunk(&mut self, key: &ChunkKey, now: SimTime) -> Option<(Payload, bool)> {
        if let Some(data) = self.read_cache.get(key) {
            self.store.touch(key, now);
            return Some((data, true));
        }
        let data = self.store.get(key, now)?;
        self.read_cache.insert(*key, data.clone());
        Some((data, false))
    }

    fn heartbeat(&mut self, env: &mut dyn Env) {
        let load = ProviderLoad {
            used: self.store.used(),
            items: self.store.len() as u64,
            recent_ops: self.ops_since_hb,
            fill: self.store.fill_ratio(),
        };
        env.send(self.pman, Msg::Heartbeat { load });
        // Synthetic physical parameters for the introspection layer: CPU
        // tracks NIC utilization (bytes moved over the heartbeat window
        // against the nominal bandwidth), memory tracks storage fill.
        let window = self.cfg.heartbeat_every.as_secs_f64().max(1e-9);
        let cpu = (self.bytes_since_hb as f64 / window / self.cfg.nic_bandwidth.max(1) as f64)
            .min(1.0);
        let mem = self.store.fill_ratio();
        self.instr.emit(ProbeEvent::ProviderLoad {
            provider: env.id(),
            used: self.store.used(),
            capacity: self.store.capacity(),
            items: self.store.len() as u64,
            recent_ops: self.ops_since_hb,
            cpu,
            mem,
        });
        telemetry_heartbeat(env);
        // Piggyback backend maintenance on the heartbeat tick: compaction
        // only runs when a sealed segment crossed its dead-byte
        // threshold, so this is free for the memory backend.
        let reclaimed = self.store.maybe_compact();
        if reclaimed > 0 {
            env.incr("provider.compacted_bytes", reclaimed);
        }
        if let Some(reg) = env.telemetry() {
            let node = env.id().0.to_string();
            let labels = [("node", node.as_str())];
            reg.set("provider.chunks", &labels, self.store.len() as f64);
            reg.set("provider.store_bytes", &labels, self.store.used() as f64);
            reg.set("provider.fill", &labels, self.store.fill_ratio());
            reg.set("provider.cache_evictions", &labels, self.read_cache.evictions() as f64);
            let bs = self.store.backend_stats();
            reg.set("provider.backend_dead_bytes", &labels, bs.dead_bytes as f64);
            reg.set("provider.backend_segments", &labels, bs.segments as f64);
        }
        self.ops_since_hb = 0;
        self.bytes_since_hb = 0;
        env.set_timer(self.cfg.heartbeat_every, TOKEN_HEARTBEAT);
    }
}

impl Service for DataProviderService {
    fn name(&self) -> &'static str {
        "provider"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        env.send(
            self.pman,
            Msg::Register { kind: ProviderKind::Data, capacity: self.store.capacity() },
        );
        // Re-announce chunks the durable backend recovered: the probes
        // flow through the monitoring pipeline to the replication
        // manager, which re-learns placement instead of seeing a deficit
        // and scheduling repair traffic.
        if !self.recovered.is_empty() {
            let provider = env.id();
            let count = self.recovered.len() as u64;
            let mut bytes = 0;
            for (key, len) in self.recovered.drain(..) {
                self.instr.emit(ProbeEvent::ChunkRecovered { provider, key, bytes: len });
                bytes += len;
            }
            env.incr("provider.recovered_chunks", count);
            env.incr("provider.recovered_bytes", bytes);
        }
        if self.recovery_quarantined > 0 {
            env.incr("provider.quarantined_chunks", self.recovery_quarantined);
        }
        env.set_timer(self.cfg.heartbeat_every, TOKEN_HEARTBEAT);
        if self.cfg.monitor.is_some() {
            env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
        }
    }

    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg) {
        match msg {
            Msg::PutChunk { req, client, key, data } => {
                self.ops_since_hb += 1;
                self.bytes_since_hb += data.len();
                if self.blacklist.contains(&client) {
                    self.instr.emit(ProbeEvent::ChunkRejected {
                        provider: env.id(),
                        client,
                        reason: RejectReason::Blocked,
                    });
                    env.send_expedited(from, Msg::PutChunkErr { req, err: ChunkErr::Blocked });
                    return;
                }
                let bytes = data.len();
                match self.store.put(key, data, env.now()) {
                    Ok(()) => {
                        // SYSTEM puts are replication repair relays —
                        // exactly the traffic a durable restart avoids.
                        if client == ClientId::SYSTEM {
                            env.incr("provider.repair_chunks", 1);
                            env.incr("provider.repair_bytes", bytes);
                        }
                        self.instr.emit(ProbeEvent::ChunkWritten {
                            provider: env.id(),
                            client,
                            key,
                            bytes,
                        });
                        env.send(from, Msg::PutChunkOk { req });
                    }
                    Err(PutError::Full) => {
                        self.instr.emit(ProbeEvent::ChunkRejected {
                            provider: env.id(),
                            client,
                            reason: RejectReason::Full,
                        });
                        env.send(from, Msg::PutChunkErr { req, err: ChunkErr::Full });
                    }
                }
            }
            Msg::PutChunkBatch { req, client, items } => {
                // Accounting mirrors the per-chunk path: one op and one
                // probe event per chunk, so load reports and the security
                // detectors see the same totals either way.
                self.ops_since_hb += items.len() as u64;
                if self.blacklist.contains(&client) {
                    self.instr.emit(ProbeEvent::ChunkRejected {
                        provider: env.id(),
                        client,
                        reason: RejectReason::Blocked,
                    });
                    env.send_expedited(from, Msg::PutChunkErr { req, err: ChunkErr::Blocked });
                    return;
                }
                for (key, data) in items {
                    let bytes = data.len();
                    self.bytes_since_hb += bytes;
                    match self.store.put(key, data, env.now()) {
                        Ok(()) => {
                            if client == ClientId::SYSTEM {
                                env.incr("provider.repair_chunks", 1);
                                env.incr("provider.repair_bytes", bytes);
                            }
                            self.instr.emit(ProbeEvent::ChunkWritten {
                                provider: env.id(),
                                client,
                                key,
                                bytes,
                            });
                        }
                        Err(PutError::Full) => {
                            self.instr.emit(ProbeEvent::ChunkRejected {
                                provider: env.id(),
                                client,
                                reason: RejectReason::Full,
                            });
                            env.send(from, Msg::PutChunkErr { req, err: ChunkErr::Full });
                            return;
                        }
                    }
                }
                env.send(from, Msg::PutChunkOk { req });
            }
            Msg::GetChunk { req, client, key } => {
                self.ops_since_hb += 1;
                env.incr("provider.reads", 1);
                if self.blacklist.contains(&client) {
                    self.instr.emit(ProbeEvent::ChunkRejected {
                        provider: env.id(),
                        client,
                        reason: RejectReason::Blocked,
                    });
                    env.send_expedited(from, Msg::GetChunkErr { req, err: ChunkErr::Blocked });
                    return;
                }
                match self.fetch_chunk(&key, env.now()) {
                    Some((data, cached)) => {
                        self.bytes_since_hb += data.len();
                        if cached {
                            env.incr("provider.cache_hits", 1);
                        } else {
                            env.incr("provider.cache_misses", 1);
                        }
                        self.instr.emit(ProbeEvent::ChunkRead {
                            provider: env.id(),
                            client,
                            key,
                            bytes: data.len(),
                            hit: true,
                        });
                        env.send(from, Msg::GetChunkOk { req, data });
                    }
                    None => {
                        self.instr.emit(ProbeEvent::ChunkRead {
                            provider: env.id(),
                            client,
                            key,
                            bytes: 0,
                            hit: false,
                        });
                        env.send(from, Msg::GetChunkErr { req, err: ChunkErr::NotFound });
                    }
                }
            }
            Msg::GetChunkBatch { req, client, keys } => {
                // Accounting mirrors the per-chunk path: one op and one
                // probe event per chunk, so load reports and the security
                // detectors see identical totals either way.
                self.ops_since_hb += keys.len() as u64;
                env.incr("provider.reads", keys.len() as u64);
                if self.blacklist.contains(&client) {
                    self.instr.emit(ProbeEvent::ChunkRejected {
                        provider: env.id(),
                        client,
                        reason: RejectReason::Blocked,
                    });
                    // Whole-batch refusal: a block applies to the client,
                    // not to individual chunks.
                    env.send_expedited(from, Msg::GetChunkErr { req, err: ChunkErr::Blocked });
                    return;
                }
                let now = env.now();
                let mut items = Vec::with_capacity(keys.len());
                for key in keys {
                    match self.fetch_chunk(&key, now) {
                        Some((data, cached)) => {
                            self.bytes_since_hb += data.len();
                            if cached {
                                env.incr("provider.cache_hits", 1);
                            } else {
                                env.incr("provider.cache_misses", 1);
                            }
                            self.instr.emit(ProbeEvent::ChunkRead {
                                provider: env.id(),
                                client,
                                key,
                                bytes: data.len(),
                                hit: true,
                            });
                            items.push((key, Ok(data)));
                        }
                        None => {
                            self.instr.emit(ProbeEvent::ChunkRead {
                                provider: env.id(),
                                client,
                                key,
                                bytes: 0,
                                hit: false,
                            });
                            items.push((key, Err(ChunkErr::NotFound)));
                        }
                    }
                }
                env.send(from, Msg::GetChunkBatchOk { req, items });
            }
            Msg::DeleteChunk { req, key } => {
                let existed = self.store.delete(&key).is_some();
                self.read_cache.remove(&key);
                env.send(from, Msg::DeleteChunkOk { req, existed });
            }
            Msg::ScrubChunks { req, after, max } => {
                let budget = (max as usize).max(1);
                let keys = self.store.keys_after(after, budget);
                // A short batch means the walk reached the end of the
                // store; the scrubber restarts from the top next pass.
                let next = if keys.len() < budget { None } else { keys.last().copied() };
                let mut corrupt = Vec::new();
                for key in &keys {
                    if self.store.verify(key) == Some(VerifyOutcome::Corrupt) {
                        self.store.quarantine(key);
                        self.read_cache.remove(key);
                        corrupt.push(*key);
                    }
                }
                env.incr("provider.scrubbed_chunks", keys.len() as u64);
                if !corrupt.is_empty() {
                    env.incr("provider.quarantined_chunks", corrupt.len() as u64);
                }
                env.send(
                    from,
                    Msg::ScrubChunksOk { req, scanned: keys.len() as u32, corrupt, next },
                );
            }
            Msg::CorruptChunk { key } => {
                // Fault injection only (tests, E14): damage the stored
                // replica so the next scrub pass has something to find.
                self.store.inject_corruption(&key);
                self.read_cache.remove(&key);
            }
            Msg::ReplicateChunk { req, key, to } => {
                match self.store.peek(&key) {
                    Some(data) => {
                        let relay = self.next_req;
                        self.next_req += 1;
                        self.relays.insert(relay, (from, req));
                        env.send(
                            to,
                            Msg::PutChunk { req: relay, client: ClientId::SYSTEM, key, data },
                        );
                    }
                    None => env.send(from, Msg::ReplicateChunkOk { req, ok: false }),
                }
            }
            Msg::PutChunkOk { req } => {
                if let Some((mgr, mreq)) = self.relays.remove(&req) {
                    env.send(mgr, Msg::ReplicateChunkOk { req: mreq, ok: true });
                }
            }
            Msg::PutChunkErr { req, .. } => {
                if let Some((mgr, mreq)) = self.relays.remove(&req) {
                    env.send(mgr, Msg::ReplicateChunkOk { req: mreq, ok: false });
                }
            }
            Msg::BlockClient { client } => {
                self.blacklist.insert(client);
            }
            Msg::UnblockClient { client } => {
                self.blacklist.remove(&client);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        match token {
            TOKEN_HEARTBEAT => self.heartbeat(env),
            TOKEN_INSTR => {
                flush_instr(&mut self.instr, &self.cfg, env);
                env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Metadata provider
// ---------------------------------------------------------------------

/// Stores metadata tree nodes.
pub struct MetaProviderService {
    pman: NodeId,
    cfg: ServiceConfig,
    store: crate::meta::MetaStore,
    instr: Instrument,
    ops_since_hb: u64,
    capacity: u64,
}

impl MetaProviderService {
    /// A metadata provider with a nominal `capacity` (bytes) for load
    /// reporting.
    pub fn new(pman: NodeId, capacity: u64, cfg: ServiceConfig) -> Self {
        MetaProviderService {
            pman,
            store: crate::meta::MetaStore::new(),
            instr: Instrument::new(cfg.monitor.is_some()),
            ops_since_hb: 0,
            capacity,
            cfg,
        }
    }

    /// The node map (tests).
    pub fn store(&self) -> &crate::meta::MetaStore {
        &self.store
    }
}

impl Service for MetaProviderService {
    fn name(&self) -> &'static str {
        "meta"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        env.send(
            self.pman,
            Msg::Register { kind: ProviderKind::Metadata, capacity: self.capacity },
        );
        env.set_timer(self.cfg.heartbeat_every, TOKEN_HEARTBEAT);
        if self.cfg.monitor.is_some() {
            env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
        }
    }

    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg) {
        match msg {
            Msg::PutMeta { req, nodes } => {
                self.ops_since_hb += 1;
                let count = nodes.len() as u32;
                for (k, n) in nodes {
                    self.store.put(k, n);
                }
                self.instr.emit(ProbeEvent::MetaWritten { provider: env.id(), nodes: count });
                env.send(from, Msg::PutMetaOk { req });
            }
            Msg::GetMeta { req, keys } => {
                self.ops_since_hb += 1;
                self.instr.emit(ProbeEvent::MetaRead {
                    provider: env.id(),
                    nodes: keys.len() as u32,
                });
                let nodes = keys
                    .into_iter()
                    .map(|k| {
                        let n = self.store.get(&k).cloned();
                        (k, n)
                    })
                    .collect();
                env.send(from, Msg::GetMetaOk { req, nodes });
            }
            Msg::GetMetaRange { req, blob, version, query, after, max_nodes } => {
                self.ops_since_hb += 1;
                let (nodes, more) = self.store.range_cover(
                    blob,
                    version,
                    &query,
                    after,
                    (max_nodes as usize).max(1),
                );
                self.instr.emit(ProbeEvent::MetaRead {
                    provider: env.id(),
                    nodes: nodes.len() as u32,
                });
                env.send(from, Msg::GetMetaRangeOk { req, nodes, more });
            }
            Msg::DeleteMeta { req, keys } => {
                let mut removed = 0;
                for k in &keys {
                    if self.store.remove(k) {
                        removed += 1;
                    }
                }
                env.send(from, Msg::DeleteMetaOk { req, removed });
            }
            Msg::PatchLeaf { req, key, replicas } => {
                let ok = self.store.patch_leaf(&key, replicas);
                env.send(from, Msg::PatchLeafOk { req, ok });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        match token {
            TOKEN_HEARTBEAT => {
                let load = ProviderLoad {
                    used: self.store.bytes(),
                    items: self.store.len() as u64,
                    recent_ops: self.ops_since_hb,
                    fill: if self.capacity == 0 {
                        0.0
                    } else {
                        self.store.bytes() as f64 / self.capacity as f64
                    },
                };
                env.send(self.pman, Msg::Heartbeat { load });
                telemetry_heartbeat(env);
                if let Some(reg) = env.telemetry() {
                    let node = env.id().0.to_string();
                    let labels = [("node", node.as_str())];
                    reg.set("meta.tree_nodes", &labels, self.store.len() as f64);
                    reg.set("meta.store_bytes", &labels, self.store.bytes() as f64);
                }
                self.ops_since_hb = 0;
                env.set_timer(self.cfg.heartbeat_every, TOKEN_HEARTBEAT);
            }
            TOKEN_INSTR => {
                flush_instr(&mut self.instr, &self.cfg, env);
                env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Provider manager
// ---------------------------------------------------------------------

/// Membership registry + allocation strategy host.
pub struct ProviderManagerService {
    registry: ProviderRegistry,
    strategy: Box<dyn AllocationStrategy>,
    /// Heartbeat expiry: providers silent for this long are expelled.
    expiry: SimDuration,
    sweep_every: SimDuration,
}

impl ProviderManagerService {
    /// A provider manager using the given allocation strategy.
    pub fn new(strategy: Box<dyn AllocationStrategy>) -> Self {
        ProviderManagerService {
            registry: ProviderRegistry::new(),
            strategy,
            expiry: SimDuration::from_secs(5),
            sweep_every: SimDuration::from_secs(2),
        }
    }

    /// Override failure-detection timing.
    pub fn with_expiry(mut self, expiry: SimDuration, sweep_every: SimDuration) -> Self {
        self.expiry = expiry;
        self.sweep_every = sweep_every;
        self
    }

    /// The registry (tests, adaptive layer co-located inspection).
    pub fn registry(&self) -> &ProviderRegistry {
        &self.registry
    }

    fn directory(&self) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut meta: Vec<NodeId> =
            self.registry.of_kind(ProviderKind::Metadata).map(|p| p.node).collect();
        meta.sort();
        let mut data: Vec<NodeId> =
            self.registry.of_kind(ProviderKind::Data).map(|p| p.node).collect();
        data.sort();
        (meta, data)
    }
}

impl Service for ProviderManagerService {
    fn name(&self) -> &'static str {
        "pman"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        env.set_timer(self.sweep_every, TOKEN_EXPIRE);
    }

    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg) {
        match msg {
            Msg::Register { kind, capacity } => {
                self.registry.register(from, kind, capacity, env.now());
            }
            Msg::Heartbeat { load } => {
                self.registry.heartbeat(from, load, env.now());
            }
            Msg::Alloc { req, client: _, chunks, replication, chunk_size } => {
                let placement = self.strategy.allocate(
                    &self.registry,
                    chunks,
                    replication,
                    chunk_size,
                    env.rng(),
                );
                match placement {
                    Some(placement) => {
                        for replicas in &placement {
                            for node in replicas {
                                self.registry.reserve(*node, chunk_size);
                            }
                        }
                        env.incr("pman.allocs", 1);
                        env.send(from, Msg::AllocOk { req, placement });
                    }
                    None => {
                        env.incr("pman.alloc_failures", 1);
                        let available =
                            self.registry.allocatable(ProviderKind::Data).len() as u32;
                        env.send(from, Msg::AllocErr { req, available });
                    }
                }
            }
            Msg::GetDirectory { req } => {
                let (meta_providers, data_providers) = self.directory();
                env.send(from, Msg::Directory { req, meta_providers, data_providers });
            }
            Msg::SetDraining { provider, draining } => {
                self.registry.set_draining(provider, draining);
            }
            Msg::Deregister { provider } => {
                self.registry.remove(provider);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        if token == TOKEN_EXPIRE {
            let dead = self.registry.expire(env.now(), self.expiry);
            if !dead.is_empty() {
                env.incr("pman.expired", dead.len() as u64);
            }
            env.record(
                "pman.data_providers",
                self.registry.count(ProviderKind::Data) as f64,
            );
            telemetry_heartbeat(env);
            if let Some(reg) = env.telemetry() {
                reg.set(
                    "pool.data_providers",
                    &[],
                    self.registry.count(ProviderKind::Data) as f64,
                );
                reg.set(
                    "pool.meta_providers",
                    &[],
                    self.registry.count(ProviderKind::Metadata) as f64,
                );
            }
            env.set_timer(self.sweep_every, TOKEN_EXPIRE);
        }
    }
}

// ---------------------------------------------------------------------
// Version manager
// ---------------------------------------------------------------------

/// Ticketing + strictly ordered publication + enforcement of client
/// blocks on the control path.
pub struct VersionManagerService {
    state: VersionManagerState,
    blacklist: HashSet<ClientId>,
    instr: Instrument,
    cfg: ServiceConfig,
    /// Commit waiters: who to notify when a version publishes.
    waiters: HashMap<(BlobId, VersionId), (NodeId, u64)>,
    stall_timeout: SimDuration,
}

impl VersionManagerService {
    /// A fresh version manager.
    pub fn new(cfg: ServiceConfig) -> Self {
        VersionManagerService {
            state: VersionManagerState::new(),
            blacklist: HashSet::new(),
            instr: Instrument::new(cfg.monitor.is_some()),
            cfg,
            waiters: HashMap::new(),
            stall_timeout: SimDuration::from_secs(60),
        }
    }

    /// Override how long an uncommitted ticket may sit before counting as
    /// stalled.
    pub fn with_stall_timeout(mut self, timeout: SimDuration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// The underlying state (tests, removal strategies co-located).
    pub fn state(&self) -> &VersionManagerState {
        &self.state
    }

    /// Mutable state access (removal strategies).
    pub fn state_mut(&mut self) -> &mut VersionManagerState {
        &mut self.state
    }
}

impl Service for VersionManagerService {
    fn name(&self) -> &'static str {
        "vmanager"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        env.set_timer(SimDuration::from_secs(10), TOKEN_STALL);
        if self.cfg.monitor.is_some() {
            env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
        }
    }

    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg) {
        match msg {
            Msg::CreateBlob { req, client: _, spec } => {
                let blob = self.state.create_blob(spec, env.now());
                env.send(from, Msg::CreateBlobOk { req, blob });
            }
            Msg::Ticket { req, client, blob, kind, len } => {
                if self.blacklist.contains(&client) {
                    self.instr.emit(ProbeEvent::TicketRejected { client, blob, blocked: true });
                    env.send(
                        from,
                        Msg::TicketErr { req, err: crate::model::BlobError::Blocked(client) },
                    );
                    return;
                }
                match self.state.ticket(blob, kind, len, client, env.now()) {
                    Ok(ticket) => {
                        self.instr.emit(ProbeEvent::TicketIssued {
                            client,
                            blob,
                            version: ticket.version,
                            offset: ticket.offset,
                            len: ticket.len,
                        });
                        env.incr("vman.tickets", 1);
                        env.send(from, Msg::TicketOk { req, ticket });
                    }
                    Err(err) => {
                        self.instr.emit(ProbeEvent::TicketRejected {
                            client,
                            blob,
                            blocked: false,
                        });
                        env.send(from, Msg::TicketErr { req, err });
                    }
                }
            }
            Msg::Commit { req, client: _, blob, version, root, size } => {
                self.waiters.insert((blob, version), (from, req));
                match self.state.commit(blob, version, root, size, env.now()) {
                    Ok(published) => {
                        for (v, writer) in published {
                            env.incr("vman.published", 1);
                            self.instr.emit(ProbeEvent::VersionPublished {
                                blob,
                                version: v,
                                size: self
                                    .state
                                    .blob(blob)
                                    .and_then(|b| b.version(v))
                                    .map(|r| r.size)
                                    .unwrap_or(0),
                                writer,
                            });
                            if let Some((node, wreq)) = self.waiters.remove(&(blob, v)) {
                                env.send(node, Msg::CommitOk { req: wreq, version: v });
                            }
                        }
                    }
                    Err(err) => {
                        self.waiters.remove(&(blob, version));
                        env.send(from, Msg::TicketErr { req, err });
                    }
                }
            }
            Msg::GetVersion { req, client, blob, version } => {
                if self.blacklist.contains(&client) {
                    env.send(
                        from,
                        Msg::GetVersionErr {
                            req,
                            err: crate::model::BlobError::Blocked(client),
                        },
                    );
                    return;
                }
                let res = match version {
                    Some(v) => self.state.version_info(blob, v),
                    None => self.state.latest_info(blob),
                };
                match res {
                    Ok(info) => env.send(from, Msg::GetVersionOk { req, info }),
                    Err(err) => env.send(from, Msg::GetVersionErr { req, err }),
                }
            }
            Msg::BlockClient { client } => {
                self.blacklist.insert(client);
            }
            Msg::UnblockClient { client } => {
                self.blacklist.remove(&client);
            }
            Msg::ListBlobs { req } => {
                env.send(from, Msg::BlobList { req, blobs: self.state.blob_ids() });
            }
            Msg::ListStalled { req } => {
                let stalled = self.state.actionable_stalled(env.now(), self.stall_timeout);
                env.send(from, Msg::StalledList { req, stalled });
            }
            Msg::ListVersions { req, blob } => {
                let (page_size, versions) = match self.state.blob(blob) {
                    Some(st) => (
                        st.spec.page_size,
                        st.versions()
                            .map(|v| crate::vmanager::VersionSummary {
                                version: v.version,
                                size: v.size,
                                interval: v.interval,
                                published_at: v.published_at,
                            })
                            .collect(),
                    ),
                    None => (0, vec![]),
                };
                let (snapshots, decommissioned) = self
                    .state
                    .blob(blob)
                    .map(|st| (st.snapshots(), st.is_decommissioned()))
                    .unwrap_or((vec![], false));
                env.send(
                    from,
                    Msg::VersionList { req, blob, page_size, versions, snapshots, decommissioned },
                );
            }
            Msg::SnapshotVersion { req, client, blob, version } => {
                if self.blacklist.contains(&client) {
                    env.send(
                        from,
                        Msg::SnapshotVersionErr {
                            req,
                            err: crate::model::BlobError::Blocked(client),
                        },
                    );
                    return;
                }
                let Some(st) = self.state.blob_mut(blob) else {
                    env.send(
                        from,
                        Msg::SnapshotVersionErr {
                            req,
                            err: crate::model::BlobError::UnknownBlob(blob),
                        },
                    );
                    return;
                };
                let v = version.unwrap_or(st.latest().version);
                if st.snapshot(v) {
                    env.incr("vman.snapshots", 1);
                    env.send(from, Msg::SnapshotVersionOk { req, version: v });
                } else {
                    env.send(
                        from,
                        Msg::SnapshotVersionErr {
                            req,
                            err: crate::model::BlobError::UnknownVersion(blob, v),
                        },
                    );
                }
            }
            Msg::DecommissionBlob { req, client, blob } => {
                if self.blacklist.contains(&client) {
                    env.send(from, Msg::DecommissionBlobOk { req, ok: false });
                    return;
                }
                let ok = match self.state.blob_mut(blob) {
                    Some(st) => {
                        st.decommission();
                        true
                    }
                    None => false,
                };
                if ok {
                    env.incr("vman.decommissions", 1);
                }
                env.send(from, Msg::DecommissionBlobOk { req, ok });
            }
            Msg::RetireVersion { req, blob, version } => {
                let ok = self
                    .state
                    .blob_mut(blob)
                    .map(|st| st.forget_version(version))
                    .unwrap_or(false);
                env.send(from, Msg::RetireVersionOk { req, ok });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        match token {
            TOKEN_STALL => {
                let stalled = self.state.stalled_tickets(env.now(), self.stall_timeout);
                if !stalled.is_empty() {
                    env.record("vman.stalled_writes", stalled.len() as f64);
                }
                telemetry_heartbeat(env);
                if let Some(reg) = env.telemetry() {
                    let node = env.id().0.to_string();
                    let labels = [("node", node.as_str())];
                    reg.set("vman.blobs", &labels, self.state.blob_ids().len() as f64);
                    reg.set("vman.stalled_tickets", &labels, stalled.len() as f64);
                }
                env.set_timer(SimDuration::from_secs(10), TOKEN_STALL);
            }
            TOKEN_INSTR => {
                flush_instr(&mut self.instr, &self.cfg, env);
                env.set_timer(self.cfg.instr_flush_every, TOKEN_INSTR);
            }
            _ => {}
        }
    }
}
