//! Distributed versioned metadata: the segment-tree algorithm
//! ([`tree`]) and the metadata-provider storage/partitioning ([`store`]).

pub mod store;
pub mod tree;

pub use store::{node_key_hash, partition, MetaStore};
pub use tree::{
    created_ranges, BaseSnapshot, MetaNode, NodeKey, NodeRange, NodeRef, PageSource,
    PendingWrite, TreeBuilder, TreeReader,
};
