//! Metadata provider storage: the node map one metadata provider holds,
//! and the static partitioning function that maps node keys onto the
//! metadata provider ring.
//!
//! BlobSeer distributes tree nodes over a set of metadata providers using
//! consistent key hashing; clients compute the owner locally from the key,
//! so no directory lookup is needed on the metadata path.

use std::collections::HashMap;

use crate::meta::tree::{MetaNode, NodeKey};

/// Deterministic 64-bit mix of a node key (SplitMix64-style finalizer).
/// Used for partitioning; stability across runs matters for the
/// deterministic simulator, so we do not use `std`'s randomized hasher.
pub fn node_key_hash(key: &NodeKey) -> u64 {
    let mut h = key
        .blob
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.version.0.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(key.range.start.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(key.range.len);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Index of the metadata provider that owns `key`, out of `n` providers.
pub fn partition(key: &NodeKey, n: usize) -> usize {
    debug_assert!(n > 0, "at least one metadata provider");
    (node_key_hash(key) % n as u64) as usize
}

/// The node map held by one metadata provider.
///
/// Nodes are immutable once written (versions are immutable), so `put` of
/// an existing key is idempotent: retransmitted writes are accepted and
/// the stored value kept.
#[derive(Debug, Default)]
pub struct MetaStore {
    nodes: HashMap<NodeKey, MetaNode>,
    bytes: u64,
}

impl MetaStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a node. Returns `false` if the key already existed (the
    /// stored node is kept — nodes are immutable, so any retransmission
    /// carries identical content).
    pub fn put(&mut self, key: NodeKey, node: MetaNode) -> bool {
        match self.nodes.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                self.bytes += node.wire_size();
                e.insert(node);
                true
            }
        }
    }

    /// Fetch a node.
    pub fn get(&self, key: &NodeKey) -> Option<&MetaNode> {
        self.nodes.get(key)
    }

    /// Remove a node (used by the data-removal strategies when reclaiming
    /// whole versions). Returns whether it existed.
    pub fn remove(&mut self, key: &NodeKey) -> bool {
        if let Some(n) = self.nodes.remove(key) {
            self.bytes -= n.wire_size();
            true
        } else {
            false
        }
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate bytes held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Iterate all keys (used by removal sweeps).
    pub fn keys(&self) -> impl Iterator<Item = &NodeKey> {
        self.nodes.keys()
    }

    /// Update the replica set stored in a leaf. Location metadata is
    /// mutable (replication repair moves chunks around); version data is
    /// not. Returns `false` if the key is absent or not a leaf.
    pub fn patch_leaf(&mut self, key: &NodeKey, replicas: Vec<sads_sim::NodeId>) -> bool {
        match self.nodes.get_mut(key) {
            Some(MetaNode::Leaf { chunk }) => {
                chunk.replicas = replicas;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::tree::{NodeRange, NodeRef};
    use crate::model::{BlobId, VersionId};

    fn key(b: u64, v: u64, s: u64, l: u64) -> NodeKey {
        NodeKey { blob: BlobId(b), version: VersionId(v), range: NodeRange::new(s, l) }
    }

    fn inner() -> MetaNode {
        MetaNode::Inner { left: NodeRef::Hole, right: NodeRef::Hole }
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = MetaStore::new();
        let k = key(1, 1, 0, 4);
        assert!(s.put(k, inner()));
        assert_eq!(s.len(), 1);
        assert!(s.bytes() > 0);
        assert!(s.get(&k).is_some());
        assert!(s.remove(&k));
        assert!(!s.remove(&k));
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn put_is_idempotent_for_retransmissions() {
        let mut s = MetaStore::new();
        let k = key(1, 1, 0, 4);
        assert!(s.put(k, inner()));
        let bytes = s.bytes();
        assert!(!s.put(k, inner()), "duplicate put reports existing");
        assert_eq!(s.bytes(), bytes, "no double accounting");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn partition_is_stable_and_spread() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for b in 0..4 {
            for v in 0..16 {
                for s in 0..16 {
                    let k = key(b, v, s, 1);
                    let p = partition(&k, n);
                    assert_eq!(p, partition(&k, n), "deterministic");
                    counts[p] += 1;
                }
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 4 * 16 * 16);
        let expect = total / n;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > expect / 4 && *c < expect * 4,
                "partition {i} badly imbalanced: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn different_keys_usually_hash_differently() {
        let a = node_key_hash(&key(1, 1, 0, 1));
        let b = node_key_hash(&key(1, 1, 1, 1));
        let c = node_key_hash(&key(1, 2, 0, 1));
        let d = node_key_hash(&key(2, 1, 0, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
