//! Metadata provider storage: the node map one metadata provider holds,
//! and the static partitioning function that maps node keys onto the
//! metadata provider ring.
//!
//! BlobSeer distributes tree nodes over a set of metadata providers using
//! consistent key hashing; clients compute the owner locally from the key,
//! so no directory lookup is needed on the metadata path.

use std::collections::HashMap;

use crate::meta::tree::{MetaNode, NodeKey, NodeRange};
use crate::model::{BlobId, PageInterval, VersionId};

/// Deterministic 64-bit mix of a node key (SplitMix64-style finalizer).
/// Used for partitioning; stability across runs matters for the
/// deterministic simulator, so we do not use `std`'s randomized hasher.
pub fn node_key_hash(key: &NodeKey) -> u64 {
    let mut h = key
        .blob
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.version.0.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(key.range.start.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(key.range.len);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Index of the metadata provider that owns `key`, out of `n` providers.
pub fn partition(key: &NodeKey, n: usize) -> usize {
    debug_assert!(n > 0, "at least one metadata provider");
    (node_key_hash(key) % n as u64) as usize
}

/// The node map held by one metadata provider.
///
/// Nodes are immutable once written (versions are immutable), so `put` of
/// an existing key is idempotent: retransmitted writes are accepted and
/// the stored value kept.
#[derive(Debug, Default)]
pub struct MetaStore {
    nodes: HashMap<NodeKey, MetaNode>,
    /// Secondary index for bulk range descents: per blob, the versions
    /// stored at each range (kept sorted ascending). Lets `range_cover`
    /// answer "the node at range r in the tree of version v" — the one
    /// with the greatest stored version ≤ v — without touching the main
    /// map per candidate version.
    by_blob: HashMap<BlobId, HashMap<NodeRange, Vec<VersionId>>>,
    bytes: u64,
}

impl MetaStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a node. Returns `false` if the key already existed (the
    /// stored node is kept — nodes are immutable, so any retransmission
    /// carries identical content).
    pub fn put(&mut self, key: NodeKey, node: MetaNode) -> bool {
        match self.nodes.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                self.bytes += node.wire_size();
                e.insert(node);
                let versions =
                    self.by_blob.entry(key.blob).or_default().entry(key.range).or_default();
                let at = versions.partition_point(|v| *v < key.version);
                versions.insert(at, key.version);
                true
            }
        }
    }

    /// Fetch a node.
    pub fn get(&self, key: &NodeKey) -> Option<&MetaNode> {
        self.nodes.get(key)
    }

    /// Remove a node (used by the data-removal strategies when reclaiming
    /// whole versions). Returns whether it existed.
    pub fn remove(&mut self, key: &NodeKey) -> bool {
        if let Some(n) = self.nodes.remove(key) {
            self.bytes -= n.wire_size();
            if let Some(ranges) = self.by_blob.get_mut(&key.blob) {
                if let Some(versions) = ranges.get_mut(&key.range) {
                    versions.retain(|v| *v != key.version);
                    if versions.is_empty() {
                        ranges.remove(&key.range);
                    }
                }
                if ranges.is_empty() {
                    self.by_blob.remove(&key.blob);
                }
            }
            true
        } else {
            false
        }
    }

    /// Bulk range descent: every node on the read path of `query` in the
    /// tree of `version` that this store holds. For each stored range
    /// intersecting the query, that is the node with the greatest stored
    /// version ≤ `version` (nodes are immutable, coverage only grows with
    /// version, and a writer that re-covers a range stores its own node
    /// there — so the max-version node is exactly what a level-by-level
    /// descent through version `version`'s tree would fetch here).
    ///
    /// Results are ordered by `(range.start, range.len)`; at most
    /// `max_nodes` are returned and the `bool` reports truncation. Pass
    /// the last returned range as `after` to resume.
    pub fn range_cover(
        &self,
        blob: BlobId,
        version: VersionId,
        query: &PageInterval,
        after: Option<NodeRange>,
        max_nodes: usize,
    ) -> (Vec<(NodeKey, MetaNode)>, bool) {
        let Some(ranges) = self.by_blob.get(&blob) else {
            return (Vec::new(), false);
        };
        let cursor = after.map(|r| (r.start, r.len));
        let mut matches: Vec<(NodeRange, VersionId)> = ranges
            .iter()
            .filter(|(r, _)| r.intersects(query))
            .filter(|(r, _)| cursor.is_none_or(|c| (r.start, r.len) > c))
            .filter_map(|(r, versions)| {
                let at = versions.partition_point(|v| *v <= version);
                (at > 0).then(|| (*r, versions[at - 1]))
            })
            .collect();
        matches.sort_by_key(|(r, _)| (r.start, r.len));
        let more = matches.len() > max_nodes;
        matches.truncate(max_nodes);
        let out = matches
            .into_iter()
            .map(|(range, version)| {
                let key = NodeKey { blob, version, range };
                (key, self.nodes[&key].clone())
            })
            .collect();
        (out, more)
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate bytes held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Iterate all keys (used by removal sweeps).
    pub fn keys(&self) -> impl Iterator<Item = &NodeKey> {
        self.nodes.keys()
    }

    /// Update the replica set stored in a leaf. Location metadata is
    /// mutable (replication repair moves chunks around); version data is
    /// not. Returns `false` if the key is absent or not a leaf.
    pub fn patch_leaf(&mut self, key: &NodeKey, replicas: Vec<sads_sim::NodeId>) -> bool {
        match self.nodes.get_mut(key) {
            Some(MetaNode::Leaf { chunk }) => {
                chunk.replicas = replicas;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::tree::{NodeRange, NodeRef};
    use crate::model::{BlobId, VersionId};

    fn key(b: u64, v: u64, s: u64, l: u64) -> NodeKey {
        NodeKey { blob: BlobId(b), version: VersionId(v), range: NodeRange::new(s, l) }
    }

    fn inner() -> MetaNode {
        MetaNode::Inner { left: NodeRef::Hole, right: NodeRef::Hole }
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = MetaStore::new();
        let k = key(1, 1, 0, 4);
        assert!(s.put(k, inner()));
        assert_eq!(s.len(), 1);
        assert!(s.bytes() > 0);
        assert!(s.get(&k).is_some());
        assert!(s.remove(&k));
        assert!(!s.remove(&k));
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn put_is_idempotent_for_retransmissions() {
        let mut s = MetaStore::new();
        let k = key(1, 1, 0, 4);
        assert!(s.put(k, inner()));
        let bytes = s.bytes();
        assert!(!s.put(k, inner()), "duplicate put reports existing");
        assert_eq!(s.bytes(), bytes, "no double accounting");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn partition_is_stable_and_spread() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for b in 0..4 {
            for v in 0..16 {
                for s in 0..16 {
                    let k = key(b, v, s, 1);
                    let p = partition(&k, n);
                    assert_eq!(p, partition(&k, n), "deterministic");
                    counts[p] += 1;
                }
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 4 * 16 * 16);
        let expect = total / n;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > expect / 4 && *c < expect * 4,
                "partition {i} badly imbalanced: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn range_cover_returns_max_version_at_or_below_snapshot() {
        let mut s = MetaStore::new();
        // Range [0,4) written at versions 1 and 3; [0,2) at 2; [4,8) at 5.
        s.put(key(1, 1, 0, 4), inner());
        s.put(key(1, 3, 0, 4), inner());
        s.put(key(1, 2, 0, 2), inner());
        s.put(key(1, 5, 4, 4), inner());
        let q = PageInterval::new(0, 8);
        let (nodes, more) = s.range_cover(BlobId(1), VersionId(3), &q, None, 64);
        assert!(!more);
        let got: Vec<_> = nodes.iter().map(|(k, _)| (k.range.start, k.range.len, k.version.0)).collect();
        // Version 5's node is above the snapshot; [0,4) resolves to v3.
        assert_eq!(got, vec![(0, 2, 2), (0, 4, 3)]);
        // A narrower query drops non-intersecting ranges.
        let (nodes, _) = s.range_cover(BlobId(1), VersionId(9), &PageInterval::new(4, 2), None, 64);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].0, key(1, 5, 4, 4));
        // No blob → empty.
        assert!(s.range_cover(BlobId(9), VersionId(3), &q, None, 64).0.is_empty());
    }

    #[test]
    fn range_cover_truncates_and_resumes_with_cursor() {
        let mut s = MetaStore::new();
        for p in 0..8 {
            s.put(key(1, 1, p, 1), inner());
        }
        let q = PageInterval::new(0, 8);
        let (first, more) = s.range_cover(BlobId(1), VersionId(1), &q, None, 3);
        assert!(more);
        assert_eq!(first.len(), 3);
        let cursor = first.last().unwrap().0.range;
        let (rest, more) = s.range_cover(BlobId(1), VersionId(1), &q, Some(cursor), 64);
        assert!(!more);
        assert_eq!(rest.len(), 5);
        let mut all: Vec<u64> = first.iter().chain(&rest).map(|(k, _)| k.range.start).collect();
        all.dedup();
        assert_eq!(all, (0..8).collect::<Vec<_>>(), "ordered, no dup, no gap");
    }

    #[test]
    fn remove_keeps_range_index_consistent() {
        let mut s = MetaStore::new();
        s.put(key(1, 1, 0, 4), inner());
        s.put(key(1, 2, 0, 4), inner());
        let q = PageInterval::new(0, 4);
        assert!(s.remove(&key(1, 2, 0, 4)));
        let (nodes, _) = s.range_cover(BlobId(1), VersionId(2), &q, None, 64);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].0.version, VersionId(1), "falls back to surviving version");
        assert!(s.remove(&key(1, 1, 0, 4)));
        assert!(s.range_cover(BlobId(1), VersionId(2), &q, None, 64).0.is_empty());
    }

    #[test]
    fn different_keys_usually_hash_differently() {
        let a = node_key_hash(&key(1, 1, 0, 1));
        let b = node_key_hash(&key(1, 1, 1, 1));
        let c = node_key_hash(&key(1, 2, 0, 1));
        let d = node_key_hash(&key(2, 1, 0, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
