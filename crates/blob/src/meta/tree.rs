//! The versioned segment-tree metadata algorithm — the core of BlobSeer
//! (Nicolae et al., JPDC 2010), reimplemented in full.
//!
//! Each BLOB version is described by a complete binary tree over the page
//! index space `[0, 2^k)`. A node covers a power-of-two-aligned page range;
//! leaves cover single pages and carry [`ChunkDescriptor`]s; inner nodes
//! carry two child *references*. A reference names a `(version, range)`
//! pair — possibly a node created by an **earlier** version — so trees of
//! successive versions share every unmodified subtree.
//!
//! **Concurrent writers.** A writer of version `v` never sees other
//! writers' unpublished nodes. Instead, the version manager's write ticket
//! carries the page intervals (and projected sizes) of all *pending*
//! versions between the last published snapshot and `v`. When the writer
//! needs a reference for a subtree it did not modify, it points at
//! `(w, range)` where `w` is the greatest pending version whose interval
//! intersects the range — that node is guaranteed to exist once `w`
//! commits, because every writer materializes a node for every range its
//! interval intersects. Ranges untouched by any pending write resolve
//! against the last *published* tree by descending it (the only remote
//! reads a writer performs, O(log n) per untouched sibling).
//!
//! Both the write-side ([`TreeBuilder`]) and read-side ([`TreeReader`])
//! algorithms are implemented as *resumable* pure state machines: they
//! expose the set of metadata nodes they need fetched and accept them as
//! they arrive, so the same code drives the threaded runtime, the
//! simulated runtime and the in-memory unit tests.

use std::collections::HashMap;

use crate::model::{next_pow2, BlobId, ChunkDescriptor, PageInterval, VersionId};

/// A power-of-two-aligned page range: `len` is a power of two and `start`
/// is a multiple of `len`. These are exactly the ranges that appear as
/// segment-tree nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeRange {
    /// First page covered.
    pub start: u64,
    /// Number of pages covered (power of two).
    pub len: u64,
}

impl NodeRange {
    /// The root range of a tree covering `pages` pages.
    pub fn root_for(pages: u64) -> NodeRange {
        NodeRange { start: 0, len: next_pow2(pages) }
    }

    /// Construct, asserting the alignment invariant in debug builds.
    pub fn new(start: u64, len: u64) -> NodeRange {
        debug_assert!(len.is_power_of_two(), "range len must be a power of two");
        debug_assert!(start.is_multiple_of(len), "range start must be aligned to len");
        NodeRange { start, len }
    }

    /// One-past-the-end page.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Is this a leaf (single page)?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.len == 1
    }

    /// Left half.
    #[inline]
    pub fn left(&self) -> NodeRange {
        debug_assert!(!self.is_leaf());
        NodeRange { start: self.start, len: self.len / 2 }
    }

    /// Right half.
    #[inline]
    pub fn right(&self) -> NodeRange {
        debug_assert!(!self.is_leaf());
        NodeRange { start: self.start + self.len / 2, len: self.len / 2 }
    }

    /// View as a plain interval.
    #[inline]
    pub fn interval(&self) -> PageInterval {
        PageInterval { start: self.start, len: self.len }
    }

    /// Does this range intersect the interval?
    #[inline]
    pub fn intersects(&self, i: &PageInterval) -> bool {
        self.interval().intersects(i)
    }

    /// Does this range fully contain `other`?
    #[inline]
    pub fn contains(&self, other: &NodeRange) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }
}

impl std::fmt::Display for NodeRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{})", self.start, self.end())
    }
}

/// Ranges a version's writer created: every tree range within its root
/// coverage that intersects its write interval. This is the exact node
/// set [`TreeBuilder`] materializes for that write (spine nodes grown
/// past the old root aside), so GC planners can reason about ownership
/// without fetching the tree.
pub fn created_ranges(interval: PageInterval, size_after: u64, page_size: u64) -> Vec<NodeRange> {
    let root = NodeRange::root_for(crate::model::pages_for(size_after, page_size));
    let mut out = Vec::new();
    fn walk(r: NodeRange, i: &PageInterval, out: &mut Vec<NodeRange>) {
        if !r.intersects(i) {
            return;
        }
        out.push(r);
        if !r.is_leaf() {
            walk(r.left(), i, out);
            walk(r.right(), i, out);
        }
    }
    walk(root, &interval, &mut out);
    out
}

/// Globally unique key of a stored metadata node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeKey {
    /// Owning BLOB.
    pub blob: BlobId,
    /// Version whose writer created the node.
    pub version: VersionId,
    /// Range the node covers.
    pub range: NodeRange,
}

/// A child pointer: either "nothing was ever written here" or a node key
/// (sans blob, which is implicit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRef {
    /// Never-written range: reads materialize zeros.
    Hole,
    /// Reference to the node `(version, range)`.
    Node {
        /// Creating version.
        version: VersionId,
        /// Covered range.
        range: NodeRange,
    },
}

impl NodeRef {
    /// The key this reference names within `blob`, if not a hole.
    pub fn key(&self, blob: BlobId) -> Option<NodeKey> {
        match *self {
            NodeRef::Hole => None,
            NodeRef::Node { version, range } => Some(NodeKey { blob, version, range }),
        }
    }
}

/// A stored metadata node.
#[derive(Clone, PartialEq, Debug)]
pub enum MetaNode {
    /// Inner node with two child references.
    Inner {
        /// Left-half child.
        left: NodeRef,
        /// Right-half child.
        right: NodeRef,
    },
    /// Leaf: where the page's chunk lives.
    Leaf {
        /// Chunk location and size.
        chunk: ChunkDescriptor,
    },
}

impl MetaNode {
    /// Approximate serialized size in bytes (for the network model).
    pub fn wire_size(&self) -> u64 {
        match self {
            MetaNode::Inner { .. } => 96,
            MetaNode::Leaf { chunk } => 64 + 8 * chunk.replicas.len() as u64,
        }
    }
}

/// A pending (ticketed but unpublished) write, as reported in a ticket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingWrite {
    /// The pending version number.
    pub version: VersionId,
    /// Pages it modifies.
    pub interval: PageInterval,
    /// Projected BLOB size (bytes) after it publishes — determines the
    /// coverage of its tree.
    pub size_after: u64,
}

/// Description of the snapshot a writer builds against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BaseSnapshot {
    /// Last published version.
    pub version: VersionId,
    /// Its size in bytes.
    pub size: u64,
    /// Its root reference (`None` when nothing was ever published).
    pub root: Option<NodeRef>,
}

// ---------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------

/// State of one in-progress base-tree resolution.
#[derive(Debug)]
struct Resolution {
    /// The target range we need a reference for.
    target: NodeRange,
    /// Node we are currently waiting to read (always an ancestor of
    /// `target` in the base tree).
    cursor: NodeKey,
}

/// Resumable builder for the metadata of one write.
///
/// Protocol:
/// 1. construct with the ticket data;
/// 2. while `!is_ready()`: fetch every key in [`TreeBuilder::needed_fetches`]
///    from the metadata providers and [`TreeBuilder::supply`] the results;
/// 3. call [`TreeBuilder::build`] with the written chunks to obtain the
///    node set to store, then commit the returned root to the version
///    manager.
#[derive(Debug)]
pub struct TreeBuilder {
    blob: BlobId,
    version: VersionId,
    interval: PageInterval,
    page_size: u64,
    new_root: NodeRange,
    base: BaseSnapshot,
    pending: Vec<PendingWrite>,
    resolved: HashMap<NodeRange, NodeRef>,
    in_flight: Vec<Resolution>,
}

impl TreeBuilder {
    /// Start building the tree for version `version` writing `interval`
    /// (pages), given the ticket's base snapshot and pending-write list.
    /// `new_size` is the blob size (bytes) after this write publishes.
    pub fn new(
        blob: BlobId,
        version: VersionId,
        interval: PageInterval,
        page_size: u64,
        new_size: u64,
        base: BaseSnapshot,
        mut pending: Vec<PendingWrite>,
    ) -> TreeBuilder {
        assert!(!interval.is_empty(), "writes cover at least one page");
        pending.sort_by_key(|p| p.version);
        pending.retain(|p| p.version > base.version && p.version < version);
        let new_pages = crate::model::pages_for(new_size, page_size);
        let new_root = NodeRange::root_for(new_pages);
        debug_assert!(new_root.interval().contains(&interval));
        let mut b = TreeBuilder {
            blob,
            version,
            interval,
            page_size,
            new_root,
            base,
            pending,
            resolved: HashMap::new(),
            in_flight: Vec::new(),
        };
        b.collect_targets(b.new_root);
        b
    }

    /// The write interval (pages).
    pub fn interval(&self) -> PageInterval {
        self.interval
    }

    /// The version being built.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Root range of the new tree.
    pub fn root_range(&self) -> NodeRange {
        self.new_root
    }

    /// Greatest pending version whose write intersects `r`, if any.
    fn pending_covering(&self, r: &NodeRange) -> Option<&PendingWrite> {
        self.pending.iter().rev().find(|p| r.intersects(&p.interval))
    }

    /// Walk the new tree, classifying every range we will need a reference
    /// for, and queueing base-tree descents for the rest.
    fn collect_targets(&mut self, r: NodeRange) {
        if r.intersects(&self.interval) {
            // We create this node; recurse unless leaf.
            if !r.is_leaf() {
                self.collect_targets(r.left());
                self.collect_targets(r.right());
            }
            return;
        }
        // Untouched by us: find what to reference.
        if let Some(p) = self.pending_covering(&r) {
            let cover = NodeRange::root_for(crate::model::pages_for(p.size_after, self.page_size));
            if cover.contains(&r) {
                self.resolved.insert(r, NodeRef::Node { version: p.version, range: r });
                return;
            }
            // Pending writer's tree is too small to have a node for `r`
            // (we expanded past its coverage): materialize this range
            // ourselves and recurse.
            if !r.is_leaf() {
                self.collect_targets(r.left());
                self.collect_targets(r.right());
            } else {
                // A leaf outside our interval yet beyond pending coverage
                // cannot exist: pending intersects r, so r is within the
                // pending write, hence within its coverage.
                unreachable!("leaf intersecting a pending write is inside its coverage");
            }
            return;
        }
        // No pending touches r: resolve against the published base.
        match self.base_resolution(r) {
            BaseStep::Resolved(nref) => {
                self.resolved.insert(r, nref);
            }
            BaseStep::Descend(cursor) => {
                self.in_flight.push(Resolution { target: r, cursor });
            }
            BaseStep::Materialize => {
                // r strictly contains the base coverage: create the node
                // ourselves and recurse into halves.
                debug_assert!(!r.is_leaf());
                self.collect_targets(r.left());
                self.collect_targets(r.right());
            }
        }
    }

    /// One step of deciding how range `r` resolves against the base tree.
    fn base_resolution(&self, r: NodeRange) -> BaseStep {
        let Some(base_root) = self.base.root else {
            return BaseStep::Resolved(NodeRef::Hole);
        };
        let NodeRef::Node { version, range } = base_root else {
            return BaseStep::Resolved(NodeRef::Hole);
        };
        if r == range {
            return BaseStep::Resolved(base_root);
        }
        if range.contains(&r) {
            return BaseStep::Descend(NodeKey { blob: self.blob, version, range });
        }
        if r.contains(&range) {
            return BaseStep::Materialize;
        }
        // Disjoint from everything ever written.
        BaseStep::Resolved(NodeRef::Hole)
    }

    /// Keys that must be fetched from the metadata providers right now.
    pub fn needed_fetches(&self) -> Vec<NodeKey> {
        let mut keys: Vec<NodeKey> = self.in_flight.iter().map(|r| r.cursor).collect();
        keys.sort_by_key(|k| (k.version, k.range.start, k.range.len));
        keys.dedup();
        keys
    }

    /// Feed a fetched node back in; advances every descent waiting on it.
    pub fn supply(&mut self, key: NodeKey, node: &MetaNode) {
        let mut still = Vec::with_capacity(self.in_flight.len());
        for mut res in std::mem::take(&mut self.in_flight) {
            if res.cursor != key {
                still.push(res);
                continue;
            }
            let MetaNode::Inner { left, right } = node else {
                // A leaf above a strictly smaller target range is a
                // protocol corruption; treat as hole to stay total.
                self.resolved.insert(res.target, NodeRef::Hole);
                continue;
            };
            // Pick the side by geometry: the target is strictly inside
            // one half of the cursor's range.
            let child = if key.range.left().contains(&res.target) { *left } else { *right };
            match child {
                NodeRef::Hole => {
                    self.resolved.insert(res.target, NodeRef::Hole);
                }
                NodeRef::Node { version, range } => {
                    if range == res.target {
                        self.resolved.insert(res.target, child);
                    } else {
                        debug_assert!(range.contains(&res.target));
                        res.cursor = NodeKey { blob: self.blob, version, range };
                        still.push(res);
                    }
                }
            }
        }
        self.in_flight = still;
    }

    /// Have all references been resolved?
    pub fn is_ready(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Produce the full node set for this version. `chunks` must hold one
    /// descriptor per page of the write interval, in page order.
    ///
    /// Returns `(nodes_to_store, root_ref)`.
    pub fn build(&self, chunks: &[ChunkDescriptor]) -> (Vec<(NodeKey, MetaNode)>, NodeRef) {
        assert!(self.is_ready(), "build() before all references resolved");
        assert_eq!(
            chunks.len() as u64,
            self.interval.len,
            "one chunk per page of the write interval"
        );
        let mut out = Vec::new();
        let root_ref = self.emit(self.new_root, chunks, &mut out);
        debug_assert!(matches!(root_ref, NodeRef::Node { .. }), "root is always created");
        (out, root_ref)
    }

    fn emit(
        &self,
        r: NodeRange,
        chunks: &[ChunkDescriptor],
        out: &mut Vec<(NodeKey, MetaNode)>,
    ) -> NodeRef {
        if let Some(nref) = self.resolved.get(&r) {
            return *nref;
        }
        // Not resolved ⇒ we create the node (it intersects our interval or
        // is a spine/materialized range).
        let key = NodeKey { blob: self.blob, version: self.version, range: r };
        if r.is_leaf() {
            debug_assert!(self.interval.contains_page(r.start));
            let idx = (r.start - self.interval.start) as usize;
            out.push((key, MetaNode::Leaf { chunk: chunks[idx].clone() }));
            return NodeRef::Node { version: self.version, range: r };
        }
        let left = self.emit(r.left(), chunks, out);
        let right = self.emit(r.right(), chunks, out);
        out.push((key, MetaNode::Inner { left, right }));
        NodeRef::Node { version: self.version, range: r }
    }
}

enum BaseStep {
    Resolved(NodeRef),
    Descend(NodeKey),
    Materialize,
}

// ---------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------

/// Where one page of a read comes from.
#[derive(Clone, PartialEq, Debug)]
pub enum PageSource {
    /// A stored chunk.
    Chunk(ChunkDescriptor),
    /// Never written: zeros.
    Hole {
        /// The page index.
        page: u64,
    },
}

impl PageSource {
    /// The page this source fills.
    pub fn page(&self) -> u64 {
        match self {
            PageSource::Chunk(c) => c.key.page,
            PageSource::Hole { page } => *page,
        }
    }
}

/// Resumable descent of a version's tree, collecting the chunk descriptors
/// covering a page interval.
///
/// Same fetch/supply protocol as [`TreeBuilder`].
#[derive(Debug)]
pub struct TreeReader {
    blob: BlobId,
    query: PageInterval,
    frontier: Vec<NodeKey>,
    sources: Vec<PageSource>,
}

impl TreeReader {
    /// Start a descent from `root` (of the version being read) for the
    /// pages in `query`.
    pub fn new(blob: BlobId, root: Option<NodeRef>, query: PageInterval) -> TreeReader {
        let mut r = TreeReader { blob, query, frontier: Vec::new(), sources: Vec::new() };
        match root {
            None | Some(NodeRef::Hole) => r.fill_holes(query),
            Some(NodeRef::Node { version, range }) => {
                // Pages beyond the root coverage are holes.
                if query.end() > range.end() {
                    let beyond = PageInterval::new(range.end().max(query.start), {
                        query.end().saturating_sub(range.end().max(query.start))
                    });
                    r.fill_holes(beyond);
                }
                if range.intersects(&query) {
                    r.frontier.push(NodeKey { blob, version, range });
                }
            }
        }
        r
    }

    fn fill_holes(&mut self, i: PageInterval) {
        for page in i.start..i.end() {
            self.sources.push(PageSource::Hole { page });
        }
    }

    /// Keys to fetch next.
    pub fn needed_fetches(&self) -> Vec<NodeKey> {
        let mut keys = self.frontier.clone();
        keys.sort_by_key(|k| (k.version, k.range.start, k.range.len));
        keys.dedup();
        keys
    }

    /// Feed one fetched node; may expand the frontier with its children.
    pub fn supply(&mut self, key: NodeKey, node: &MetaNode) {
        let Some(pos) = self.frontier.iter().position(|k| *k == key) else {
            return;
        };
        self.frontier.swap_remove(pos);
        match node {
            MetaNode::Leaf { chunk } => {
                debug_assert!(key.range.is_leaf());
                if self.query.contains_page(key.range.start) {
                    self.sources.push(PageSource::Chunk(chunk.clone()));
                }
            }
            MetaNode::Inner { left, right } => {
                for (child, crange) in
                    [(left, key.range.left()), (right, key.range.right())]
                {
                    if !crange.intersects(&self.query) {
                        continue;
                    }
                    match child {
                        NodeRef::Hole => {
                            let lo = crange.start.max(self.query.start);
                            let hi = crange.end().min(self.query.end());
                            self.fill_holes(PageInterval::new(lo, hi - lo));
                        }
                        NodeRef::Node { version, range } => {
                            self.frontier.push(NodeKey {
                                blob: self.blob,
                                version: *version,
                                range: *range,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Has the descent gathered a source for every queried page?
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Consume the reader, returning one source per queried page, in page
    /// order. Panics if called before [`TreeReader::is_done`].
    pub fn into_sources(mut self) -> Vec<PageSource> {
        assert!(self.is_done(), "descent incomplete");
        self.sources.sort_by_key(|s| s.page());
        debug_assert_eq!(self.sources.len() as u64, self.query.len, "one source per page");
        self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ChunkKey;
    use sads_sim::NodeId;

    /// In-memory metadata store + sequential writer harness: drives
    /// TreeBuilder/TreeReader to completion synchronously.
    pub(crate) struct LocalMeta {
        pub nodes: HashMap<NodeKey, MetaNode>,
    }

    impl LocalMeta {
        pub fn new() -> Self {
            LocalMeta { nodes: HashMap::new() }
        }

        pub fn run_builder(&mut self, mut b: TreeBuilder) -> NodeRef {
            while !b.is_ready() {
                let keys = b.needed_fetches();
                assert!(!keys.is_empty());
                for k in keys {
                    let n = self.nodes.get(&k).unwrap_or_else(|| panic!("missing node {k:?}")).clone();
                    b.supply(k, &n);
                }
            }
            let chunks: Vec<ChunkDescriptor> = (b.interval().start..b.interval().end())
                .map(|page| ChunkDescriptor {
                    key: ChunkKey { blob: BlobId(1), version: b.version(), page },
                    replicas: vec![NodeId(0)],
                    size: PAGE,
                })
                .collect();
            let (nodes, root) = b.build(&chunks);
            for (k, n) in nodes {
                assert!(self.nodes.insert(k, n).is_none(), "node {k:?} written twice");
            }
            root
        }

        pub fn read(&self, root: Option<NodeRef>, query: PageInterval) -> Vec<PageSource> {
            let mut r = TreeReader::new(BlobId(1), root, query);
            while !r.is_done() {
                for k in r.needed_fetches() {
                    let n = self.nodes.get(&k).unwrap_or_else(|| panic!("missing node {k:?}")).clone();
                    r.supply(k, &n);
                }
            }
            r.into_sources()
        }
    }

    const PAGE: u64 = 8;

    fn base0() -> BaseSnapshot {
        BaseSnapshot { version: VersionId(0), size: 0, root: None }
    }

    /// Reference model: page -> last version that wrote it.
    fn expect_pages(sources: &[PageSource], expected: &[(u64, Option<u64>)]) {
        assert_eq!(sources.len(), expected.len());
        for (s, (page, ver)) in sources.iter().zip(expected) {
            assert_eq!(s.page(), *page, "page order");
            match (s, ver) {
                (PageSource::Hole { .. }, None) => {}
                (PageSource::Chunk(c), Some(v)) => {
                    assert_eq!(c.key.version, VersionId(*v), "page {page}")
                }
                other => panic!("page {page}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn first_write_then_full_read() {
        let mut m = LocalMeta::new();
        let b = TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 4),
            PAGE,
            4 * PAGE,
            base0(),
            vec![],
        );
        let root = m.run_builder(b);
        let src = m.read(Some(root), PageInterval::new(0, 4));
        expect_pages(&src, &[(0, Some(1)), (1, Some(1)), (2, Some(1)), (3, Some(1))]);
    }

    #[test]
    fn overwrite_shares_untouched_subtree() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 4),
            PAGE,
            4 * PAGE,
            base0(),
            vec![],
        ));
        let nodes_after_v1 = m.nodes.len();
        let base = BaseSnapshot { version: VersionId(1), size: 4 * PAGE, root: Some(r1) };
        let r2 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(2),
            PageInterval::new(2, 2),
            PAGE,
            4 * PAGE,
            base,
            vec![],
        ));
        // v2 creates: root, right-inner, 2 leaves = 4 nodes; left subtree shared.
        assert_eq!(m.nodes.len() - nodes_after_v1, 4);
        let src = m.read(Some(r2), PageInterval::new(0, 4));
        expect_pages(&src, &[(0, Some(1)), (1, Some(1)), (2, Some(2)), (3, Some(2))]);
        // v1 still reads its own state (snapshot isolation).
        let src = m.read(Some(r1), PageInterval::new(0, 4));
        expect_pages(&src, &[(0, Some(1)), (1, Some(1)), (2, Some(1)), (3, Some(1))]);
    }

    #[test]
    fn append_grows_the_tree() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 2),
            PAGE,
            2 * PAGE,
            base0(),
            vec![],
        ));
        let base = BaseSnapshot { version: VersionId(1), size: 2 * PAGE, root: Some(r1) };
        // Append 3 pages: new size 5 pages, root covers 8.
        let r2 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(2),
            PageInterval::new(2, 3),
            PAGE,
            5 * PAGE,
            base,
            vec![],
        ));
        let src = m.read(Some(r2), PageInterval::new(0, 5));
        expect_pages(
            &src,
            &[(0, Some(1)), (1, Some(1)), (2, Some(2)), (3, Some(2)), (4, Some(2))],
        );
    }

    #[test]
    fn sparse_write_leaves_holes() {
        let mut m = LocalMeta::new();
        // Write pages [4,6) of an empty blob: pages 0..4 are holes.
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(4, 2),
            PAGE,
            6 * PAGE,
            base0(),
            vec![],
        ));
        let src = m.read(Some(r1), PageInterval::new(0, 6));
        expect_pages(&src, &[(0, None), (1, None), (2, None), (3, None), (4, Some(1)), (5, Some(1))]);
    }

    #[test]
    fn far_append_materializes_spine_over_old_tree() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 2),
            PAGE,
            2 * PAGE,
            base0(),
            vec![],
        ));
        let base = BaseSnapshot { version: VersionId(1), size: 2 * PAGE, root: Some(r1) };
        // Write pages [12,14): root grows to 16; spine nodes [0,8) etc.
        // do not intersect the write yet must cover the old tree.
        let r2 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(2),
            PageInterval::new(12, 2),
            PAGE,
            14 * PAGE,
            base,
            vec![],
        ));
        let src = m.read(Some(r2), PageInterval::new(0, 14));
        let mut expected: Vec<(u64, Option<u64>)> = vec![(0, Some(1)), (1, Some(1))];
        expected.extend((2..12).map(|p| (p, None)));
        expected.extend([(12, Some(2)), (13, Some(2))]);
        expect_pages(&src, &expected);
    }

    #[test]
    fn concurrent_writers_forward_reference_pending_versions() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 8),
            PAGE,
            8 * PAGE,
            base0(),
            vec![],
        ));
        let base = BaseSnapshot { version: VersionId(1), size: 8 * PAGE, root: Some(r1) };

        // Two concurrent writers ticketed on top of v1:
        //   v2 writes pages [0,2), v3 writes pages [4,6).
        // v3's ticket knows v2 is pending on [0,2).
        let b2 = TreeBuilder::new(
            BlobId(1),
            VersionId(2),
            PageInterval::new(0, 2),
            PAGE,
            8 * PAGE,
            base,
            vec![],
        );
        let b3 = TreeBuilder::new(
            BlobId(1),
            VersionId(3),
            PageInterval::new(4, 2),
            PAGE,
            8 * PAGE,
            base,
            vec![PendingWrite {
                version: VersionId(2),
                interval: PageInterval::new(0, 2),
                size_after: 8 * PAGE,
            }],
        );
        // Writers complete in any order; store both node sets.
        let r3 = m.run_builder(b3);
        let r2 = m.run_builder(b2);

        // Reading v3 must see v2's pages even though v3's writer never saw
        // v2's nodes — it forward-referenced them.
        let src = m.read(Some(r3), PageInterval::new(0, 8));
        expect_pages(
            &src,
            &[
                (0, Some(2)),
                (1, Some(2)),
                (2, Some(1)),
                (3, Some(1)),
                (4, Some(3)),
                (5, Some(3)),
                (6, Some(1)),
                (7, Some(1)),
            ],
        );
        // Reading v2 sees only v1+v2.
        let src = m.read(Some(r2), PageInterval::new(0, 8));
        expect_pages(
            &src,
            &[
                (0, Some(2)),
                (1, Some(2)),
                (2, Some(1)),
                (3, Some(1)),
                (4, Some(1)),
                (5, Some(1)),
                (6, Some(1)),
                (7, Some(1)),
            ],
        );
    }

    #[test]
    fn partial_read_touches_only_relevant_subtrees() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 8),
            PAGE,
            8 * PAGE,
            base0(),
            vec![],
        ));
        let src = m.read(Some(r1), PageInterval::new(3, 2));
        expect_pages(&src, &[(3, Some(1)), (4, Some(1))]);
    }

    #[test]
    fn read_of_empty_blob_is_all_holes() {
        let m = LocalMeta::new();
        let src = m.read(None, PageInterval::new(0, 3));
        expect_pages(&src, &[(0, None), (1, None), (2, None)]);
    }

    #[test]
    fn builder_reports_then_clears_fetches() {
        let mut m = LocalMeta::new();
        let r1 = m.run_builder(TreeBuilder::new(
            BlobId(1),
            VersionId(1),
            PageInterval::new(0, 8),
            PAGE,
            8 * PAGE,
            base0(),
            vec![],
        ));
        let base = BaseSnapshot { version: VersionId(1), size: 8 * PAGE, root: Some(r1) };
        // Writing [6,8) needs base refs for [0,4) (== child of root, no
        // fetch) and [4,6) (needs descending into [4,8)).
        let b = TreeBuilder::new(
            BlobId(1),
            VersionId(2),
            PageInterval::new(6, 2),
            PAGE,
            8 * PAGE,
            base,
            vec![],
        );
        assert!(!b.is_ready());
        let fetches = b.needed_fetches();
        assert_eq!(fetches.len(), 1, "root fetch resolves both targets: {fetches:?}");
        assert_eq!(fetches[0].range, NodeRange::new(0, 8));
    }

    #[test]
    fn node_range_geometry() {
        let r = NodeRange::new(0, 8);
        assert_eq!(r.left(), NodeRange::new(0, 4));
        assert_eq!(r.right(), NodeRange::new(4, 4));
        assert!(r.contains(&NodeRange::new(6, 2)));
        assert!(!NodeRange::new(4, 4).contains(&NodeRange::new(0, 8)));
        assert_eq!(NodeRange::root_for(5), NodeRange::new(0, 8));
        assert_eq!(NodeRange::root_for(0), NodeRange::new(0, 1));
        assert!(NodeRange::new(3, 1).is_leaf());
    }
}
