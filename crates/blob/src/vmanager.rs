//! Version manager logic: BLOB creation, write ticketing and strictly
//! ordered version publication (paper §III-A: "the version manager deals
//! with the serialization of the concurrent requests and publishes a new
//! BLOB version for each write operation").
//!
//! This module is pure state-machine logic: the service wrapper that talks
//! RPC lives in [`crate::services`], and the same code backs the threaded
//! and simulated runtimes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sads_sim::{SimDuration, SimTime};

use crate::meta::{BaseSnapshot, NodeRef, PendingWrite};
use crate::model::{BlobError, BlobId, BlobSpec, ClientId, PageInterval, VersionId, VersionInfo};

/// Everything a writer needs to proceed independently: its version number,
/// the base snapshot to build against, and the pending writes it must
/// forward-reference.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteTicket {
    /// Target BLOB.
    pub blob: BlobId,
    /// The version this write will publish.
    pub version: VersionId,
    /// Byte offset of the write (assigned for appends).
    pub offset: u64,
    /// Byte length of the write.
    pub len: u64,
    /// BLOB page size (bytes).
    pub page_size: u64,
    /// Replication degree for new chunks.
    pub replication: u32,
    /// BLOB size after this write publishes.
    pub new_size: u64,
    /// Latest published snapshot at ticket time.
    pub base: BaseSnapshot,
    /// Unpublished writes ordered before this one.
    pub pending: Vec<PendingWrite>,
}

impl WriteTicket {
    /// The write interval in pages.
    pub fn interval(&self) -> PageInterval {
        PageInterval::new(self.offset / self.page_size, self.len / self.page_size)
    }
}

/// A ticketed write whose writer has gone silent, in publishable position
/// (its predecessor is published) — everything a recovery agent needs to
/// publish it as a no-op.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalledWrite {
    /// The BLOB.
    pub blob: BlobId,
    /// The stalled version.
    pub version: VersionId,
    /// Pages the dead writer claimed.
    pub interval: PageInterval,
    /// Projected BLOB size after this version.
    pub new_size: u64,
    /// BLOB page size.
    pub page_size: u64,
}

/// Compact catalog entry shipped to the adaptive layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VersionSummary {
    /// The version number.
    pub version: VersionId,
    /// BLOB size as of this version.
    pub size: u64,
    /// Pages the version wrote.
    pub interval: PageInterval,
    /// Publication time.
    pub published_at: SimTime,
}

/// A version that has been published and can be read.
#[derive(Clone, Debug)]
pub struct PublishedVersion {
    /// The version number.
    pub version: VersionId,
    /// BLOB size as of this version.
    pub size: u64,
    /// Metadata tree root (`None` only for the initial empty version).
    pub root: Option<NodeRef>,
    /// Pages this version wrote (empty for v0).
    pub interval: PageInterval,
    /// Publication time.
    pub published_at: SimTime,
    /// Who wrote it.
    pub writer: Option<ClientId>,
}

#[derive(Clone, Debug)]
struct PendingEntry {
    interval: PageInterval,
    size_after: u64,
    client: ClientId,
    issued_at: SimTime,
    /// Set once the writer commits; published when all predecessors are.
    committed: Option<(NodeRef, u64)>,
}

/// Per-BLOB version-manager state.
#[derive(Debug)]
pub struct BlobState {
    /// Immutable creation parameters.
    pub spec: BlobSpec,
    /// Published versions, keyed by number (always contains v0).
    published: BTreeMap<VersionId, PublishedVersion>,
    /// Highest published version.
    last_published: VersionId,
    /// Highest ticketed version.
    last_ticketed: VersionId,
    /// Size the BLOB will have once every ticketed write publishes.
    projected_size: u64,
    /// Ticketed-but-unpublished writes.
    pending: BTreeMap<VersionId, PendingEntry>,
    /// Versions pinned as snapshots (lifecycle GC roots).
    snapshots: BTreeSet<VersionId>,
    /// Decommissioned BLOBs keep their record (ids are never reused) but
    /// no version of theirs is a GC root any more.
    decommissioned: bool,
}

impl BlobState {
    fn new(spec: BlobSpec, now: SimTime) -> Self {
        let mut published = BTreeMap::new();
        published.insert(
            VersionId::INITIAL,
            PublishedVersion {
                version: VersionId::INITIAL,
                size: 0,
                root: None,
                interval: PageInterval::EMPTY,
                published_at: now,
                writer: None,
            },
        );
        BlobState {
            spec,
            published,
            last_published: VersionId::INITIAL,
            last_ticketed: VersionId::INITIAL,
            projected_size: 0,
            pending: BTreeMap::new(),
            snapshots: BTreeSet::new(),
            decommissioned: false,
        }
    }

    /// The latest published version. (After a decommission the sweeper
    /// may forget the highest version; the greatest remaining record —
    /// ultimately v0 — then stands in, so readers degrade gracefully
    /// while reclamation drains.)
    pub fn latest(&self) -> &PublishedVersion {
        self.published
            .get(&self.last_published)
            .unwrap_or_else(|| self.published.values().next_back().expect("v0 always present"))
    }

    /// A specific published version.
    pub fn version(&self, v: VersionId) -> Option<&PublishedVersion> {
        self.published.get(&v)
    }

    /// Iterate all published versions in order.
    pub fn versions(&self) -> impl Iterator<Item = &PublishedVersion> {
        self.published.values()
    }

    /// Number of unpublished ticketed writes.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Remove a published version's record (data-removal strategies call
    /// this after deleting its chunks and nodes). v0 is never removable;
    /// snapshots and the latest version are protected unless the BLOB was
    /// decommissioned.
    pub fn forget_version(&mut self, v: VersionId) -> bool {
        if v == VersionId::INITIAL {
            return false;
        }
        if !self.decommissioned && (v == self.last_published || self.snapshots.contains(&v)) {
            return false;
        }
        self.snapshots.remove(&v);
        self.published.remove(&v).is_some()
    }

    /// Pin a published version as a snapshot — an O(1) metadata-only
    /// operation; the version's whole segment tree is shared, not copied.
    /// Snapshots are lifecycle GC roots. Idempotent; fails on unpublished
    /// versions and on decommissioned BLOBs.
    pub fn snapshot(&mut self, v: VersionId) -> bool {
        if self.decommissioned || !self.published.contains_key(&v) {
            return false;
        }
        self.snapshots.insert(v);
        true
    }

    /// Versions currently pinned as snapshots, in order.
    pub fn snapshots(&self) -> Vec<VersionId> {
        self.snapshots.iter().copied().collect()
    }

    /// Whether `v` is pinned as a snapshot.
    pub fn is_snapshot(&self, v: VersionId) -> bool {
        self.snapshots.contains(&v)
    }

    /// Mark the BLOB decommissioned: snapshots unpin and every version
    /// (the latest included) becomes reclaimable by the lifecycle
    /// sweeper. The record itself stays so the id is never reused.
    pub fn decommission(&mut self) {
        self.decommissioned = true;
        self.snapshots.clear();
    }

    /// Whether the BLOB was decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.decommissioned
    }
}

/// How a client addresses a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// Write at an explicit byte offset.
    At(u64),
    /// Append after all currently ticketed writes.
    Append,
}

/// The version manager's full state.
#[derive(Debug, Default)]
pub struct VersionManagerState {
    blobs: HashMap<BlobId, BlobState>,
    next_blob: u64,
}

impl VersionManagerState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new BLOB; returns its id.
    pub fn create_blob(&mut self, spec: BlobSpec, now: SimTime) -> BlobId {
        self.next_blob += 1;
        let id = BlobId(self.next_blob);
        self.blobs.insert(id, BlobState::new(spec, now));
        id
    }

    /// Access one BLOB's state.
    pub fn blob(&self, id: BlobId) -> Option<&BlobState> {
        self.blobs.get(&id)
    }

    /// Mutable access (removal strategies).
    pub fn blob_mut(&mut self, id: BlobId) -> Option<&mut BlobState> {
        self.blobs.get_mut(&id)
    }

    /// All blob ids.
    pub fn blob_ids(&self) -> Vec<BlobId> {
        let mut v: Vec<BlobId> = self.blobs.keys().copied().collect();
        v.sort();
        v
    }

    /// Issue a write ticket: assigns the next version number, snapshots
    /// the pending set, and projects the new size.
    pub fn ticket(
        &mut self,
        blob: BlobId,
        kind: WriteKind,
        len: u64,
        client: ClientId,
        now: SimTime,
    ) -> Result<WriteTicket, BlobError> {
        let st = self.blobs.get_mut(&blob).ok_or(BlobError::UnknownBlob(blob))?;
        if st.decommissioned {
            // A deleted object's backing BLOB takes no new writes; the
            // id is never reused, so the caller sees it as gone.
            return Err(BlobError::UnknownBlob(blob));
        }
        let page = st.spec.page_size;
        if len == 0 {
            return Err(BlobError::EmptyWrite);
        }
        let offset = match kind {
            WriteKind::At(o) => o,
            // Appends land after every write ticketed so far, rounded up
            // to a page boundary (sizes are always page multiples here).
            WriteKind::Append => st.projected_size,
        };
        if !offset.is_multiple_of(page) || !len.is_multiple_of(page) {
            return Err(BlobError::Misaligned { offset, len, page_size: page });
        }
        let version = st.last_ticketed.next();
        st.last_ticketed = version;
        let new_size = st.projected_size.max(offset + len);
        st.projected_size = new_size;

        let base = {
            let latest = st.latest();
            BaseSnapshot { version: latest.version, size: latest.size, root: latest.root }
        };
        let pending: Vec<PendingWrite> = st
            .pending
            .iter()
            .map(|(v, p)| PendingWrite {
                version: *v,
                interval: p.interval,
                size_after: p.size_after,
            })
            .collect();

        let interval = PageInterval::new(offset / page, len / page);
        st.pending.insert(
            version,
            PendingEntry {
                interval,
                size_after: new_size,
                client,
                issued_at: now,
                committed: None,
            },
        );

        Ok(WriteTicket {
            blob,
            version,
            offset,
            len,
            page_size: page,
            replication: st.spec.replication,
            new_size,
            base,
            pending,
        })
    }

    /// Record that version `v`'s writer finished storing chunks and
    /// metadata. Publication is strictly ordered: `v` becomes visible only
    /// when `v-1` is published. Returns every version published *by this
    /// call* (a commit can unblock a queue of successors), with the writer
    /// to acknowledge.
    pub fn commit(
        &mut self,
        blob: BlobId,
        v: VersionId,
        root: NodeRef,
        size: u64,
        now: SimTime,
    ) -> Result<Vec<(VersionId, ClientId)>, BlobError> {
        let st = self.blobs.get_mut(&blob).ok_or(BlobError::UnknownBlob(blob))?;
        let entry = st.pending.get_mut(&v).ok_or(BlobError::UnknownVersion(blob, v))?;
        entry.committed = Some((root, size));

        let mut published = Vec::new();
        // Publish the longest committed prefix following last_published.
        loop {
            let next = st.last_published.next();
            let Some(e) = st.pending.get(&next) else { break };
            let Some((root, size)) = e.committed else { break };
            let e = st.pending.remove(&next).expect("present");
            st.published.insert(
                next,
                PublishedVersion {
                    version: next,
                    size,
                    root: Some(root),
                    interval: e.interval,
                    published_at: now,
                    writer: Some(e.client),
                },
            );
            st.last_published = next;
            published.push((next, e.client));
        }
        Ok(published)
    }

    /// The latest published version of a BLOB, as a compact info record.
    pub fn latest_info(&self, blob: BlobId) -> Result<VersionInfo, BlobError> {
        let st = self.blobs.get(&blob).ok_or(BlobError::UnknownBlob(blob))?;
        let v = st.latest();
        Ok(VersionInfo { version: v.version, size: v.size, page_size: st.spec.page_size, root: v.root })
    }

    /// Info for a specific published version.
    pub fn version_info(&self, blob: BlobId, v: VersionId) -> Result<VersionInfo, BlobError> {
        let st = self.blobs.get(&blob).ok_or(BlobError::UnknownBlob(blob))?;
        let rec = st.version(v).ok_or(BlobError::UnknownVersion(blob, v))?;
        Ok(VersionInfo {
            version: rec.version,
            size: rec.size,
            page_size: st.spec.page_size,
            root: rec.root,
        })
    }

    /// Stalled writes that are *actionable*: uncommitted past `timeout`
    /// AND next in publication order (their predecessor is published), so
    /// a recovery agent can publish them as no-ops immediately.
    pub fn actionable_stalled(
        &self,
        now: SimTime,
        timeout: SimDuration,
    ) -> Vec<StalledWrite> {
        let mut out = Vec::new();
        for (id, st) in &self.blobs {
            let next = st.last_published.next();
            if let Some(p) = st.pending.get(&next) {
                if p.committed.is_none() && now.since(p.issued_at) > timeout {
                    out.push(StalledWrite {
                        blob: *id,
                        version: next,
                        interval: p.interval,
                        new_size: p.size_after,
                        page_size: st.spec.page_size,
                    });
                }
            }
        }
        out.sort_by_key(|s| (s.blob, s.version));
        out
    }

    /// Tickets older than `timeout` whose writers never committed. These
    /// stall publication of every later version of the same BLOB: the
    /// caller surfaces them (monitoring raises `vman.stalled_writes`).
    pub fn stalled_tickets(
        &self,
        now: SimTime,
        timeout: SimDuration,
    ) -> Vec<(BlobId, VersionId, ClientId)> {
        let mut out = Vec::new();
        for (id, st) in &self.blobs {
            for (v, p) in &st.pending {
                if p.committed.is_none() && now.since(p.issued_at) > timeout {
                    out.push((*id, *v, p.client));
                }
            }
        }
        out.sort_by_key(|(b, v, _)| (*b, *v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::NodeRange;

    const PAGE: u64 = 8;

    fn spec() -> BlobSpec {
        BlobSpec { page_size: PAGE, replication: 1 }
    }

    fn root_ref(v: u64, pages: u64) -> NodeRef {
        NodeRef::Node { version: VersionId(v), range: NodeRange::root_for(pages) }
    }

    fn t(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    #[test]
    fn create_and_initial_version() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let info = vm.latest_info(b).unwrap();
        assert_eq!(info.version, VersionId::INITIAL);
        assert_eq!(info.size, 0);
        assert!(info.root.is_none());
        assert!(vm.latest_info(BlobId(99)).is_err());
    }

    #[test]
    fn ticket_validates_alignment_and_emptiness() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        assert!(matches!(
            vm.ticket(b, WriteKind::At(3), PAGE, c, t(0)),
            Err(BlobError::Misaligned { .. })
        ));
        assert!(matches!(
            vm.ticket(b, WriteKind::At(0), 3, c, t(0)),
            Err(BlobError::Misaligned { .. })
        ));
        assert!(matches!(vm.ticket(b, WriteKind::At(0), 0, c, t(0)), Err(BlobError::EmptyWrite)));
    }

    #[test]
    fn append_offsets_stack_on_projected_size() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        let t1 = vm.ticket(b, WriteKind::Append, 2 * PAGE, c, t(0)).unwrap();
        let t2 = vm.ticket(b, WriteKind::Append, PAGE, c, t(0)).unwrap();
        assert_eq!(t1.offset, 0);
        assert_eq!(t2.offset, 2 * PAGE, "second append stacks after the first, unpublished one");
        assert_eq!(t2.pending.len(), 1);
        assert_eq!(t2.pending[0].version, t1.version);
        assert_eq!(t2.pending[0].interval, PageInterval::new(0, 2));
        assert_eq!(t2.new_size, 3 * PAGE);
    }

    #[test]
    fn publication_is_strictly_ordered() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c1 = ClientId(1);
        let c2 = ClientId(2);
        let t1 = vm.ticket(b, WriteKind::At(0), PAGE, c1, t(0)).unwrap();
        let t2 = vm.ticket(b, WriteKind::At(PAGE), PAGE, c2, t(0)).unwrap();
        // v2 commits first: nothing publishes yet.
        let pubs = vm.commit(b, t2.version, root_ref(2, 2), 2 * PAGE, t(1)).unwrap();
        assert!(pubs.is_empty());
        assert_eq!(vm.latest_info(b).unwrap().version, VersionId::INITIAL);
        // v1 commits: both publish, in order, acking both writers.
        let pubs = vm.commit(b, t1.version, root_ref(1, 1), PAGE, t(2)).unwrap();
        assert_eq!(pubs, vec![(VersionId(1), c1), (VersionId(2), c2)]);
        let info = vm.latest_info(b).unwrap();
        assert_eq!(info.version, VersionId(2));
        assert_eq!(info.size, 2 * PAGE);
    }

    #[test]
    fn later_ticket_sees_published_base_not_pending_one() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        let t1 = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
        vm.commit(b, t1.version, root_ref(1, 1), PAGE, t(1)).unwrap();
        let t2 = vm.ticket(b, WriteKind::At(0), PAGE, c, t(2)).unwrap();
        assert_eq!(t2.base.version, VersionId(1));
        assert!(t2.pending.is_empty());
        assert_eq!(t2.base.root, Some(root_ref(1, 1)));
    }

    #[test]
    fn version_info_by_number_and_snapshot_isolation() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        let t1 = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
        vm.commit(b, t1.version, root_ref(1, 1), PAGE, t(1)).unwrap();
        let t2 = vm.ticket(b, WriteKind::At(0), 2 * PAGE, c, t(2)).unwrap();
        vm.commit(b, t2.version, root_ref(2, 2), 2 * PAGE, t(3)).unwrap();
        assert_eq!(vm.version_info(b, VersionId(1)).unwrap().size, PAGE);
        assert_eq!(vm.version_info(b, VersionId(2)).unwrap().size, 2 * PAGE);
        assert!(vm.version_info(b, VersionId(9)).is_err());
    }

    #[test]
    fn stalled_tickets_are_reported() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(7);
        let tk = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
        assert!(vm.stalled_tickets(t(5), SimDuration::from_secs(10)).is_empty());
        let stalled = vm.stalled_tickets(t(20), SimDuration::from_secs(10));
        assert_eq!(stalled, vec![(b, tk.version, c)]);
        // Committing clears the stall.
        vm.commit(b, tk.version, root_ref(1, 1), PAGE, t(21)).unwrap();
        assert!(vm.stalled_tickets(t(40), SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    fn forget_version_protects_latest_and_initial() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        for _ in 0..3 {
            let tk = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
            vm.commit(b, tk.version, root_ref(tk.version.0, 1), PAGE, t(1)).unwrap();
        }
        let st = vm.blob_mut(b).unwrap();
        assert!(!st.forget_version(VersionId::INITIAL));
        assert!(!st.forget_version(VersionId(3)), "latest is protected");
        assert!(st.forget_version(VersionId(1)));
        assert!(st.version(VersionId(1)).is_none());
        assert!(st.version(VersionId(2)).is_some());
    }

    #[test]
    fn snapshots_pin_versions_against_forget() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        for _ in 0..3 {
            let tk = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
            vm.commit(b, tk.version, root_ref(tk.version.0, 1), PAGE, t(1)).unwrap();
        }
        let st = vm.blob_mut(b).unwrap();
        assert!(st.snapshot(VersionId(1)));
        assert!(st.snapshot(VersionId(1)), "snapshot is idempotent");
        assert!(!st.snapshot(VersionId(9)), "unpublished versions cannot be pinned");
        assert_eq!(st.snapshots(), vec![VersionId(1)]);
        assert!(st.is_snapshot(VersionId(1)));
        assert!(!st.forget_version(VersionId(1)), "snapshots are protected");
        assert!(st.forget_version(VersionId(2)), "unpinned middles still collect");
        assert!(st.version(VersionId(1)).is_some());
    }

    #[test]
    fn decommission_unpins_everything_and_refuses_writes() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let c = ClientId(1);
        for _ in 0..2 {
            let tk = vm.ticket(b, WriteKind::At(0), PAGE, c, t(0)).unwrap();
            vm.commit(b, tk.version, root_ref(tk.version.0, 1), PAGE, t(1)).unwrap();
        }
        let st = vm.blob_mut(b).unwrap();
        st.snapshot(VersionId(1));
        st.decommission();
        assert!(st.is_decommissioned());
        assert!(st.snapshots().is_empty(), "decommission unpins snapshots");
        assert!(!st.snapshot(VersionId(1)), "no new pins after decommission");
        assert!(st.forget_version(VersionId(1)));
        assert!(st.forget_version(VersionId(2)), "even the latest collects");
        assert!(!st.forget_version(VersionId::INITIAL), "v0 stays as the tombstone");
        assert_eq!(st.latest().version, VersionId::INITIAL, "latest degrades to v0");
        assert!(
            matches!(vm.ticket(b, WriteKind::At(0), PAGE, c, t(2)), Err(BlobError::UnknownBlob(_))),
            "decommissioned BLOBs take no new writes"
        );
    }

    #[test]
    fn ticket_interval_helper() {
        let mut vm = VersionManagerState::new();
        let b = vm.create_blob(spec(), t(0));
        let tk = vm.ticket(b, WriteKind::At(2 * PAGE), 3 * PAGE, ClientId(1), t(0)).unwrap();
        assert_eq!(tk.interval(), PageInterval::new(2, 3));
    }
}
