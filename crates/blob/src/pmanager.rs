//! Provider manager logic: the registry of data/metadata providers and the
//! pluggable chunk-allocation strategies that map new chunks onto
//! providers (paper §III-A: "the provider manager keeps track of the
//! existing data providers and implements the allocation strategies").

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use sads_sim::{NodeId, SimDuration, SimTime};

/// What a provider stores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProviderKind {
    /// Stores chunk payloads.
    Data,
    /// Stores metadata tree nodes.
    Metadata,
}

/// Load snapshot a provider reports in its heartbeat.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ProviderLoad {
    /// Bytes stored.
    pub used: u64,
    /// Chunks (or nodes) stored.
    pub items: u64,
    /// Requests served since the previous heartbeat.
    pub recent_ops: u64,
    /// Fill ratio 0..=1.
    pub fill: f64,
}

/// Registry entry for one provider.
#[derive(Clone, Debug)]
pub struct ProviderInfo {
    /// The provider's node address.
    pub node: NodeId,
    /// Data or metadata.
    pub kind: ProviderKind,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Last reported load.
    pub load: ProviderLoad,
    /// Bytes promised to in-flight allocations but not yet reported in a
    /// heartbeat (avoids dog-piling the same provider between heartbeats).
    pub reserved: u64,
    /// When the last heartbeat arrived.
    pub last_heartbeat: SimTime,
    /// Draining providers receive no new allocations (decommission path).
    pub draining: bool,
}

impl ProviderInfo {
    /// Projected bytes in use, counting unreported reservations.
    pub fn projected_used(&self) -> u64 {
        self.load.used + self.reserved
    }

    /// Can this provider accept `bytes` more?
    pub fn has_room(&self, bytes: u64) -> bool {
        self.projected_used() + bytes <= self.capacity
    }
}

/// The provider registry: membership, heartbeats, failure detection.
#[derive(Debug, Default)]
pub struct ProviderRegistry {
    providers: BTreeMap<NodeId, ProviderInfo>,
}

impl ProviderRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) a provider.
    pub fn register(&mut self, node: NodeId, kind: ProviderKind, capacity: u64, now: SimTime) {
        self.providers.insert(
            node,
            ProviderInfo {
                node,
                kind,
                capacity,
                load: ProviderLoad::default(),
                reserved: 0,
                last_heartbeat: now,
                draining: false,
            },
        );
    }

    /// Record a heartbeat. Unknown nodes are ignored (they must register
    /// first). A heartbeat resets the reservation estimate, since the
    /// reported `used` now includes completed transfers.
    pub fn heartbeat(&mut self, node: NodeId, load: ProviderLoad, now: SimTime) {
        if let Some(p) = self.providers.get_mut(&node) {
            p.load = load;
            p.reserved = 0;
            p.last_heartbeat = now;
        }
    }

    /// Drop providers whose heartbeat is older than `timeout`; returns the
    /// expelled nodes (the replication manager repairs their chunks).
    pub fn expire(&mut self, now: SimTime, timeout: SimDuration) -> Vec<NodeId> {
        let dead: Vec<NodeId> = self
            .providers
            .values()
            .filter(|p| now.since(p.last_heartbeat) > timeout)
            .map(|p| p.node)
            .collect();
        for d in &dead {
            self.providers.remove(d);
        }
        dead
    }

    /// Remove a provider explicitly (crash notification / decommission).
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.providers.remove(&node).is_some()
    }

    /// Mark a provider as draining (no new allocations).
    pub fn set_draining(&mut self, node: NodeId, draining: bool) {
        if let Some(p) = self.providers.get_mut(&node) {
            p.draining = draining;
        }
    }

    /// Look up one provider.
    pub fn get(&self, node: NodeId) -> Option<&ProviderInfo> {
        self.providers.get(&node)
    }

    /// All providers of a kind (including draining ones).
    pub fn of_kind(&self, kind: ProviderKind) -> impl Iterator<Item = &ProviderInfo> {
        self.providers.values().filter(move |p| p.kind == kind)
    }

    /// Providers eligible for new allocations of a kind.
    pub fn allocatable(&self, kind: ProviderKind) -> Vec<&ProviderInfo> {
        self.providers.values().filter(|p| p.kind == kind && !p.draining).collect()
    }

    /// Number of registered providers of a kind.
    pub fn count(&self, kind: ProviderKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Record that `bytes` were promised to `node` by an allocation.
    pub fn reserve(&mut self, node: NodeId, bytes: u64) {
        if let Some(p) = self.providers.get_mut(&node) {
            p.reserved += bytes;
        }
    }

    /// Mutable iterator (strategy-internal).
    pub fn iter(&self) -> impl Iterator<Item = &ProviderInfo> {
        self.providers.values()
    }
}

/// Result of an allocation: for each chunk, the providers that will hold
/// its replicas (all distinct).
pub type Placement = Vec<Vec<NodeId>>;

/// A pluggable strategy mapping `chunks × replication` placements onto the
/// allocatable data providers.
pub trait AllocationStrategy: Send {
    /// Human-readable name (used in benches and reports).
    fn name(&self) -> &'static str;

    /// Choose placements. Returns `None` if fewer than `replication`
    /// distinct providers have room.
    fn allocate(
        &mut self,
        registry: &ProviderRegistry,
        chunks: u32,
        replication: u32,
        chunk_size: u64,
        rng: &mut SmallRng,
    ) -> Option<Placement>;
}

/// Shared preamble: collect candidate providers with room for at least one
/// more chunk, sorted by node id for determinism.
fn candidates(registry: &ProviderRegistry, chunk_size: u64) -> Vec<&ProviderInfo> {
    let mut c: Vec<&ProviderInfo> = registry
        .allocatable(ProviderKind::Data)
        .into_iter()
        .filter(|p| p.has_room(chunk_size))
        .collect();
    c.sort_by_key(|p| p.node);
    c
}

/// Round-robin over the provider ring — BlobSeer's default strategy;
/// maximizes striping across providers.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl AllocationStrategy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn allocate(
        &mut self,
        registry: &ProviderRegistry,
        chunks: u32,
        replication: u32,
        chunk_size: u64,
        _rng: &mut SmallRng,
    ) -> Option<Placement> {
        let c = candidates(registry, chunk_size);
        if c.len() < replication as usize {
            return None;
        }
        let mut out = Vec::with_capacity(chunks as usize);
        for _ in 0..chunks {
            let mut replicas = Vec::with_capacity(replication as usize);
            for r in 0..replication as usize {
                let p = c[(self.cursor + r) % c.len()];
                replicas.push(p.node);
            }
            self.cursor = (self.cursor + 1) % c.len();
            out.push(replicas);
        }
        Some(out)
    }
}

/// Uniformly random placement.
#[derive(Debug, Default)]
pub struct RandomAlloc;

impl AllocationStrategy for RandomAlloc {
    fn name(&self) -> &'static str {
        "random"
    }

    fn allocate(
        &mut self,
        registry: &ProviderRegistry,
        chunks: u32,
        replication: u32,
        chunk_size: u64,
        rng: &mut SmallRng,
    ) -> Option<Placement> {
        let c = candidates(registry, chunk_size);
        if c.len() < replication as usize {
            return None;
        }
        let mut out = Vec::with_capacity(chunks as usize);
        for _ in 0..chunks {
            // Sample `replication` distinct providers.
            let mut picks: Vec<usize> = Vec::with_capacity(replication as usize);
            while picks.len() < replication as usize {
                let i = rng.random_range(0..c.len());
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
            out.push(picks.into_iter().map(|i| c[i].node).collect());
        }
        Some(out)
    }
}

/// Always pick the providers with the smallest projected load.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl AllocationStrategy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn allocate(
        &mut self,
        registry: &ProviderRegistry,
        chunks: u32,
        replication: u32,
        chunk_size: u64,
        _rng: &mut SmallRng,
    ) -> Option<Placement> {
        let c = candidates(registry, chunk_size);
        if c.len() < replication as usize {
            return None;
        }
        // Track projected load locally so one allocation spreads its own
        // chunks instead of stacking them all on the initially-lightest
        // provider.
        let mut loads: Vec<(u64, NodeId)> =
            c.iter().map(|p| (p.projected_used(), p.node)).collect();
        let mut out = Vec::with_capacity(chunks as usize);
        for _ in 0..chunks {
            loads.sort_by_key(|&(used, node)| (used, node));
            let mut replicas = Vec::with_capacity(replication as usize);
            for slot in loads.iter_mut().take(replication as usize) {
                slot.0 += chunk_size;
                replicas.push(slot.1);
            }
            out.push(replicas);
        }
        Some(out)
    }
}

/// Power-of-two-choices: sample two random providers per replica, keep the
/// less loaded — near-optimal balance at O(1) cost.
#[derive(Debug, Default)]
pub struct TwoChoices;

impl AllocationStrategy for TwoChoices {
    fn name(&self) -> &'static str {
        "two_choices"
    }

    fn allocate(
        &mut self,
        registry: &ProviderRegistry,
        chunks: u32,
        replication: u32,
        chunk_size: u64,
        rng: &mut SmallRng,
    ) -> Option<Placement> {
        let c = candidates(registry, chunk_size);
        if c.len() < replication as usize {
            return None;
        }
        let mut extra: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(chunks as usize);
        for _ in 0..chunks {
            let mut replicas: Vec<NodeId> = Vec::with_capacity(replication as usize);
            let mut guard = 0;
            while replicas.len() < replication as usize {
                guard += 1;
                if guard > 64 * replication {
                    // Fall back to scanning for any unused candidate.
                    if let Some(p) = c.iter().find(|p| !replicas.contains(&p.node)) {
                        replicas.push(p.node);
                        continue;
                    }
                    return None;
                }
                let a = c.choose(rng)?;
                let b = c.choose(rng)?;
                let la = a.projected_used() + extra.get(&a.node).copied().unwrap_or(0);
                let lb = b.projected_used() + extra.get(&b.node).copied().unwrap_or(0);
                let pick = if la <= lb { a } else { b };
                if replicas.contains(&pick.node) {
                    continue;
                }
                *extra.entry(pick.node).or_insert(0) += chunk_size;
                replicas.push(pick.node);
            }
            out.push(replicas);
        }
        Some(out)
    }
}

/// Construct a strategy by name (CLI/bench convenience).
pub fn strategy_by_name(name: &str) -> Option<Box<dyn AllocationStrategy>> {
    match name {
        "round_robin" => Some(Box::<RoundRobin>::default()),
        "random" => Some(Box::<RandomAlloc>::default()),
        "least_loaded" => Some(Box::<LeastLoaded>::default()),
        "two_choices" => Some(Box::<TwoChoices>::default()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn reg(n: u32, capacity: u64) -> ProviderRegistry {
        let mut r = ProviderRegistry::new();
        for i in 0..n {
            r.register(NodeId(i), ProviderKind::Data, capacity, SimTime::ZERO);
        }
        r
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn all_strategies() -> Vec<Box<dyn AllocationStrategy>> {
        vec![
            Box::<RoundRobin>::default(),
            Box::<RandomAlloc>::default(),
            Box::<LeastLoaded>::default(),
            Box::<TwoChoices>::default(),
        ]
    }

    #[test]
    fn replicas_are_distinct_providers() {
        let registry = reg(8, 1 << 30);
        for mut s in all_strategies() {
            let placement = s.allocate(&registry, 16, 3, 1 << 20, &mut rng()).unwrap();
            assert_eq!(placement.len(), 16, "{}", s.name());
            for replicas in &placement {
                assert_eq!(replicas.len(), 3);
                let mut d = replicas.clone();
                d.sort();
                d.dedup();
                assert_eq!(d.len(), 3, "{}: replicas must be distinct", s.name());
            }
        }
    }

    #[test]
    fn allocation_fails_without_enough_providers() {
        let registry = reg(2, 1 << 30);
        for mut s in all_strategies() {
            assert!(
                s.allocate(&registry, 1, 3, 1 << 20, &mut rng()).is_none(),
                "{}: 3 replicas from 2 providers must fail",
                s.name()
            );
        }
    }

    #[test]
    fn full_providers_are_skipped() {
        let mut registry = reg(3, 100);
        registry.heartbeat(
            NodeId(0),
            ProviderLoad { used: 100, items: 1, recent_ops: 0, fill: 1.0 },
            SimTime::ZERO,
        );
        for mut s in all_strategies() {
            let placement = s.allocate(&registry, 4, 1, 50, &mut rng()).unwrap();
            for replicas in &placement {
                assert_ne!(replicas[0], NodeId(0), "{}: full provider chosen", s.name());
            }
        }
    }

    #[test]
    fn round_robin_stripes_evenly() {
        let registry = reg(4, 1 << 30);
        let mut s = RoundRobin::default();
        let placement = s.allocate(&registry, 8, 1, 1, &mut rng()).unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in &placement {
            *counts.entry(r[0]).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 2), "8 chunks over 4 providers = 2 each");
    }

    #[test]
    fn least_loaded_prefers_light_providers_and_spreads() {
        let mut registry = reg(3, 1 << 30);
        registry.heartbeat(
            NodeId(0),
            ProviderLoad { used: 1 << 20, items: 1, recent_ops: 0, fill: 0.0 },
            SimTime::ZERO,
        );
        let mut s = LeastLoaded;
        let placement = s.allocate(&registry, 2, 1, 100, &mut rng()).unwrap();
        // Both chunks land on the two empty providers, not stacked on one.
        assert_ne!(placement[0][0], NodeId(0));
        assert_ne!(placement[1][0], NodeId(0));
        assert_ne!(placement[0][0], placement[1][0]);
    }

    #[test]
    fn draining_providers_get_nothing() {
        let mut registry = reg(3, 1 << 30);
        registry.set_draining(NodeId(1), true);
        for mut s in all_strategies() {
            let placement = s.allocate(&registry, 8, 1, 1, &mut rng()).unwrap();
            for r in &placement {
                assert_ne!(r[0], NodeId(1), "{}: draining provider chosen", s.name());
            }
        }
    }

    #[test]
    fn heartbeat_expiry_evicts_dead_providers() {
        let mut registry = reg(3, 1 << 30);
        let later = SimTime::ZERO + SimDuration::from_secs(30);
        registry.heartbeat(NodeId(1), ProviderLoad::default(), later);
        let dead = registry.expire(later, SimDuration::from_secs(10));
        assert_eq!(dead, vec![NodeId(0), NodeId(2)]);
        assert_eq!(registry.count(ProviderKind::Data), 1);
    }

    #[test]
    fn reservations_count_until_next_heartbeat() {
        let mut registry = reg(1, 100);
        registry.reserve(NodeId(0), 80);
        assert!(!registry.get(NodeId(0)).unwrap().has_room(30));
        registry.heartbeat(
            NodeId(0),
            ProviderLoad { used: 10, items: 1, recent_ops: 1, fill: 0.1 },
            SimTime::ZERO,
        );
        assert!(registry.get(NodeId(0)).unwrap().has_room(30));
    }

    #[test]
    fn strategy_lookup_by_name() {
        for n in ["round_robin", "random", "least_loaded", "two_choices"] {
            assert_eq!(strategy_by_name(n).unwrap().name(), n);
        }
        assert!(strategy_by_name("nope").is_none());
    }
}
