//! Instrumentation layer (paper §III-B, layer 3): typed events that
//! BlobSeer actors generate about everything they do, buffered locally and
//! flushed to a monitoring service as [`crate::rpc::Msg::Probe`] batches.
//!
//! "The instrumentation layer enables BlobSeer components to generate and
//! send information related to the events that the BlobSeer nodes respond
//! to" — this module is that layer.

use sads_sim::NodeId;

use crate::model::{BlobId, ChunkKey, ClientId, VersionId};

/// Why a provider refused to serve a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The client is blocked by the security framework.
    Blocked,
    /// Provider storage is full.
    Full,
    /// The request was malformed or targeted nonexistent data.
    Malformed,
}

/// One instrumented event. Approximately 64 bytes on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeEvent {
    /// A data provider stored a chunk.
    ChunkWritten {
        /// Serving provider.
        provider: NodeId,
        /// Writing client.
        client: ClientId,
        /// Chunk identity.
        key: ChunkKey,
        /// Payload size.
        bytes: u64,
    },
    /// A data provider served (or missed) a chunk read.
    ChunkRead {
        /// Serving provider.
        provider: NodeId,
        /// Reading client.
        client: ClientId,
        /// Chunk identity.
        key: ChunkKey,
        /// Payload size (0 on miss).
        bytes: u64,
        /// Whether the chunk existed.
        hit: bool,
    },
    /// A restarted data provider re-announced a chunk it recovered from
    /// its durable backend — the replication manager re-learns placement
    /// from these instead of scheduling repair traffic.
    ChunkRecovered {
        /// Recovering provider.
        provider: NodeId,
        /// Chunk identity.
        key: ChunkKey,
        /// Payload size.
        bytes: u64,
    },
    /// A data provider rejected a request.
    ChunkRejected {
        /// Serving provider.
        provider: NodeId,
        /// Requesting client.
        client: ClientId,
        /// Why.
        reason: RejectReason,
    },
    /// Periodic provider self-report (storage + activity + synthetic
    /// physical parameters, the paper's "CPU load, memory").
    ProviderLoad {
        /// Reporting provider.
        provider: NodeId,
        /// Bytes stored.
        used: u64,
        /// Capacity in bytes.
        capacity: u64,
        /// Items stored.
        items: u64,
        /// Requests since last report.
        recent_ops: u64,
        /// Synthetic CPU load 0..=1 derived from recent activity.
        cpu: f64,
        /// Synthetic memory load 0..=1 derived from fill.
        mem: f64,
    },
    /// The version manager issued a write ticket.
    TicketIssued {
        /// Requesting client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Assigned version.
        version: VersionId,
        /// Write offset (bytes).
        offset: u64,
        /// Write length (bytes).
        len: u64,
    },
    /// The version manager refused a ticket.
    TicketRejected {
        /// Requesting client.
        client: ClientId,
        /// Target BLOB.
        blob: BlobId,
        /// Whether the refusal was a security block (vs a validation
        /// error).
        blocked: bool,
    },
    /// A version became visible.
    VersionPublished {
        /// The BLOB.
        blob: BlobId,
        /// The new version.
        version: VersionId,
        /// BLOB size as of this version.
        size: u64,
        /// The writer.
        writer: ClientId,
    },
    /// A metadata provider stored tree nodes.
    MetaWritten {
        /// Serving metadata provider.
        provider: NodeId,
        /// Node count in the batch.
        nodes: u32,
    },
    /// A metadata provider served tree-node reads.
    MetaRead {
        /// Serving metadata provider.
        provider: NodeId,
        /// Node count requested.
        nodes: u32,
    },
}

impl ProbeEvent {
    /// Approximate wire size of one event.
    pub const WIRE_SIZE: u64 = 64;

    /// The client a security-relevant event is attributed to, if any.
    pub fn client(&self) -> Option<ClientId> {
        match self {
            ProbeEvent::ChunkWritten { client, .. }
            | ProbeEvent::ChunkRead { client, .. }
            | ProbeEvent::ChunkRejected { client, .. }
            | ProbeEvent::TicketIssued { client, .. }
            | ProbeEvent::TicketRejected { client, .. }
            | ProbeEvent::VersionPublished { writer: client, .. } => Some(*client),
            _ => None,
        }
    }
}

/// Per-actor event buffer: accumulate cheaply on the hot path, drain on
/// the periodic instrumentation-flush timer.
#[derive(Debug, Default)]
pub struct Instrument {
    buf: Vec<ProbeEvent>,
    enabled: bool,
    emitted: u64,
}

impl Instrument {
    /// An instrumentation buffer; `enabled == false` turns the layer off
    /// entirely (experiment E1 measures exactly this difference).
    pub fn new(enabled: bool) -> Self {
        Instrument { buf: Vec::new(), enabled, emitted: 0 }
    }

    /// Is instrumentation active?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, ev: ProbeEvent) {
        if self.enabled {
            self.buf.push(ev);
            self.emitted += 1;
        }
    }

    /// Take the buffered events (empties the buffer).
    pub fn drain(&mut self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.buf)
    }

    /// Events currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total events emitted since creation.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(client: u64) -> ProbeEvent {
        ProbeEvent::TicketIssued {
            client: ClientId(client),
            blob: BlobId(1),
            version: VersionId(1),
            offset: 0,
            len: 8,
        }
    }

    #[test]
    fn buffer_accumulates_and_drains() {
        let mut i = Instrument::new(true);
        i.emit(ev(1));
        i.emit(ev(2));
        assert_eq!(i.buffered(), 2);
        let evs = i.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(i.buffered(), 0);
        assert_eq!(i.emitted(), 2, "emitted persists across drains");
    }

    #[test]
    fn disabled_instrumentation_is_a_noop() {
        let mut i = Instrument::new(false);
        i.emit(ev(1));
        assert_eq!(i.buffered(), 0);
        assert_eq!(i.emitted(), 0);
        assert!(i.drain().is_empty());
    }

    #[test]
    fn client_attribution() {
        assert_eq!(ev(5).client(), Some(ClientId(5)));
        let load = ProbeEvent::ProviderLoad {
            provider: NodeId(1),
            used: 0,
            capacity: 1,
            items: 0,
            recent_ops: 0,
            cpu: 0.0,
            mem: 0.0,
        };
        assert_eq!(load.client(), None);
    }
}
