//! # sads-workloads — workload generators for the paper's experiments
//!
//! * [`writer_script`] / [`reader_script`] — the paper's access patterns
//!   ("a number of clients ranging from 5 to 80, each of them writing
//!   1 GB of data to BlobSeer"),
//! * [`DosAttacker`] — malicious clients flooding the data providers with
//!   bogus writes (§IV-C's Denial-of-Service scenario); they stop
//!   attacking a provider once it refuses them (connection-level
//!   blocking), which is what lets throughput recover after enforcement,
//! * [`staggered`] — ramps attacker start times for the detection-delay
//!   experiment.

#![warn(missing_docs)]

use rand::Rng;
use sads_blob::model::{BlobId, BlobSpec, ChunkKey, ClientId, Payload, VersionId};
use sads_blob::rpc::Msg;
use sads_blob::runtime::sim::{BlobRef, ScriptStep};
use sads_blob::WriteKind;
use sads_sim::{Actor, Ctx, Message, MessageExt, NodeId, SimDuration, SimTime};

/// The paper's write-intensive client: create one BLOB, then write
/// `total_bytes` as a sequence of `op_bytes`-sized appends, starting at
/// `start_at`.
pub fn writer_script(
    spec: BlobSpec,
    total_bytes: u64,
    op_bytes: u64,
    start_at: SimTime,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::Create(spec), ScriptStep::WaitUntil(start_at)];
    let mut remaining = total_bytes;
    while remaining > 0 {
        let n = remaining.min(op_bytes);
        script.push(ScriptStep::Write {
            blob: BlobRef::Created(0),
            kind: WriteKind::Append,
            bytes: n,
        });
        remaining -= n;
    }
    script
}

/// A read-intensive client: read `[0, len)` of `blob` `repeat` times.
pub fn reader_script(
    blob: BlobId,
    len: u64,
    repeat: usize,
    start_at: SimTime,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::WaitUntil(start_at)];
    for _ in 0..repeat {
        script.push(ScriptStep::Read { blob: BlobRef::Id(blob), version: None, offset: 0, len });
    }
    script
}

/// A looping mixed workload: write then read back, `rounds` times.
pub fn mixed_script(
    spec: BlobSpec,
    op_bytes: u64,
    rounds: usize,
    start_at: SimTime,
    pause: SimDuration,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::Create(spec), ScriptStep::WaitUntil(start_at)];
    for _ in 0..rounds {
        script.push(ScriptStep::Write {
            blob: BlobRef::Created(0),
            kind: WriteKind::Append,
            bytes: op_bytes,
        });
        script.push(ScriptStep::Read {
            blob: BlobRef::Created(0),
            version: None,
            offset: 0,
            len: op_bytes,
        });
        script.push(ScriptStep::Pause(pause));
    }
    script
}

/// What kind of flood an attacker mounts.
#[derive(Clone, Debug)]
pub enum AttackMode {
    /// Bogus chunk writes: consumes provider *ingress* bandwidth and
    /// wastes storage (the paper's write-intensive scenario).
    BogusWrites {
        /// Bogus chunk size (bytes).
        chunk_bytes: u64,
    },
    /// Amplified reads of real chunks: a ~256 B request makes the
    /// provider ship a full chunk, saturating its *egress* and starving
    /// every other client's responses and write acknowledgements (the
    /// paper's read-intensive scenario). The attacker knows where the
    /// chunks live — it resolved the (public) metadata beforehand, like
    /// any reader would.
    AmplifiedReads {
        /// Known `(provider, chunk)` pairs to request.
        targets: Vec<(NodeId, ChunkKey)>,
    },
}

/// Tuning of one DoS attacker.
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// When the attack begins.
    pub start_at: SimTime,
    /// When the attack ends on its own (if never blocked).
    pub stop_at: SimTime,
    /// The flood variant.
    pub mode: AttackMode,
    /// Requests per second (sprayed over the providers).
    pub rate_per_sec: f64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            start_at: SimTime(30_000_000_000),
            stop_at: SimTime(600_000_000_000),
            mode: AttackMode::BogusWrites { chunk_bytes: 4 << 20 },
            rate_per_sec: 25.0,
        }
    }
}

const ATTACK_TICK: u64 = 1;

/// A malicious client: floods random data providers with bogus chunk
/// writes. Once a provider answers `Blocked`, the attacker stops
/// targeting it (the enforcement layer refused its connections); when all
/// providers are blocked the attack dies and
/// `attacker.silenced_at` is recorded.
pub struct DosAttacker {
    id: ClientId,
    providers: Vec<NodeId>,
    cfg: AttackConfig,
    blocked: std::collections::HashSet<NodeId>,
    next_req: u64,
    sent: u64,
    silenced: bool,
}

impl DosAttacker {
    /// An attacker targeting the given data providers.
    pub fn new(id: ClientId, providers: Vec<NodeId>, cfg: AttackConfig) -> Self {
        assert!(!providers.is_empty());
        DosAttacker {
            id,
            providers,
            cfg,
            blocked: std::collections::HashSet::new(),
            next_req: 1,
            sent: 0,
            silenced: false,
        }
    }

    /// Bogus puts sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Has every provider refused this attacker?
    pub fn silenced(&self) -> bool {
        self.silenced
    }

    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now >= self.cfg.stop_at || self.silenced {
            return;
        }
        let open: Vec<NodeId> = self
            .providers
            .iter()
            .copied()
            .filter(|p| !self.blocked.contains(p))
            .collect();
        if open.is_empty() {
            self.silence(ctx);
            return;
        }
        let req = self.next_req;
        self.next_req += 1;
        match &self.cfg.mode {
            AttackMode::BogusWrites { chunk_bytes } => {
                let target = open[ctx.rng().random_range(0..open.len())];
                // A bogus chunk: a page of a BLOB that will never publish.
                let key = ChunkKey {
                    blob: BlobId(u64::MAX - self.id.0),
                    version: VersionId(u64::MAX),
                    page: self.next_req,
                };
                let data = Payload::Sim(*chunk_bytes);
                ctx.send(target, Box::new(Msg::PutChunk { req, client: self.id, key, data }));
            }
            AttackMode::AmplifiedReads { targets } => {
                let open_targets: Vec<&(NodeId, ChunkKey)> = targets
                    .iter()
                    .filter(|(p, _)| !self.blocked.contains(p))
                    .collect();
                if open_targets.is_empty() {
                    self.silence(ctx);
                    return;
                }
                let (target, key) =
                    *open_targets[ctx.rng().random_range(0..open_targets.len())];
                ctx.send(target, Box::new(Msg::GetChunk { req, client: self.id, key }));
            }
        }
        self.sent += 1;
        ctx.incr("attacker.requests", 1);
        let gap = SimDuration::from_secs_f64(1.0 / self.cfg.rate_per_sec.max(1e-6));
        ctx.set_timer(gap, ATTACK_TICK);
    }

    fn silence(&mut self, ctx: &mut Ctx<'_>) {
        if !self.silenced {
            self.silenced = true;
            ctx.incr("attacker.silenced", 1);
            ctx.record("attacker.silenced_at", ctx.now().as_secs_f64());
        }
    }
}

impl Actor for DosAttacker {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let delay = self.cfg.start_at.since(ctx.now());
        ctx.set_timer(delay, ATTACK_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Message>) {
        let blocked = match msg.downcast_ref::<Msg>() {
            Some(Msg::PutChunkErr { err, .. }) | Some(Msg::GetChunkErr { err, .. }) => {
                *err == sads_blob::rpc::ChunkErr::Blocked
            }
            _ => false,
        };
        if blocked {
            self.blocked.insert(from);
            ctx.incr("attacker.refusals", 1);
            if self.blocked.len() == self.providers.len() {
                self.silence(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == ATTACK_TICK {
            self.fire(ctx);
        }
    }
}

/// Zipf-distributed object popularity: item `0` is the hottest, weights
/// fall off as `1 / (k+1)^s`. The scaling experiment (E12) uses it to
/// model the skewed access pattern a cloud object store sees — a few hot
/// BLOBs absorb most reads.
///
/// Sampling is a precomputed-CDF binary search: `O(n)` to build once,
/// `O(log n)` per draw, no floating-point rejection loops, fully
/// deterministic under the repo's seeded [`SmallRng`](rand::rngs::SmallRng).
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` items with exponent `s` (`s = 0` is uniform,
    /// `s ≈ 1` is the classic web/object-store skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the population empty? (Never true: `new` requires `n > 0`.)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one item index in `[0, n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Open-loop Poisson arrival process: `count` arrival instants after
/// `start`, with exponential inter-arrival gaps at an aggregate
/// `rate_per_sec`. Open-loop means arrivals do **not** wait for earlier
/// requests to finish — the defining property of real client populations
/// (and what closed-loop benchmarks get wrong about overload behavior).
pub fn poisson_arrivals<R: Rng>(
    rng: &mut R,
    rate_per_sec: f64,
    start: SimTime,
    count: usize,
) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let mut out = Vec::with_capacity(count);
    let mut t = start.as_nanos() as f64;
    for _ in 0..count {
        let u: f64 = rng.random_range(0.0..1.0);
        // Inverse-CDF draw of Exp(rate): −ln(1−U)/λ, in nanoseconds.
        let gap_s = -(1.0 - u).ln() / rate_per_sec;
        t += gap_s * 1e9;
        out.push(SimTime(t as u64));
    }
    out
}

/// One open-loop reader for the scaling experiment: sleep until this
/// client's Poisson `arrival`, then issue `reads` reads of `[0, len)` of
/// `blob` (typically a zipf-sampled hot object).
pub fn open_loop_read_script(
    arrival: SimTime,
    blob: BlobId,
    len: u64,
    reads: usize,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::WaitUntil(arrival)];
    for _ in 0..reads {
        script.push(ScriptStep::Read { blob: BlobRef::Id(blob), version: None, offset: 0, len });
    }
    script
}

/// Stagger a value over `[base, base + spread]` for client `i` of `n` —
/// used to ramp attackers in gradually (the paper's detection-delay
/// experiment observes first vs last detection).
pub fn staggered(base: SimTime, spread: SimDuration, i: usize, n: usize) -> SimTime {
    if n <= 1 {
        return base;
    }
    base + SimDuration::from_nanos(spread.as_nanos() * i as u64 / (n as u64 - 1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_script_splits_total_into_ops() {
        let spec = BlobSpec { page_size: 8, replication: 1 };
        let s = writer_script(spec, 100, 40, SimTime(5_000_000_000));
        // Create + WaitUntil + 3 writes (40+40+20).
        assert_eq!(s.len(), 5);
        let sizes: Vec<u64> = s
            .iter()
            .filter_map(|x| match x {
                ScriptStep::Write { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![40, 40, 20]);
    }

    #[test]
    fn reader_script_repeats() {
        let s = reader_script(BlobId(1), 100, 3, SimTime::ZERO);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Read { .. })).count(), 3);
    }

    #[test]
    fn mixed_script_interleaves() {
        let spec = BlobSpec { page_size: 8, replication: 1 };
        let s = mixed_script(spec, 64, 2, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Write { .. })).count(), 2);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Read { .. })).count(), 2);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Pause(_))).count(), 2);
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let z = ZipfSampler::new(100, 1.0);
        assert_eq!(z.len(), 100);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 100);
            counts[k] += 1;
        }
        // Head is much hotter than the middle, middle hotter than tail.
        assert!(counts[0] > 5 * counts[50], "rank 0 must dominate rank 50");
        assert!(counts[0] > counts[1], "monotone head");
        let tail: usize = counts[90..].iter().sum();
        assert!(counts[0] > tail, "head outweighs the last decile");
        // Same seed, same draws.
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn poisson_arrivals_are_ordered_with_the_right_mean_gap() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let rate = 1000.0; // 1k/s => 1ms mean gap
        let start = SimTime(2_000_000_000);
        let arrivals = poisson_arrivals(&mut rng, rate, start, 10_000);
        assert_eq!(arrivals.len(), 10_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "arrivals are sorted");
        assert!(arrivals[0] >= start);
        let span_s = arrivals.last().unwrap().since(start).as_secs_f64();
        let mean_gap_ms = span_s * 1000.0 / 10_000.0;
        assert!(
            (0.9..1.1).contains(&mean_gap_ms),
            "mean inter-arrival {mean_gap_ms:.3} ms should be ~1 ms"
        );
    }

    #[test]
    fn open_loop_read_script_shape() {
        let s = open_loop_read_script(SimTime(1_000_000_000), BlobId(3), 4096, 2);
        assert!(matches!(s[0], ScriptStep::WaitUntil(t) if t == SimTime(1_000_000_000)));
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Read { .. })).count(), 2);
    }

    #[test]
    fn staggering_spans_the_window() {
        let base = SimTime(10_000_000_000);
        let spread = SimDuration::from_secs(30);
        assert_eq!(staggered(base, spread, 0, 4), base);
        assert_eq!(staggered(base, spread, 3, 4), base + spread);
        assert_eq!(staggered(base, spread, 0, 1), base);
        let mid = staggered(base, spread, 1, 4);
        assert!(mid > base && mid < base + spread);
    }
}
