//! # sads-workloads — workload generators for the paper's experiments
//!
//! * [`writer_script`] / [`reader_script`] — the paper's access patterns
//!   ("a number of clients ranging from 5 to 80, each of them writing
//!   1 GB of data to BlobSeer"),
//! * [`DosAttacker`] — malicious clients flooding the data providers with
//!   bogus writes (§IV-C's Denial-of-Service scenario); they stop
//!   attacking a provider once it refuses them (connection-level
//!   blocking), which is what lets throughput recover after enforcement,
//! * [`staggered`] — ramps attacker start times for the detection-delay
//!   experiment.

#![warn(missing_docs)]

use rand::Rng;
use sads_blob::model::{BlobId, BlobSpec, ChunkKey, ClientId, Payload, VersionId};
use sads_blob::rpc::Msg;
use sads_blob::runtime::sim::{BlobRef, ScriptStep};
use sads_blob::WriteKind;
use sads_sim::{Actor, Ctx, Message, MessageExt, NodeId, SimDuration, SimTime};

/// The paper's write-intensive client: create one BLOB, then write
/// `total_bytes` as a sequence of `op_bytes`-sized appends, starting at
/// `start_at`.
pub fn writer_script(
    spec: BlobSpec,
    total_bytes: u64,
    op_bytes: u64,
    start_at: SimTime,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::Create(spec), ScriptStep::WaitUntil(start_at)];
    let mut remaining = total_bytes;
    while remaining > 0 {
        let n = remaining.min(op_bytes);
        script.push(ScriptStep::Write {
            blob: BlobRef::Created(0),
            kind: WriteKind::Append,
            bytes: n,
        });
        remaining -= n;
    }
    script
}

/// A read-intensive client: read `[0, len)` of `blob` `repeat` times.
pub fn reader_script(
    blob: BlobId,
    len: u64,
    repeat: usize,
    start_at: SimTime,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::WaitUntil(start_at)];
    for _ in 0..repeat {
        script.push(ScriptStep::Read { blob: BlobRef::Id(blob), version: None, offset: 0, len });
    }
    script
}

/// A looping mixed workload: write then read back, `rounds` times.
pub fn mixed_script(
    spec: BlobSpec,
    op_bytes: u64,
    rounds: usize,
    start_at: SimTime,
    pause: SimDuration,
) -> Vec<ScriptStep> {
    let mut script = vec![ScriptStep::Create(spec), ScriptStep::WaitUntil(start_at)];
    for _ in 0..rounds {
        script.push(ScriptStep::Write {
            blob: BlobRef::Created(0),
            kind: WriteKind::Append,
            bytes: op_bytes,
        });
        script.push(ScriptStep::Read {
            blob: BlobRef::Created(0),
            version: None,
            offset: 0,
            len: op_bytes,
        });
        script.push(ScriptStep::Pause(pause));
    }
    script
}

/// What kind of flood an attacker mounts.
#[derive(Clone, Debug)]
pub enum AttackMode {
    /// Bogus chunk writes: consumes provider *ingress* bandwidth and
    /// wastes storage (the paper's write-intensive scenario).
    BogusWrites {
        /// Bogus chunk size (bytes).
        chunk_bytes: u64,
    },
    /// Amplified reads of real chunks: a ~256 B request makes the
    /// provider ship a full chunk, saturating its *egress* and starving
    /// every other client's responses and write acknowledgements (the
    /// paper's read-intensive scenario). The attacker knows where the
    /// chunks live — it resolved the (public) metadata beforehand, like
    /// any reader would.
    AmplifiedReads {
        /// Known `(provider, chunk)` pairs to request.
        targets: Vec<(NodeId, ChunkKey)>,
    },
}

/// Tuning of one DoS attacker.
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// When the attack begins.
    pub start_at: SimTime,
    /// When the attack ends on its own (if never blocked).
    pub stop_at: SimTime,
    /// The flood variant.
    pub mode: AttackMode,
    /// Requests per second (sprayed over the providers).
    pub rate_per_sec: f64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            start_at: SimTime(30_000_000_000),
            stop_at: SimTime(600_000_000_000),
            mode: AttackMode::BogusWrites { chunk_bytes: 4 << 20 },
            rate_per_sec: 25.0,
        }
    }
}

const ATTACK_TICK: u64 = 1;

/// A malicious client: floods random data providers with bogus chunk
/// writes. Once a provider answers `Blocked`, the attacker stops
/// targeting it (the enforcement layer refused its connections); when all
/// providers are blocked the attack dies and
/// `attacker.silenced_at` is recorded.
pub struct DosAttacker {
    id: ClientId,
    providers: Vec<NodeId>,
    cfg: AttackConfig,
    blocked: std::collections::HashSet<NodeId>,
    next_req: u64,
    sent: u64,
    silenced: bool,
}

impl DosAttacker {
    /// An attacker targeting the given data providers.
    pub fn new(id: ClientId, providers: Vec<NodeId>, cfg: AttackConfig) -> Self {
        assert!(!providers.is_empty());
        DosAttacker {
            id,
            providers,
            cfg,
            blocked: std::collections::HashSet::new(),
            next_req: 1,
            sent: 0,
            silenced: false,
        }
    }

    /// Bogus puts sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Has every provider refused this attacker?
    pub fn silenced(&self) -> bool {
        self.silenced
    }

    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now >= self.cfg.stop_at || self.silenced {
            return;
        }
        let open: Vec<NodeId> = self
            .providers
            .iter()
            .copied()
            .filter(|p| !self.blocked.contains(p))
            .collect();
        if open.is_empty() {
            self.silence(ctx);
            return;
        }
        let req = self.next_req;
        self.next_req += 1;
        match &self.cfg.mode {
            AttackMode::BogusWrites { chunk_bytes } => {
                let target = open[ctx.rng().random_range(0..open.len())];
                // A bogus chunk: a page of a BLOB that will never publish.
                let key = ChunkKey {
                    blob: BlobId(u64::MAX - self.id.0),
                    version: VersionId(u64::MAX),
                    page: self.next_req,
                };
                let data = Payload::Sim(*chunk_bytes);
                ctx.send(target, Box::new(Msg::PutChunk { req, client: self.id, key, data }));
            }
            AttackMode::AmplifiedReads { targets } => {
                let open_targets: Vec<&(NodeId, ChunkKey)> = targets
                    .iter()
                    .filter(|(p, _)| !self.blocked.contains(p))
                    .collect();
                if open_targets.is_empty() {
                    self.silence(ctx);
                    return;
                }
                let (target, key) =
                    *open_targets[ctx.rng().random_range(0..open_targets.len())];
                ctx.send(target, Box::new(Msg::GetChunk { req, client: self.id, key }));
            }
        }
        self.sent += 1;
        ctx.incr("attacker.requests", 1);
        let gap = SimDuration::from_secs_f64(1.0 / self.cfg.rate_per_sec.max(1e-6));
        ctx.set_timer(gap, ATTACK_TICK);
    }

    fn silence(&mut self, ctx: &mut Ctx<'_>) {
        if !self.silenced {
            self.silenced = true;
            ctx.incr("attacker.silenced", 1);
            ctx.record("attacker.silenced_at", ctx.now().as_secs_f64());
        }
    }
}

impl Actor for DosAttacker {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let delay = self.cfg.start_at.since(ctx.now());
        ctx.set_timer(delay, ATTACK_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Box<dyn Message>) {
        let blocked = match msg.downcast_ref::<Msg>() {
            Some(Msg::PutChunkErr { err, .. }) | Some(Msg::GetChunkErr { err, .. }) => {
                *err == sads_blob::rpc::ChunkErr::Blocked
            }
            _ => false,
        };
        if blocked {
            self.blocked.insert(from);
            ctx.incr("attacker.refusals", 1);
            if self.blocked.len() == self.providers.len() {
                self.silence(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == ATTACK_TICK {
            self.fire(ctx);
        }
    }
}

/// Stagger a value over `[base, base + spread]` for client `i` of `n` —
/// used to ramp attackers in gradually (the paper's detection-delay
/// experiment observes first vs last detection).
pub fn staggered(base: SimTime, spread: SimDuration, i: usize, n: usize) -> SimTime {
    if n <= 1 {
        return base;
    }
    base + SimDuration::from_nanos(spread.as_nanos() * i as u64 / (n as u64 - 1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_script_splits_total_into_ops() {
        let spec = BlobSpec { page_size: 8, replication: 1 };
        let s = writer_script(spec, 100, 40, SimTime(5_000_000_000));
        // Create + WaitUntil + 3 writes (40+40+20).
        assert_eq!(s.len(), 5);
        let sizes: Vec<u64> = s
            .iter()
            .filter_map(|x| match x {
                ScriptStep::Write { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![40, 40, 20]);
    }

    #[test]
    fn reader_script_repeats() {
        let s = reader_script(BlobId(1), 100, 3, SimTime::ZERO);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Read { .. })).count(), 3);
    }

    #[test]
    fn mixed_script_interleaves() {
        let spec = BlobSpec { page_size: 8, replication: 1 };
        let s = mixed_script(spec, 64, 2, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Write { .. })).count(), 2);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Read { .. })).count(), 2);
        assert_eq!(s.iter().filter(|x| matches!(x, ScriptStep::Pause(_))).count(), 2);
    }

    #[test]
    fn staggering_spans_the_window() {
        let base = SimTime(10_000_000_000);
        let spread = SimDuration::from_secs(30);
        assert_eq!(staggered(base, spread, 0, 4), base);
        assert_eq!(staggered(base, spread, 3, 4), base + spread);
        assert_eq!(staggered(base, spread, 0, 1), base);
        let mid = staggered(base, spread, 1, 4);
        assert!(mid > base && mid < base + spread);
    }
}
