//! # sads-telemetry — the live telemetry plane
//!
//! Post-hoc observability ([`MetricSink`](../sads_sim/struct.MetricSink.html)
//! CSVs, `sads-trace` spans) only becomes readable after a run ends. This
//! crate is the *live* counterpart, the substrate the paper's
//! self-adaptation loop evaluates its policies against:
//!
//! * [`Registry`] — a lock-cheap map of `(name, labels)` → counter / gauge /
//!   histogram cells. Interning takes a short mutex hold; the hot path
//!   through a [`Counter`], [`Gauge`] or [`Histogram`] handle is a single
//!   atomic op, safe to call from every actor in both runtimes.
//! * [`Snapshot`] — a structured point-in-time copy of the registry that the
//!   introspection layer ingests into its time-series machinery and the SLO
//!   alert engine evaluates burn-rate rules over.
//! * [`render_prometheus`] / [`parse_prometheus`] — Prometheus text
//!   exposition (served by the object gateway's `get_metrics()`), plus a
//!   small parser so tests can round-trip the format.
//! * [`ProcSampler`] — `/proc/self/{stat,statm,smaps_rollup}` readings
//!   exported as `proc.*` gauges (RSS + software high-water, page faults,
//!   mapped bytes), the memory-state attribution the read@256×32
//!   bistability diagnosis needed.
//! * [`HealthState`] and [`derive_health`] — per-node Ok/Degraded/Down
//!   derived from heartbeat gauges, the shared health model of the sim and
//!   threaded runtimes.
//! * [`export_span_stats`] — mirrors `SpanSink`'s dropped-span counter and
//!   per-`(service, op)` latency totals into the registry so trace loss is
//!   visible at runtime instead of silent.
//!
//! Registry operations never touch an event queue, a clock, or an RNG, so
//! enabling telemetry cannot perturb a deterministic simulation schedule —
//! the `telemetry` integration test pins that with `World::event_digest()`.

#![warn(missing_docs)]

mod expose;
mod health;
mod procstat;
mod registry;

pub use expose::{parse_prometheus, render_prometheus, sanitize_metric_name, ParsedSample};
pub use health::{derive_health, HealthPolicy, HealthState, NodeHealth, HEARTBEAT_GAUGE};
pub use procstat::{
    parse_proc_stat, parse_proc_statm, parse_smaps_rollup_rss, ProcSample, ProcSampler,
};
pub use registry::{
    Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, Registry, Sample, SampleValue,
    Snapshot,
};

use sads_trace::SpanSink;

/// Mirror a [`SpanSink`]'s loss counter and per-`(service, op)` histogram
/// totals into `reg` as gauges (`trace.dropped_spans`,
/// `trace.retained_spans`, `trace.span_count`, `trace.span_mean_ns`,
/// `trace.span_p99_ns`). Values are absolute snapshots, so repeated calls
/// simply refresh them.
pub fn export_span_stats(reg: &Registry, sink: &SpanSink) {
    reg.set("trace.dropped_spans", &[], sink.dropped() as f64);
    reg.set("trace.retained_spans", &[], sink.len() as f64);
    for ((service, op), h) in sink.histograms() {
        let labels = [("service", service), ("op", op)];
        reg.set("trace.span_count", &labels, h.count as f64);
        reg.set("trace.span_mean_ns", &labels, h.mean_ns);
        reg.set("trace.span_p99_ns", &labels, h.p99 as f64);
    }
}

#[cfg(test)]
mod span_export_tests {
    use super::*;
    use sads_trace::{SpanClass, SpanKind, SpanRecord};

    #[test]
    fn span_stats_surface_as_gauges() {
        let sink = SpanSink::with_capacity(1);
        for d in [10_000u64, 20_000] {
            sink.record(SpanRecord {
                trace: 1,
                span: sink.next_id(),
                parent: 0,
                service: "client",
                op: "write",
                node: 1,
                start_ns: 0,
                end_ns: d,
                kind: SpanKind::Op,
                class: SpanClass::Control,
                queue_ns: 0,
                xfer_ns: 0,
                wire_ns: 0,
            });
        }
        let reg = Registry::new();
        export_span_stats(&reg, &sink);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("trace.dropped_spans", &[]), Some(1.0));
        let labels = [("op", "write"), ("service", "client")];
        assert_eq!(snap.gauge("trace.span_count", &labels), Some(2.0));
        assert!(snap.gauge("trace.span_mean_ns", &labels).unwrap() > 0.0);
    }
}
