//! Process memory/scheduler telemetry from `/proc/self`.
//!
//! The read@256×32 bistability (ROADMAP) is host-memory-state dependent —
//! THP coalescing and page-cache layout, visible only through page-fault
//! and RSS counters. This module samples `/proc/self/stat`,
//! `/proc/self/statm` and (when present) `/proc/self/smaps_rollup` and
//! exports the result as `proc.*` gauges, so a slow round carries its
//! memory attribution in the same snapshot the flight recorder dumps.
//!
//! Absolute values are exported (gauges); consumers that want per-round
//! deltas (e.g. `exp_perf`) subtract successive samples themselves.

use crate::registry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Conventional Linux page size; /proc counters are page-denominated.
const PAGE_BYTES: u64 = 4096;

/// One point-in-time reading of the process's memory counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcSample {
    /// Resident set size, bytes.
    pub rss_bytes: u64,
    /// Minor page faults (no I/O) since process start.
    pub minflt: u64,
    /// Major page faults (I/O required) since process start.
    pub majflt: u64,
    /// Total mapped address space, bytes.
    pub mapped_bytes: u64,
    /// Kernel thread count.
    pub threads: u64,
}

/// Parse the post-`comm` tail of `/proc/self/stat`. The `comm` field may
/// itself contain spaces and parens, so fields are indexed from the byte
/// after the *last* `)`: state=0, minflt=7, majflt=9, num_threads=17,
/// rss(pages)=21.
pub fn parse_proc_stat(stat: &str) -> Option<ProcSample> {
    let tail = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = tail.split_whitespace().collect();
    Some(ProcSample {
        minflt: fields.get(7)?.parse().ok()?,
        majflt: fields.get(9)?.parse().ok()?,
        threads: fields.get(17)?.parse().ok()?,
        rss_bytes: fields.get(21)?.parse::<u64>().ok()? * PAGE_BYTES,
        mapped_bytes: 0,
    })
}

/// Parse `/proc/self/statm`: `size resident …` in pages. Returns
/// `(mapped_bytes, rss_bytes)`.
pub fn parse_proc_statm(statm: &str) -> Option<(u64, u64)> {
    let mut it = statm.split_whitespace();
    let size: u64 = it.next()?.parse().ok()?;
    let resident: u64 = it.next()?.parse().ok()?;
    Some((size * PAGE_BYTES, resident * PAGE_BYTES))
}

/// Parse `/proc/self/smaps_rollup`'s `Rss: N kB` line, bytes. The file
/// needs a kernel ≥ 4.14 and may be absent in minimal containers.
pub fn parse_smaps_rollup_rss(rollup: &str) -> Option<u64> {
    for line in rollup.lines() {
        if let Some(rest) = line.strip_prefix("Rss:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Samples `/proc/self` and exports `proc.*` gauges. Keeps a software
/// RSS high-water mark across samples (monotone since sampler creation),
/// because a slow round's peak footprint is often gone by the time the
/// next heartbeat reads `/proc`.
#[derive(Default)]
pub struct ProcSampler {
    rss_hwm: AtomicU64,
}

impl ProcSampler {
    /// Fresh sampler with a zero high-water mark.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read `/proc/self/{stat,statm,smaps_rollup}`. `None` on platforms
    /// without procfs (the telemetry plane then simply lacks `proc.*`).
    pub fn sample(&self) -> Option<ProcSample> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let mut s = parse_proc_stat(&stat)?;
        if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
            if let Some((mapped, rss)) = parse_proc_statm(&statm) {
                s.mapped_bytes = mapped;
                s.rss_bytes = rss;
            }
        }
        // smaps_rollup's Rss accounts huge pages correctly where statm
        // can lag; prefer it when the kernel provides the file.
        if let Ok(rollup) = std::fs::read_to_string("/proc/self/smaps_rollup") {
            if let Some(rss) = parse_smaps_rollup_rss(&rollup) {
                s.rss_bytes = rss;
            }
        }
        self.rss_hwm.fetch_max(s.rss_bytes, Ordering::Relaxed);
        Some(s)
    }

    /// RSS high-water observed across this sampler's lifetime, bytes.
    pub fn rss_hwm_bytes(&self) -> u64 {
        self.rss_hwm.load(Ordering::Relaxed)
    }

    /// Sample and export the `proc.*` gauge family into `reg`:
    /// `proc.rss_bytes`, `proc.rss_hwm_bytes`, `proc.minflt`,
    /// `proc.majflt`, `proc.mapped_bytes`, `proc.threads`.
    pub fn sample_into(&self, reg: &Registry) -> Option<ProcSample> {
        let s = self.sample()?;
        reg.set("proc.rss_bytes", &[], s.rss_bytes as f64);
        reg.set("proc.rss_hwm_bytes", &[], self.rss_hwm_bytes() as f64);
        reg.set("proc.minflt", &[], s.minflt as f64);
        reg.set("proc.majflt", &[], s.majflt as f64);
        reg.set("proc.mapped_bytes", &[], s.mapped_bytes as f64);
        reg.set("proc.threads", &[], s.threads as f64);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_parses_past_hostile_comm() {
        // comm contains spaces and a close-paren; fields follow the LAST ')'.
        let stat = "1234 (a (we)ird name) S 1 1 1 0 -1 4194560 9001 0 7 0 \
                    12 4 0 0 20 0 3 0 100 222822400 4096 18446744073709551615 \
                    0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0";
        let s = parse_proc_stat(stat).unwrap();
        assert_eq!(s.minflt, 9001);
        assert_eq!(s.majflt, 7);
        assert_eq!(s.threads, 3);
        assert_eq!(s.rss_bytes, 4096 * PAGE_BYTES);
    }

    #[test]
    fn statm_and_rollup_parse() {
        assert_eq!(parse_proc_statm("54411 2861 1479 6 0 4873 0\n"), Some((54411 * 4096, 2861 * 4096)));
        let rollup = "00400000-7fff Rollup\nRss:            11444 kB\nPss: 9000 kB\n";
        assert_eq!(parse_smaps_rollup_rss(rollup), Some(11444 * 1024));
        assert_eq!(parse_smaps_rollup_rss("nothing here"), None);
    }

    #[test]
    fn live_sample_exports_gauges() {
        // The test host is Linux; a missing procfs would be a real signal.
        let sampler = ProcSampler::new();
        let reg = Registry::new();
        let s = sampler.sample_into(&reg).expect("/proc/self must be readable");
        assert!(s.rss_bytes > 0);
        assert!(s.threads >= 1);
        let snap = reg.snapshot();
        assert!(snap.gauge("proc.rss_bytes", &[]).unwrap() > 0.0);
        assert!(
            snap.gauge("proc.rss_hwm_bytes", &[]).unwrap()
                >= snap.gauge("proc.rss_bytes", &[]).unwrap()
        );
        assert!(snap.gauge("proc.minflt", &[]).is_some());
        assert!(snap.gauge("proc.majflt", &[]).is_some());
        // Touch some memory: the HWM can only grow.
        let before = sampler.rss_hwm_bytes();
        let big = vec![7u8; 8 << 20];
        std::hint::black_box(&big);
        sampler.sample();
        assert!(sampler.rss_hwm_bytes() >= before);
    }
}
