//! Prometheus text exposition: rendering a [`Snapshot`] and a small parser
//! used by the round-trip tests.

use crate::registry::{Sample, SampleValue, Snapshot};

/// Map a dotted internal metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing `sads_`:
/// `provider.cache_hits` → `sads_provider_cache_hits`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("sads_");
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Render a registry [`Snapshot`] in the Prometheus text exposition
/// format: one `# TYPE` line per family, then one sample line per label
/// set (histograms expand to `_bucket`/`_sum`/`_count` series).
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for s in &snap.samples {
        let pname = sanitize_metric_name(&s.name);
        if s.name != last_family {
            let kind = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {pname} {kind}\n"));
            last_family = &s.name;
        }
        render_sample(&mut out, &pname, s);
    }
    out
}

fn render_sample(out: &mut String, pname: &str, s: &Sample) {
    match &s.value {
        SampleValue::Counter(c) => {
            out.push_str(&format!("{pname}{} {c}\n", fmt_labels(&s.labels, None)));
        }
        SampleValue::Gauge(g) => {
            out.push_str(&format!("{pname}{} {}\n", fmt_labels(&s.labels, None), fmt_value(*g)));
        }
        SampleValue::Histogram(h) => {
            for (i, (bound, cum)) in h.buckets.iter().enumerate() {
                out.push_str(&format!(
                    "{pname}_bucket{} {cum}",
                    fmt_labels(&s.labels, Some(("le", fmt_value(*bound))))
                ));
                // OpenMetrics exemplar: `… # {trace_id="…"} value`, linking
                // the bucket to one concrete (dumpable) trace.
                if let Some(ex) = h.exemplars.get(i).copied().flatten() {
                    out.push_str(&format!(
                        " # {{trace_id=\"{:x}\"}} {}",
                        ex.trace_id,
                        fmt_value(ex.value)
                    ));
                }
                out.push('\n');
            }
            out.push_str(&format!("{pname}_sum{} {}\n", fmt_labels(&s.labels, None), h.sum));
            out.push_str(&format!("{pname}_count{} {}\n", fmt_labels(&s.labels, None), h.count));
        }
    }
}

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Prometheus-side metric name (already sanitized, may carry a
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// OpenMetrics exemplar trailer, if present: `(trace_id, value)`.
    pub exemplar: Option<(String, f64)>,
}

/// Parse Prometheus text exposition back into samples. Comment (`# …`) and
/// blank lines are skipped; malformed lines yield `Err` with the offending
/// line. Exists so CI can prove `render_prometheus` emits the format it
/// claims to.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).ok_or_else(|| format!("malformed exposition line: {line}"))?);
    }
    Ok(out)
}

/// Index of the first `}` in `body` that is outside a quoted label value
/// (label values may legally contain `}`; quotes may contain `\"`).
fn find_close_brace(body: &str) -> Option<usize> {
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in body.char_indices() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '}' {
            return Some(i);
        }
    }
    None
}

fn parse_value(tok: &str) -> Option<f64> {
    match tok {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        v => v.parse().ok(),
    }
}

fn parse_line(line: &str) -> Option<ParsedSample> {
    let (name, mut labels, rest) = match line.find('{') {
        Some(open) => {
            let body = &line[open + 1..];
            let close = find_close_brace(body)?;
            (
                line[..open].to_string(),
                parse_labels(&body[..close])?,
                body[close + 1..].trim_start(),
            )
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next()?;
            (name.to_string(), Vec::new(), it.next()?.trim_start())
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next()?.is_ascii_digit()
    {
        return None;
    }
    let mut parts = rest.splitn(2, char::is_whitespace);
    let value = parse_value(parts.next()?)?;
    let trailer = parts.next().map(str::trim).unwrap_or("");
    let exemplar = if trailer.is_empty() {
        None
    } else {
        // OpenMetrics exemplar trailer: `# {labels} value`.
        let ex = trailer.strip_prefix('#')?.trim_start().strip_prefix('{')?;
        let close = find_close_brace(ex)?;
        let ex_labels = parse_labels(&ex[..close])?;
        let ex_value = parse_value(ex[close + 1..].trim())?;
        let trace_id = ex_labels
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.clone())?;
        Some((trace_id, ex_value))
    };
    labels.sort();
    Some(ParsedSample { name, labels, value, exemplar })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return None;
        }
        // Walk to the closing unescaped quote.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    // The exposition format's escapes: `\\`, `\"`, `\n`.
                    // Anything else keeps the escaped char literally.
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        out.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_metric_name("provider.cache_hits"), "sads_provider_cache_hits");
        assert_eq!(sanitize_metric_name("client.err.no-provider"), "sads_client_err_no_provider");
        assert_eq!(sanitize_metric_name("9lives"), "sads__9lives");
    }

    #[test]
    fn render_parse_roundtrip() {
        let reg = Registry::new();
        reg.inc("provider.cache_hits", &[("node", "4")], 7);
        reg.set("pool.providers", &[], 12.5);
        reg.observe("gateway.op_seconds", &[("op", "get")], 0.02);
        reg.observe("gateway.op_seconds", &[("op", "get")], 3.0);

        let text = reg.render();
        let parsed = parse_prometheus(&text).expect("render emits parseable text");

        let find = |name: &str, labels: &[(&str, &str)]| {
            let mut want: Vec<(String, String)> =
                labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
            want.sort();
            parsed
                .iter()
                .find(|p| p.name == name && p.labels == want)
                .map(|p| p.value)
        };

        assert_eq!(find("sads_provider_cache_hits", &[("node", "4")]), Some(7.0));
        assert_eq!(find("sads_pool_providers", &[]), Some(12.5));
        assert_eq!(find("sads_gateway_op_seconds_count", &[("op", "get")]), Some(2.0));
        let sum = find("sads_gateway_op_seconds_sum", &[("op", "get")]).unwrap();
        assert!((sum - 3.02).abs() < 1e-12);
        // The +Inf bucket holds every observation.
        assert_eq!(find("sads_gateway_op_seconds_bucket", &[("le", "+Inf"), ("op", "get")]), Some(2.0));
        // TYPE lines present for each family.
        assert!(text.contains("# TYPE sads_provider_cache_hits counter"));
        assert!(text.contains("# TYPE sads_gateway_op_seconds histogram"));
    }

    #[test]
    fn parser_rejects_garbage_and_handles_escapes() {
        assert!(parse_prometheus("not a metric line at all !!!").is_err());
        let ok = parse_prometheus("m{k=\"a\\\"b\"} 1\n# comment\n\n").unwrap();
        assert_eq!(ok[0].labels, vec![("k".to_string(), "a\"b".to_string())]);
        assert!(parse_prometheus("3bad 1").is_err());
    }

    #[test]
    fn hostile_label_values_roundtrip() {
        // Every escape-relevant char the exposition format defines —
        // quote, newline, backslash — plus mixes of them.
        let hostile = [
            "plain",
            "has \"quotes\"",
            "line\nbreak",
            "back\\slash",
            "all\\of\"them\ntogether",
            "trailing\\",
            "\n",
            "\\n", // a literal backslash-n, distinct from a newline
        ];
        let reg = Registry::new();
        for (i, v) in hostile.iter().enumerate() {
            reg.inc("scan.paths", &[("path", v), ("i", &i.to_string())], i as u64 + 1);
        }
        let text = reg.render();
        let parsed = parse_prometheus(&text).expect("hostile labels must stay parseable");
        for (i, v) in hostile.iter().enumerate() {
            let want_i = i.to_string();
            let hit = parsed
                .iter()
                .find(|p| p.labels.iter().any(|(k, val)| k == "i" && val == &want_i))
                .unwrap_or_else(|| panic!("sample {i} missing"));
            let path = hit.labels.iter().find(|(k, _)| k == "path").map(|(_, v)| v.as_str());
            assert_eq!(path, Some(*v), "label value {i} must round-trip exactly");
            assert_eq!(hit.value, i as f64 + 1.0);
        }
    }

    #[test]
    fn exemplars_render_and_roundtrip() {
        let reg = Registry::new();
        let h = reg.histogram("gateway.op_seconds", &[("op", "get")]);
        h.observe(0.0005);
        h.observe_traced(42.0, 0xdead_beef);
        let text = reg.render();
        assert!(
            text.contains("# {trace_id=\"deadbeef\"} 42"),
            "exemplar must render in OpenMetrics syntax:\n{text}"
        );
        let parsed = parse_prometheus(&text).expect("exemplar lines must stay parseable");
        let bucket = parsed
            .iter()
            .find(|p| p.name == "sads_gateway_op_seconds_bucket" && p.exemplar.is_some())
            .expect("one bucket line carries the exemplar");
        assert_eq!(bucket.exemplar, Some(("deadbeef".to_string(), 42.0)));
        // Non-exemplar lines parse with exemplar == None.
        assert!(parsed.iter().any(|p| p.exemplar.is_none()));
    }

    #[test]
    fn label_values_containing_braces_parse() {
        let ok = parse_prometheus("m{k=\"a}b\"} 7").unwrap();
        assert_eq!(ok[0].labels, vec![("k".to_string(), "a}b".to_string())]);
        assert_eq!(ok[0].value, 7.0);
    }
}
