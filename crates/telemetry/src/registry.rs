//! The labeled metrics registry: `(name, labels)` → atomic cells.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram bucket upper bounds (seconds-flavored: covers
/// sub-millisecond RPCs through multi-minute transfers).
pub(crate) const DEFAULT_BOUNDS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    120.0, 300.0,
];

type Key = (String, Vec<(String, String)>);

#[derive(Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

/// A latency exemplar: the trace id of one observation that landed in a
/// bucket, so a slow percentile links straight to a dumpable trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The exemplified observation's value.
    pub value: f64,
    /// Trace id of the request that produced it.
    pub trace_id: u64,
}

pub(crate) struct HistCell {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    /// Latest exemplar per bucket (incl. +Inf). Updated only on traced
    /// observations — rare relative to plain `observe` — so the mutex is
    /// off the hot path entirely.
    exemplars: Mutex<Vec<Option<Exemplar>>>,
}

impl HistCell {
    fn new(bounds: &[f64]) -> Self {
        HistCell {
            bounds: bounds.to_vec(),
            // One extra slot for the implicit +Inf bucket.
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplars: Mutex::new(vec![None; bounds.len() + 1]),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
    }

    /// Remember `trace_id` as the exemplar for the bucket `v` falls in
    /// (does not count the observation — pair with `observe` when the
    /// value was not already counted).
    fn attach(&self, v: f64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        let mut ex = self.exemplars.lock().expect("exemplar slots poisoned");
        ex[idx] = Some(Exemplar { value: v, trace_id });
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(self.bounds.len() + 1);
        for (i, b) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            buckets.push((*b, cumulative));
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        buckets.push((f64::INFINITY, cumulative));
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            buckets,
            exemplars: self.exemplars.lock().expect("exemplar slots poisoned").clone(),
        }
    }
}

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Monotone counter handle; cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Set-or-adjust gauge handle; cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        atomic_f64_add(&self.0, delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucketed histogram handle; cloning shares the underlying cell.
#[derive(Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        self.0.observe(v);
    }

    /// Record one observation and remember `trace_id` as the exemplar of
    /// the bucket it lands in.
    pub fn observe_traced(&self, v: f64, trace_id: u64) {
        self.0.observe(v);
        self.0.attach(v, trace_id);
    }

    /// Attach an exemplar for an observation that was **already counted**
    /// via [`Histogram::observe`] (e.g. a request timed by generic
    /// instrumentation whose trace id only becomes known later). A
    /// `trace_id` of 0 is ignored.
    pub fn attach_exemplar(&self, v: f64, trace_id: u64) {
        self.0.attach(v, trace_id);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// A live, labeled metrics registry shared by every actor of a deployment.
///
/// Registration (`counter`/`gauge`/`histogram`) interns the `(name, labels)`
/// key under a mutex and hands back a lock-free handle; the one-shot
/// convenience methods (`inc`/`set`/`observe`) pay one mutex hold per call,
/// which matches what the runtimes already pay for their `MetricSink`, so
/// bridging existing instrumentation through them is free of new contention
/// classes. Nothing in here touches clocks, RNGs, or event queues —
/// telemetry cannot perturb a deterministic schedule.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<HashMap<Key, Cell>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut l: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        l.sort();
        (name.to_string(), l)
    }

    fn cell(&self, name: &str, labels: &[(&str, &str)], make: impl FnOnce() -> Cell) -> Cell {
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        let cell = inner.entry(Self::key(name, labels)).or_insert_with(make);
        cell.clone()
    }

    /// Get-or-create a counter. Panics if `(name, labels)` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, labels, || Cell::Counter(Arc::new(AtomicU64::new(0)))) {
            Cell::Counter(c) => Counter(c),
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Get-or-create a gauge. Panics if `(name, labels)` is already
    /// registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, labels, || Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))) {
            Cell::Gauge(g) => Gauge(g),
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Get-or-create a histogram with the default (seconds-flavored)
    /// buckets. Panics if `(name, labels)` is already registered as a
    /// different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.cell(name, labels, || Cell::Histogram(Arc::new(HistCell::new(DEFAULT_BOUNDS)))) {
            Cell::Histogram(h) => Histogram(h),
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// One-shot counter bump.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        self.counter(name, labels).inc(n);
    }

    /// One-shot gauge set.
    pub fn set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauge(name, labels).set(v);
    }

    /// Get-or-create a histogram with explicit bucket upper bounds (for
    /// count-flavored distributions like dispatch batch sizes where the
    /// seconds-flavored defaults are meaningless). If the `(name, labels)`
    /// key already exists as a histogram its original bounds are kept.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.cell(name, labels, || Cell::Histogram(Arc::new(HistCell::new(bounds)))) {
            Cell::Histogram(h) => Histogram(h),
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// One-shot histogram observation.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histogram(name, labels).observe(v);
    }

    /// One-shot exemplar attach (see [`Histogram::attach_exemplar`]).
    pub fn attach_exemplar(&self, name: &str, labels: &[(&str, &str)], v: f64, trace_id: u64) {
        self.histogram(name, labels).attach_exemplar(v, trace_id);
    }

    /// Structured point-in-time copy, sorted by `(name, labels)` for
    /// stable output.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        let mut samples: Vec<Sample> = inner
            .iter()
            .map(|((name, labels), cell)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match cell {
                    Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => {
                        SampleValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Cell::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        drop(inner);
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { samples }
    }

    /// Render the current state in Prometheus text exposition format.
    pub fn render(&self) -> String {
        crate::expose::render_prometheus(&self.snapshot())
    }
}

/// One `(name, labels)` series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Dotted metric name as registered (e.g. `provider.cache_hits`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SampleValue,
}

/// A sample's value, tagged by metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of a histogram cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// `(upper_bound, cumulative_count)` pairs ending with `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// Latest exemplar per bucket, aligned with `buckets`.
    pub exemplars: Vec<Option<Exemplar>>,
}

/// Structured registry snapshot: every sample, sorted by `(name, labels)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All samples.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| &s.value)
    }

    /// Counter value for an exact `(name, labels)` key.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)? {
            SampleValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value for an exact `(name, labels)` key.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)? {
            SampleValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Sum of a counter family across all label sets; `None` if the family
    /// does not exist at all.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let mut seen = false;
        let mut total = 0u64;
        for s in &self.samples {
            if s.name == name {
                if let SampleValue::Counter(c) = &s.value {
                    seen = true;
                    total += c;
                }
            }
        }
        seen.then_some(total)
    }

    /// Sum of a gauge family across all label sets; `None` if absent.
    pub fn gauge_total(&self, name: &str) -> Option<f64> {
        let mut seen = false;
        let mut total = 0.0;
        for s in &self.samples {
            if s.name == name {
                if let SampleValue::Gauge(g) = &s.value {
                    seen = true;
                    total += g;
                }
            }
        }
        seen.then_some(total)
    }

    /// All samples of one family.
    pub fn family<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Distinct metric family names, sorted.
    pub fn families(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.samples.iter().map(|s| s.name.as_str()).collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("client.rpc_retries", &[("node", "3")]);
        c.inc(2);
        reg.inc("client.rpc_retries", &[("node", "3")], 1);
        reg.set("pool.providers", &[], 16.0);
        let h = reg.histogram("gateway.op_seconds", &[("op", "get")]);
        h.observe(0.004);
        h.observe(0.2);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("client.rpc_retries", &[("node", "3")]), Some(3));
        assert_eq!(snap.gauge("pool.providers", &[]), Some(16.0));
        match snap.find("gateway.op_seconds", &[("op", "get")]).unwrap() {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.count, 2);
                assert!((hs.sum - 0.204).abs() < 1e-12);
                let inf = hs.buckets.last().unwrap();
                assert!(inf.0.is_infinite());
                assert_eq!(inf.1, 2);
                // Buckets are cumulative and monotone.
                assert!(hs.buckets.windows(2).all(|w| w[0].1 <= w[1].1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exemplars_land_in_the_right_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("gateway.op_seconds", &[("op", "get")]);
        h.observe(0.0004);
        h.observe_traced(0.03, 0xabcd);
        // Attach-only must not change the count.
        h.attach_exemplar(0.0004, 0x1111);
        reg.attach_exemplar("gateway.op_seconds", &[("op", "get")], 999.0, 0x2222);

        let snap = reg.snapshot();
        match snap.find("gateway.op_seconds", &[("op", "get")]).unwrap() {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.count, 2, "attach_exemplar must not count");
                assert_eq!(hs.exemplars.len(), hs.buckets.len());
                // 0.03 → the le=0.05 bucket; 0.0004 → le=0.001; 999 → +Inf.
                let at = |bound: f64| {
                    let i = hs.buckets.iter().position(|(b, _)| *b == bound).unwrap();
                    hs.exemplars[i].unwrap()
                };
                assert_eq!(at(0.05).trace_id, 0xabcd);
                assert_eq!(at(0.001).trace_id, 0x1111);
                let inf = hs.exemplars.last().unwrap().unwrap();
                assert_eq!(inf.trace_id, 0x2222);
                assert_eq!(inf.value, 999.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn custom_bounds_histograms_bucket_counts() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("runtime.dispatch_batch", &[("shard", "0")], &[1.0, 4.0]);
        h.observe(1.0);
        h.observe(3.0);
        h.observe(100.0);
        let snap = reg.snapshot();
        match snap.find("runtime.dispatch_batch", &[("shard", "0")]).unwrap() {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.buckets, vec![(1.0, 1), (4.0, 2), (f64::INFINITY, 3)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_trace_ids_never_become_exemplars() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]);
        h.observe_traced(0.01, 0);
        let snap = reg.snapshot();
        match snap.find("lat", &[]).unwrap() {
            SampleValue::Histogram(hs) => {
                assert!(hs.exemplars.iter().all(Option::is_none));
                assert_eq!(hs.count, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.inc("x", &[("a", "1"), ("b", "2")], 1);
        reg.inc("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.snapshot().counter("x", &[("a", "1"), ("b", "2")]), Some(2));
    }

    #[test]
    fn totals_sum_across_label_sets() {
        let reg = Registry::new();
        reg.inc("reads", &[("node", "1")], 4);
        reg.inc("reads", &[("node", "2")], 6);
        reg.set("fill", &[("node", "1")], 0.25);
        reg.set("fill", &[("node", "2")], 0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("reads"), Some(10));
        assert_eq!(snap.gauge_total("fill"), Some(1.0));
        assert_eq!(snap.counter_total("missing"), None);
        assert_eq!(snap.families(), vec!["fill", "reads"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_programming_errors() {
        let reg = Registry::new();
        reg.inc("dual", &[], 1);
        reg.set("dual", &[], 1.0);
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let reg = Arc::new(Registry::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            joins.push(std::thread::spawn(move || {
                let c = reg.counter("spins", &[]);
                let g = reg.gauge("level", &[]);
                let h = reg.histogram("lat", &[]);
                for _ in 0..1000 {
                    c.inc(1);
                    g.add(1.0);
                    h.observe(0.01);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("spins", &[]), Some(4000));
        assert_eq!(snap.gauge("level", &[]), Some(4000.0));
        match snap.find("lat", &[]).unwrap() {
            SampleValue::Histogram(h) => assert_eq!(h.count, 4000),
            other => panic!("{other:?}"),
        }
    }
}
