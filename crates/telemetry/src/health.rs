//! The node health model: Ok/Degraded/Down derived from heartbeat gauges.
//!
//! Every service's runtime-agnostic heartbeat writes the
//! [`HEARTBEAT_GAUGE`] (`node.heartbeat_seconds`, label `node`) with the
//! current time. Crashes stop heartbeats in both runtimes — the sim's
//! incarnation epochs drop the timer, the threaded runtime's kill stops
//! the thread — so staleness of that gauge is a uniform health signal.

use crate::registry::Snapshot;

/// Gauge every service heartbeat refreshes with the current time
/// (seconds); labeled `node="<id>"`.
pub const HEARTBEAT_GAUGE: &str = "node.heartbeat_seconds";

/// Coarse node health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Heartbeating on schedule.
    Ok,
    /// Heartbeat is late but not yet presumed dead.
    Degraded,
    /// Heartbeat silent past the down threshold (crashed or partitioned).
    Down,
}

/// Staleness thresholds for deriving [`HealthState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Heartbeat older than this (seconds) ⇒ at least Degraded.
    pub degraded_after_s: f64,
    /// Heartbeat older than this (seconds) ⇒ Down.
    pub down_after_s: f64,
}

impl HealthPolicy {
    /// Thresholds scaled from the deployment's heartbeat interval: a node
    /// is Degraded after missing ~2.5 beats and Down after missing ~5.
    pub fn for_interval(heartbeat_every_s: f64) -> Self {
        HealthPolicy {
            degraded_after_s: heartbeat_every_s * 2.5,
            down_after_s: heartbeat_every_s * 5.0,
        }
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self::for_interval(1.0)
    }
}

/// One node's derived health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeHealth {
    /// Node id (parsed from the heartbeat gauge's `node` label).
    pub node: u64,
    /// Derived state.
    pub state: HealthState,
    /// When this node last heartbeat (seconds).
    pub last_heartbeat_s: f64,
}

/// Derive per-node health from the heartbeat gauges in `snap`, sorted by
/// node id. Nodes that have never heartbeat are invisible here — callers
/// that know the expected membership should treat absence as Down.
pub fn derive_health(snap: &Snapshot, now_s: f64, policy: &HealthPolicy) -> Vec<NodeHealth> {
    let mut out: Vec<NodeHealth> = snap
        .family(HEARTBEAT_GAUGE)
        .filter_map(|s| {
            let node = s
                .labels
                .iter()
                .find(|(k, _)| k == "node")
                .and_then(|(_, v)| v.parse::<u64>().ok())?;
            let last = match &s.value {
                crate::registry::SampleValue::Gauge(g) => *g,
                _ => return None,
            };
            let age = now_s - last;
            let state = if age <= policy.degraded_after_s {
                HealthState::Ok
            } else if age <= policy.down_after_s {
                HealthState::Degraded
            } else {
                HealthState::Down
            };
            Some(NodeHealth { node, state, last_heartbeat_s: last })
        })
        .collect();
    out.sort_by_key(|h| h.node);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn health_tracks_heartbeat_staleness() {
        let reg = Registry::new();
        reg.set(HEARTBEAT_GAUGE, &[("node", "1")], 99.0); // fresh
        reg.set(HEARTBEAT_GAUGE, &[("node", "2")], 96.0); // late
        reg.set(HEARTBEAT_GAUGE, &[("node", "3")], 10.0); // long gone
        let policy = HealthPolicy::for_interval(1.0);
        let hs = derive_health(&reg.snapshot(), 100.0, &policy);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0].state, HealthState::Ok);
        assert_eq!(hs[1].state, HealthState::Degraded);
        assert_eq!(hs[2].state, HealthState::Down);
        assert_eq!(hs[2].node, 3);
    }

    #[test]
    fn unlabeled_or_non_gauge_samples_are_skipped() {
        let reg = Registry::new();
        reg.set(HEARTBEAT_GAUGE, &[], 1.0);
        reg.set(HEARTBEAT_GAUGE, &[("node", "nope")], 1.0);
        assert!(derive_health(&reg.snapshot(), 2.0, &HealthPolicy::default()).is_empty());
    }
}
