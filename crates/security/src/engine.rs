//! The Security Violation Detection Engine as a running node: polls the
//! User Activity History off the monitoring storage servers, scans it
//! against the compiled policy set every scan period, and drives the
//! Policy Enforcement component. This closes the paper's self-protection
//! loop: instrumentation → monitoring → introspection → detection →
//! enforcement → BlobSeer.

use std::collections::HashMap;

use sads_blob::model::ClientId;
use sads_blob::rpc::Msg;
use sads_blob::services::{Env, Service};
use sads_introspect::{into_alert, AlertMsg};
use sads_monitor::{mon_msg, MonMsg};
use sads_sim::{NodeId, SimDuration, SimTime};

use crate::enforce::Enforcer;
use crate::history::ActivityHistory;
use crate::lang::PolicySet;
use crate::policy::{scan, Violation};
use crate::trust::{TrustConfig, TrustManager};

/// Timer token: poll + scan cycle.
pub const TOKEN_SEC_SCAN: u64 = u64::MAX - 30;

/// One recorded detection (for the paper's detection-delay experiment).
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    /// When the engine detected the violation.
    pub at: SimTime,
    /// The offender.
    pub client: ClientId,
    /// The violated policy.
    pub policy: String,
}

/// Engine tuning.
#[derive(Clone, Debug)]
pub struct SecurityConfig {
    /// Poll + scan period.
    pub scan_every: SimDuration,
    /// Trust dynamics.
    pub trust: TrustConfig,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig { scan_every: SimDuration::from_secs(5), trust: TrustConfig::default() }
    }
}

/// The Policy Management node: detection engine + enforcement + trust.
pub struct SecurityEngineService {
    storage: Vec<NodeId>,
    set: PolicySet,
    history: ActivityHistory,
    trust: TrustManager,
    enforcer: Enforcer,
    cursors: HashMap<NodeId, u64>,
    next_req: u64,
    cfg: SecurityConfig,
    detections: Vec<Detection>,
}

impl SecurityEngineService {
    /// Build the engine.
    ///
    /// * `storage` — monitoring storage servers to poll,
    /// * `block_targets` — nodes notified on block (version manager +
    ///   data providers),
    /// * `throttle_targets` — nodes notified on throttle (data providers),
    /// * `set` — the compiled policy set.
    pub fn new(
        storage: Vec<NodeId>,
        block_targets: Vec<NodeId>,
        throttle_targets: Vec<NodeId>,
        set: PolicySet,
        cfg: SecurityConfig,
    ) -> Self {
        assert!(!storage.is_empty(), "at least one storage server");
        // Retain at least twice the longest policy window, with a 60 s
        // floor, so windowed metrics never starve.
        let retention = (set.max_window() * 2).max(SimDuration::from_secs(60));
        SecurityEngineService {
            storage,
            set,
            history: ActivityHistory::new(retention),
            trust: TrustManager::new(cfg.trust),
            enforcer: Enforcer::new(block_targets, throttle_targets),
            cursors: HashMap::new(),
            next_req: 1,
            cfg,
            detections: Vec::new(),
        }
    }

    /// All detections so far (post-run inspection for E4).
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// The enforcement state.
    pub fn enforcer(&self) -> &Enforcer {
        &self.enforcer
    }

    /// The trust ledger.
    pub fn trust(&self) -> &TrustManager {
        &self.trust
    }

    /// The activity history.
    pub fn history(&self) -> &ActivityHistory {
        &self.history
    }

    fn poll(&mut self, env: &mut dyn Env) {
        for s in self.storage.clone() {
            let req = self.next_req;
            self.next_req += 1;
            let after_seq = self.cursors.get(&s).copied().unwrap_or(0);
            env.send(s, mon_msg(MonMsg::QueryActivity { req, after_seq }));
        }
    }

    fn scan_and_enforce(&mut self, env: &mut dyn Env) {
        let now = env.now();
        // Evaluate windows at the history's own clock, not the engine's:
        // the monitoring pipeline (instrumentation flush + filter flush +
        // burst-cache drain + poll period) lags wall time by several
        // seconds — under a heavy attack it can lag by minutes, because
        // the attack itself congests the providers' outbound links the
        // probe batches share. Judging a 10 s window against wall time
        // would leave it half-empty and blind the detectors; pruning
        // against wall time would silently discard the still-unjudged
        // tail. Both follow the history clock.
        let eval_at = self.history.last_at().min(now);
        self.history.prune(eval_at);
        let violations: Vec<Violation> = scan(&self.set, &self.history, &self.trust, eval_at)
            .into_iter()
            .filter(|v| !self.enforcer.is_sanctioned(v.client))
            .collect();
        for v in violations {
            let client = v.client;
            let policy = v.policy.clone();
            if self.enforcer.apply(env, v, &mut self.trust).is_some() {
                self.detections.push(Detection { at: now, client, policy });
                env.incr("sec.detections", 1);
                env.record("sec.detection_time_s", now.as_secs_f64());
            }
        }
        let released = self.enforcer.expire_due(env, now);
        for _ in released {
            env.incr("sec.releases", 1);
        }
    }
}

impl Service for SecurityEngineService {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        env.set_timer(self.cfg.scan_every, TOKEN_SEC_SCAN);
    }

    fn on_msg(&mut self, env: &mut dyn Env, from: NodeId, msg: Msg) {
        // A burn-rate alert (read-rate spike, for the DoS detectors) cuts
        // the scan latency: scan what we have now and poll immediately
        // instead of waiting out the rest of the period.
        let is_alert = matches!(&msg, Msg::Ext(p) if p.downcast_ref::<AlertMsg>().is_some());
        if is_alert {
            if let Some(AlertMsg::Fire { .. }) = into_alert(msg) {
                env.incr("sec.alert_scans", 1);
                self.scan_and_enforce(env);
                self.poll(env);
            }
            return;
        }
        if let Some(MonMsg::ActivityBatch { records, last_seq, .. }) =
            sads_monitor::into_mon(msg)
        {
            self.history.ingest(&records);
            self.cursors.insert(from, last_seq);
            env.incr("sec.activity_ingested", records.len() as u64);
        }
    }

    fn on_timer(&mut self, env: &mut dyn Env, token: u64) {
        if token == TOKEN_SEC_SCAN {
            // Scan on what we have, then ask for more: the pipeline delay
            // (instr flush + mon flush + cache drain + this period) is the
            // detection latency the paper measures.
            self.scan_and_enforce(env);
            self.poll(env);
            env.set_timer(self.cfg.scan_every, TOKEN_SEC_SCAN);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sads_monitor::{ActivityKind, ActivityRecord};

    struct TestEnv {
        now: SimTime,
        sent: Vec<(NodeId, Msg)>,
        rng: SmallRng,
    }
    impl TestEnv {
        fn new() -> Self {
            TestEnv { now: SimTime::ZERO, sent: vec![], rng: SmallRng::seed_from_u64(0) }
        }
    }
    impl Env for TestEnv {
        fn id(&self) -> NodeId {
            NodeId(0)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: NodeId, msg: Msg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _d: SimDuration, _t: u64) {}
        fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    fn batch(client: u64, from_s: u64, per_sec: u64, secs: u64) -> Vec<ActivityRecord> {
        let mut out = Vec::new();
        for s in from_s..from_s + secs {
            for i in 0..per_sec {
                out.push(ActivityRecord {
                    at: SimTime(s * 1_000_000_000 + i),
                    client: ClientId(client),
                    kind: ActivityKind::ChunkReadMiss,
                    blob: None,
                    provider: None,
                    chunk: None,
                    bytes: 0,
                });
            }
        }
        out
    }

    fn engine() -> SecurityEngineService {
        let set = PolicySet::parse(
            "policy dos { when rate(requests, window=10s) > 50 then block for 120s severity high }",
        )
        .unwrap();
        SecurityEngineService::new(
            vec![NodeId(10)],
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(2)],
            set,
            SecurityConfig::default(),
        )
    }

    #[test]
    fn full_detect_and_block_cycle() {
        let mut env = TestEnv::new();
        let mut e = engine();
        e.on_start(&mut env);
        // Ingest a flood via a fake ActivityBatch from storage node 10.
        e.on_msg(
            &mut env,
            NodeId(10),
            mon_msg(MonMsg::ActivityBatch { req: 1, records: batch(7, 0, 100, 10), last_seq: 1000 }),
        );
        env.now = SimTime(10_000_000_000);
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        assert_eq!(e.detections().len(), 1);
        assert_eq!(e.detections()[0].client, ClientId(7));
        assert!(e.enforcer().is_sanctioned(ClientId(7)));
        // Blocks went to both targets, and a poll followed.
        let blocks: Vec<NodeId> = env
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::BlockClient { .. }))
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(blocks, vec![NodeId(1), NodeId(2)]);
        let polls = env
            .sent
            .iter()
            .filter(|(_, m)| matches!(sads_monitor::as_mon(m), Some(MonMsg::QueryActivity { .. })))
            .count();
        assert_eq!(polls, 1);
        // Cursor advanced: next poll asks after_seq=1000.
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        let last_poll = env
            .sent
            .iter()
            .rev()
            .find_map(|(_, m)| match sads_monitor::as_mon(m) {
                Some(MonMsg::QueryActivity { after_seq, .. }) => Some(*after_seq),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_poll, 1000);
    }

    #[test]
    fn rescan_does_not_duplicate_sanctions() {
        let mut env = TestEnv::new();
        let mut e = engine();
        e.on_start(&mut env);
        e.on_msg(
            &mut env,
            NodeId(10),
            mon_msg(MonMsg::ActivityBatch { req: 1, records: batch(7, 0, 100, 10), last_seq: 1 }),
        );
        env.now = SimTime(10_000_000_000);
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        env.now = SimTime(11_000_000_000);
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        assert_eq!(e.detections().len(), 1, "still sanctioned ⇒ no re-detection");
    }

    #[test]
    fn sanction_expiry_releases_client() {
        let mut env = TestEnv::new();
        let mut e = engine();
        e.on_start(&mut env);
        e.on_msg(
            &mut env,
            NodeId(10),
            mon_msg(MonMsg::ActivityBatch { req: 1, records: batch(7, 0, 100, 10), last_seq: 1 }),
        );
        env.now = SimTime(10_000_000_000);
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        assert!(e.enforcer().is_sanctioned(ClientId(7)));
        // Base 120 s scaled by distrust (≤ 2×): well past 250 s + history
        // pruned ⇒ released on a later scan.
        env.now = SimTime(400_000_000_000);
        e.on_timer(&mut env, TOKEN_SEC_SCAN);
        assert!(!e.enforcer().is_sanctioned(ClientId(7)));
        let unblocks = env
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::UnblockClient { .. }))
            .count();
        assert_eq!(unblocks, 2);
    }
}
