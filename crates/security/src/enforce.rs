//! The Policy Enforcement component (paper §III-C): "responsible for
//! making a decision based on the state of the system and on the impact
//! of the attempted attack … Such decisions range from preventing the
//! user from further accessing the system to logging the illegal usage
//! into the activity history."
//!
//! Sanctions are pushed back into BlobSeer as
//! [`Msg::BlockClient`]/[`Msg::UnblockClient`] — the feedback edge of the
//! paper's self-protection loop. Three primitives:
//!
//! * **block** — refused everywhere (version manager + data providers),
//! * **throttle** — data-plane-only block: control operations still work,
//!   bulk traffic is refused (deprioritization),
//! * **log** — recorded in the violation log only.
//!
//! Block durations are scaled by the trust ledger: repeat offenders are
//! sanctioned up to twice the policy's base duration (the paper's
//! "adaptive security policies specifically tuned for the history of each
//! user").

use std::collections::HashMap;

use sads_blob::model::ClientId;
use sads_blob::rpc::Msg;
use sads_blob::services::Env;
use sads_sim::{NodeId, SimDuration, SimTime};

use crate::lang::ActionKind;
use crate::policy::Violation;
use crate::trust::TrustManager;

/// An active sanction.
#[derive(Clone, Debug, PartialEq)]
pub struct Sanction {
    /// The sanctioned client.
    pub client: ClientId,
    /// Block or throttle.
    pub kind: ActionKind,
    /// When it lifts (`None` = indefinite).
    pub until: Option<SimTime>,
    /// The policy that triggered it.
    pub policy: String,
}

/// Tracks sanctions and issues the enforcement RPCs.
#[derive(Debug)]
pub struct Enforcer {
    /// Nodes notified for full blocks (version manager + data providers).
    block_targets: Vec<NodeId>,
    /// Nodes notified for throttles (data providers only).
    throttle_targets: Vec<NodeId>,
    active: HashMap<ClientId, Sanction>,
    log: Vec<Violation>,
}

impl Enforcer {
    /// An enforcer wired to the given targets.
    pub fn new(block_targets: Vec<NodeId>, throttle_targets: Vec<NodeId>) -> Self {
        Enforcer { block_targets, throttle_targets, active: HashMap::new(), log: Vec::new() }
    }

    /// Is the client currently sanctioned?
    pub fn is_sanctioned(&self, client: ClientId) -> bool {
        self.active.contains_key(&client)
    }

    /// Active sanctions.
    pub fn active(&self) -> impl Iterator<Item = &Sanction> {
        self.active.values()
    }

    /// Every violation ever seen (including log-only ones).
    pub fn violation_log(&self) -> &[Violation] {
        &self.log
    }

    /// Decide on and apply a violation. Returns the sanction if one was
    /// newly imposed.
    pub fn apply(
        &mut self,
        env: &mut dyn Env,
        v: Violation,
        trust: &mut TrustManager,
    ) -> Option<Sanction> {
        let now = env.now();
        trust.penalize(v.client, v.action.severity, now);
        self.log.push(v.clone());
        if v.action.kind == ActionKind::Log {
            env.incr("sec.logged", 1);
            return None;
        }
        if self.is_sanctioned(v.client) {
            return None;
        }
        // Adaptive decision: scale the base duration by the client's
        // distrust.
        let until = v.action.duration.map(|d| {
            let scaled = SimDuration::from_secs_f64(
                d.as_secs_f64() * trust.sanction_scale(v.client, now),
            );
            now + scaled
        });
        let targets = match v.action.kind {
            ActionKind::Block => &self.block_targets,
            ActionKind::Throttle => &self.throttle_targets,
            ActionKind::Log => unreachable!(),
        };
        for t in targets {
            env.send(*t, Msg::BlockClient { client: v.client });
        }
        let sanction =
            Sanction { client: v.client, kind: v.action.kind, until, policy: v.policy.clone() };
        self.active.insert(v.client, sanction.clone());
        env.incr("sec.sanctions", 1);
        env.record("sec.active_sanctions", self.active.len() as f64);
        Some(sanction)
    }

    /// Lift sanctions whose deadline has passed; returns the released
    /// clients.
    pub fn expire_due(&mut self, env: &mut dyn Env, now: SimTime) -> Vec<ClientId> {
        let due: Vec<ClientId> = self
            .active
            .values()
            .filter(|s| s.until.map(|u| u <= now).unwrap_or(false))
            .map(|s| s.client)
            .collect();
        for client in &due {
            let s = self.active.remove(client).expect("present");
            let targets = match s.kind {
                ActionKind::Block => &self.block_targets,
                _ => &self.throttle_targets,
            };
            for t in targets {
                env.send(*t, Msg::UnblockClient { client: *client });
            }
            env.incr("sec.unblocks", 1);
        }
        if !due.is_empty() {
            env.record("sec.active_sanctions", self.active.len() as f64);
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{ActionSpec, Severity};
    use crate::trust::TrustConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct TestEnv {
        now: SimTime,
        sent: Vec<(NodeId, Msg)>,
        rng: SmallRng,
    }
    impl TestEnv {
        fn new() -> Self {
            TestEnv { now: SimTime::ZERO, sent: vec![], rng: SmallRng::seed_from_u64(0) }
        }
        fn blocks_sent(&self) -> Vec<NodeId> {
            self.sent
                .iter()
                .filter(|(_, m)| matches!(m, Msg::BlockClient { .. }))
                .map(|(n, _)| *n)
                .collect()
        }
        fn unblocks_sent(&self) -> usize {
            self.sent.iter().filter(|(_, m)| matches!(m, Msg::UnblockClient { .. })).count()
        }
    }
    impl Env for TestEnv {
        fn id(&self) -> NodeId {
            NodeId(0)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: NodeId, msg: Msg) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _d: SimDuration, _t: u64) {}
        fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    fn violation(client: u64, kind: ActionKind, dur: Option<u64>) -> Violation {
        Violation {
            policy: "p".into(),
            client: ClientId(client),
            at: SimTime::ZERO,
            action: ActionSpec {
                kind,
                duration: dur.map(SimDuration::from_secs),
                severity: Severity::High,
            },
        }
    }

    #[test]
    fn block_notifies_all_targets_and_expires() {
        let mut env = TestEnv::new();
        let mut trust = TrustManager::new(TrustConfig::default());
        let mut e = Enforcer::new(vec![NodeId(1), NodeId(2), NodeId(3)], vec![NodeId(2), NodeId(3)]);
        let s = e.apply(&mut env, violation(7, ActionKind::Block, Some(100)), &mut trust).unwrap();
        assert_eq!(env.blocks_sent(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(e.is_sanctioned(ClientId(7)));
        // Trust was penalized BEFORE computing the scale: 0.8-0.4=0.4 →
        // scale 1.6 → 160 s.
        let until = s.until.unwrap();
        assert!((until.as_secs_f64() - 160.0).abs() < 1e-6, "got {until}");
        // Not yet due.
        env.now = SimTime(100_000_000_000);
        let now = env.now;
        assert!(e.expire_due(&mut env, now).is_empty());
        env.now = SimTime(161_000_000_000);
        let now = env.now;
        let released = e.expire_due(&mut env, now);
        assert_eq!(released, vec![ClientId(7)]);
        assert_eq!(env.unblocks_sent(), 3);
        assert!(!e.is_sanctioned(ClientId(7)));
    }

    #[test]
    fn throttle_only_hits_data_plane() {
        let mut env = TestEnv::new();
        let mut trust = TrustManager::new(TrustConfig::default());
        let mut e = Enforcer::new(vec![NodeId(1), NodeId(2)], vec![NodeId(2)]);
        e.apply(&mut env, violation(7, ActionKind::Throttle, Some(10)), &mut trust);
        assert_eq!(env.blocks_sent(), vec![NodeId(2)]);
    }

    #[test]
    fn log_only_records() {
        let mut env = TestEnv::new();
        let mut trust = TrustManager::new(TrustConfig::default());
        let mut e = Enforcer::new(vec![NodeId(1)], vec![]);
        assert!(e.apply(&mut env, violation(7, ActionKind::Log, None), &mut trust).is_none());
        assert!(env.sent.is_empty());
        assert!(!e.is_sanctioned(ClientId(7)));
        assert_eq!(e.violation_log().len(), 1);
        // Trust still took the hit.
        assert!(trust.get(ClientId(7), SimTime::ZERO) < 0.8);
    }

    #[test]
    fn double_sanction_is_suppressed_but_logged() {
        let mut env = TestEnv::new();
        let mut trust = TrustManager::new(TrustConfig::default());
        let mut e = Enforcer::new(vec![NodeId(1)], vec![]);
        assert!(e.apply(&mut env, violation(7, ActionKind::Block, Some(10)), &mut trust).is_some());
        assert!(e.apply(&mut env, violation(7, ActionKind::Block, Some(10)), &mut trust).is_none());
        assert_eq!(env.blocks_sent().len(), 1);
        assert_eq!(e.violation_log().len(), 2);
    }

    #[test]
    fn indefinite_blocks_never_expire() {
        let mut env = TestEnv::new();
        let mut trust = TrustManager::new(TrustConfig::default());
        let mut e = Enforcer::new(vec![NodeId(1)], vec![]);
        e.apply(&mut env, violation(7, ActionKind::Block, None), &mut trust);
        env.now = SimTime(u64::MAX / 2);
        let now = env.now;
        assert!(e.expire_due(&mut env, now).is_empty());
        assert!(e.is_sanctioned(ClientId(7)));
    }
}
